//! Per-request tracing: minted trace ids, span propagation, and a bounded
//! ring buffer of finished traces with slow-request exemplars.
//!
//! [`request`] mints a process-unique id for every request when telemetry is
//! on, but only *samples* a fraction of them (default 1 in
//! `IMCAT_OBS_TRACE_SAMPLE`): sampled requests install a [`TraceHandle`] in a
//! thread-local slot so every [`crate::span`] that closes while the request
//! is in flight — including spans on `imcat-par` workers, which re-install
//! the handle via [`enter`] — is attached to the trace. Unsampled requests
//! stay on a ~10 ns fast path that still captures a span-less exemplar when
//! the request turns out slow.
//!
//! "Slow" means the duration exceeded `IMCAT_OBS_SLOW_US` when set, else the
//! live sliding-window p99 of the request-latency histogram (re-evaluated at
//! most once per second), so exemplars self-calibrate to the workload.
//!
//! Finished traces land in a ring buffer (`IMCAT_OBS_TRACE_CAP`, default
//! 512) served live at `/trace/<id>` by [`crate::http`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::{registry, Json};

/// Spans recorded per trace before further spans are counted as dropped.
pub const MAX_SPANS: usize = 512;

/// One closed span attached to a trace.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Histogram name of the span.
    pub name: &'static str,
    /// Process seconds at span start.
    pub t: f64,
    /// Span duration in seconds.
    pub dur: f64,
}

#[derive(Debug)]
struct TraceShared {
    id: u64,
    kind: &'static str,
    hist: &'static str,
    start: Instant,
    start_t: f64,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

/// Shared handle to an in-flight sampled trace. Clone-cheap; `imcat-par`
/// captures one per job and re-installs it on workers.
#[derive(Clone, Debug)]
pub struct TraceHandle(Arc<TraceShared>);

impl TraceHandle {
    /// The trace id.
    pub fn id(&self) -> u64 {
        self.0.id
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceHandle>> = const { RefCell::new(None) };
}

/// The trace installed on this thread, if any.
pub fn current() -> Option<TraceHandle> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs `handle` as this thread's trace until the guard drops (restoring
/// whatever was installed before). Used by worker pools to propagate the
/// submitting thread's trace across the spawn boundary.
pub fn enter(handle: TraceHandle) -> EnterGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(handle));
    EnterGuard { prev }
}

/// Restores the previous thread-local trace on drop.
pub struct EnterGuard {
    prev: Option<TraceHandle>,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Attaches a closed span to this thread's trace, if one is installed.
/// Called from [`crate::Span`]'s destructor; must never panic.
#[inline]
pub(crate) fn record_span(name: &'static str, t: f64, dur: f64) {
    CURRENT.with(|c| {
        if let Some(h) = c.borrow().as_ref() {
            let mut spans = lock(&h.0.spans);
            if spans.len() < MAX_SPANS {
                spans.push(SpanRecord { name, t, dur });
            } else {
                h.0.dropped.fetch_add(1, Relaxed);
            }
        }
    });
}

/// A finished request trace as stored in the ring buffer.
#[derive(Clone, Debug)]
pub struct FinishedTrace {
    /// Minted id (monotone across the process).
    pub id: u64,
    /// Request kind, e.g. `"serve.request"` or `"serve.tick"`.
    pub kind: &'static str,
    /// Process seconds at request start.
    pub t: f64,
    /// Request duration in seconds.
    pub dur: f64,
    /// Whether the request exceeded the slow threshold when it finished.
    pub slow: bool,
    /// Spans attached while the request was in flight (empty for unsampled
    /// slow exemplars).
    pub spans: Vec<SpanRecord>,
    /// Spans discarded after [`MAX_SPANS`].
    pub dropped: u64,
}

impl FinishedTrace {
    /// Renders the trace as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("kind", Json::Str(self.kind.to_string())),
            ("t", Json::Num(self.t)),
            ("dur", Json::Num(self.dur)),
            ("slow", Json::Bool(self.slow)),
            ("dropped_spans", Json::Num(self.dropped as f64)),
            (
                "spans",
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::Str(s.name.to_string())),
                                ("t", Json::Num(s.t)),
                                ("dur", Json::Num(s.dur)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

struct CachedThreshold {
    value: f64,
    at: f64,
}

struct Store {
    ring: VecDeque<FinishedTrace>,
    cap: usize,
    total: u64,
    slow: u64,
    latest_id: u64,
    thresholds: Vec<(&'static str, CachedThreshold)>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        let cap = std::env::var("IMCAT_OBS_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(512)
            .max(1);
        Mutex::new(Store {
            ring: VecDeque::with_capacity(cap.min(1024)),
            cap,
            total: 0,
            slow: 0,
            latest_id: 0,
            thresholds: Vec::new(),
        })
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn sample_every() -> u64 {
    static EVERY: OnceLock<u64> = OnceLock::new();
    *EVERY.get_or_init(|| {
        std::env::var("IMCAT_OBS_TRACE_SAMPLE")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(16)
    })
}

fn slow_us_override() -> Option<f64> {
    static US: OnceLock<Option<f64>> = OnceLock::new();
    *US.get_or_init(|| std::env::var("IMCAT_OBS_SLOW_US").ok().and_then(|v| v.parse::<f64>().ok()))
}

/// Slow threshold (seconds) for requests recorded into histogram `hist`:
/// the `IMCAT_OBS_SLOW_US` override, else the cached sliding-window p99.
fn slow_threshold(hist: &'static str) -> f64 {
    if let Some(us) = slow_us_override() {
        return us * 1.0e-6;
    }
    let now = crate::now_seconds();
    let mut s = lock(store());
    if let Some((_, cached)) = s.thresholds.iter().find(|(n, _)| *n == hist) {
        if now - cached.at < 1.0 {
            return cached.value;
        }
    }
    let value = registry::window_quantile(hist, 0.99).unwrap_or(f64::INFINITY);
    match s.thresholds.iter_mut().find(|(n, _)| *n == hist) {
        Some((_, cached)) => *cached = CachedThreshold { value, at: now },
        None => s.thresholds.push((hist, CachedThreshold { value, at: now })),
    }
    value
}

fn push(trace: FinishedTrace) {
    let mut s = lock(store());
    s.total += 1;
    if trace.slow {
        s.slow += 1;
    }
    s.latest_id = s.latest_id.max(trace.id);
    if s.ring.len() == s.cap {
        // Prefer evicting the oldest non-slow trace so exemplars survive a
        // flood of fast requests; fall back to plain FIFO.
        if let Some(i) = s.ring.iter().position(|t| !t.slow) {
            s.ring.remove(i);
        } else {
            s.ring.pop_front();
        }
    }
    s.ring.push_back(trace);
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Live guard for one request. Created by [`request`]; finishing happens in
/// the destructor so early returns and panics still close the trace.
pub enum RequestTrace {
    /// Telemetry disabled: fully inert.
    Off,
    /// Unsampled request: no span collection, slow-exemplar check on drop.
    Fast {
        /// Minted id.
        id: u64,
        /// Request kind.
        kind: &'static str,
        /// Latency histogram used for the slow threshold.
        hist: &'static str,
        /// Request start.
        start: Instant,
        /// Process seconds at start.
        start_t: f64,
    },
    /// Sampled request: spans are collected via the thread-local handle.
    Sampled {
        /// The in-flight trace.
        handle: TraceHandle,
        /// Thread-local handle to restore on drop.
        prev: Option<TraceHandle>,
    },
}

impl RequestTrace {
    /// The minted id (`None` when telemetry is off).
    pub fn id(&self) -> Option<u64> {
        match self {
            RequestTrace::Off => None,
            RequestTrace::Fast { id, .. } => Some(*id),
            RequestTrace::Sampled { handle, .. } => Some(handle.id()),
        }
    }
}

impl Drop for RequestTrace {
    fn drop(&mut self) {
        match self {
            RequestTrace::Off => {}
            RequestTrace::Fast { id, kind, hist, start, start_t } => {
                let dur = start.elapsed().as_secs_f64();
                if dur >= slow_threshold(hist) {
                    push(FinishedTrace {
                        id: *id,
                        kind,
                        t: *start_t,
                        dur,
                        slow: true,
                        spans: Vec::new(),
                        dropped: 0,
                    });
                }
            }
            RequestTrace::Sampled { handle, prev } => {
                let prev = prev.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
                let shared = &handle.0;
                let dur = shared.start.elapsed().as_secs_f64();
                let spans = std::mem::take(&mut *lock(&shared.spans));
                push(FinishedTrace {
                    id: shared.id,
                    kind: shared.kind,
                    t: shared.start_t,
                    dur,
                    slow: dur >= slow_threshold(shared.hist),
                    spans,
                    dropped: shared.dropped.load(Relaxed),
                });
            }
        }
    }
}

/// Opens a request trace of `kind` whose latency lands in histogram `hist`.
/// `force_sample` bypasses the 1-in-N sampling (used for batch ticks, which
/// are rare and information-dense).
pub fn request(kind: &'static str, hist: &'static str, force_sample: bool) -> RequestTrace {
    if !registry::enabled() {
        return RequestTrace::Off;
    }
    let id = NEXT_ID.fetch_add(1, Relaxed) + 1;
    let every = sample_every();
    let sampled = force_sample || (every > 0 && id % every == 0);
    let start = Instant::now();
    let start_t = crate::now_seconds();
    if !sampled {
        return RequestTrace::Fast { id, kind, hist, start, start_t };
    }
    let handle = TraceHandle(Arc::new(TraceShared {
        id,
        kind,
        hist,
        start,
        start_t,
        spans: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    }));
    let prev = CURRENT.with(|c| c.borrow_mut().replace(handle.clone()));
    RequestTrace::Sampled { handle, prev }
}

/// Fetches a stored trace by id.
pub fn get(id: u64) -> Option<FinishedTrace> {
    lock(store()).ring.iter().find(|t| t.id == id).cloned()
}

/// The most recent `n` stored traces, newest first.
pub fn recent(n: usize) -> Vec<FinishedTrace> {
    lock(store()).ring.iter().rev().take(n).cloned().collect()
}

/// Highest id stored so far (`None` before the first trace lands).
pub fn latest_id() -> Option<u64> {
    let s = lock(store());
    if s.latest_id == 0 {
        None
    } else {
        Some(s.latest_id)
    }
}

/// `(stored, total_finished, slow_finished)` over the process lifetime.
pub fn stats() -> (usize, u64, u64) {
    let s = lock(store());
    (s.ring.len(), s.total, s.slow)
}

/// Clears the ring buffer and counters (ids keep incrementing).
pub fn reset() {
    let mut s = lock(store());
    s.ring.clear();
    s.total = 0;
    s.slow = 0;
    s.latest_id = 0;
    s.thresholds.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_request_collects_spans_and_resolves_by_id() {
        let _g = crate::exclusive(true);
        std::env::remove_var("IMCAT_OBS_SLOW_US");
        let id = {
            let t = request("test.request", "test.request.seconds", true);
            let id = t.id().expect("enabled => id minted");
            {
                let _s = crate::span("test.phase.inner");
            }
            id
        };
        let trace = get(id).expect("trace stored");
        assert_eq!(trace.kind, "test.request");
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "test.phase.inner");
        assert!(trace.dur >= trace.spans[0].dur);
        assert_eq!(latest_id(), Some(id));
    }

    #[test]
    fn disabled_request_is_inert() {
        let _g = crate::exclusive(false);
        let t = request("test.request", "test.request.seconds", true);
        assert!(t.id().is_none());
        drop(t);
        assert!(current().is_none());
    }

    #[test]
    fn enter_guard_restores_previous_handle() {
        let _g = crate::exclusive(true);
        let outer = request("outer", "outer.seconds", true);
        let outer_handle = current().expect("outer installed");
        assert_eq!(Some(outer_handle.id()), outer.id());
        {
            let inner = request("inner", "inner.seconds", true);
            assert_eq!(current().map(|h| h.id()), inner.id());
        }
        assert_eq!(current().map(|h| h.id()), outer.id());
        drop(outer);
        assert!(current().is_none());
    }

    #[test]
    fn ring_evicts_fast_before_slow() {
        let _g = crate::exclusive(true);
        reset();
        let cap = lock(store()).cap;
        push(FinishedTrace {
            id: u64::MAX,
            kind: "slowpoke",
            t: 0.0,
            dur: 10.0,
            slow: true,
            spans: Vec::new(),
            dropped: 0,
        });
        for i in 0..cap as u64 + 8 {
            push(FinishedTrace {
                id: i + 1,
                kind: "fast",
                t: 0.0,
                dur: 1e-6,
                slow: false,
                spans: Vec::new(),
                dropped: 0,
            });
        }
        assert!(get(u64::MAX).is_some(), "slow exemplar survived eviction");
        assert_eq!(lock(store()).ring.len(), cap);
    }
}
