//! Ranking metrics: Recall@N and NDCG@N under the paper's protocol (§V-B):
//! full ranking over all items with the user's training items masked out.

use imcat_data::SplitDataset;
use imcat_tensor::Tensor;

/// Which held-out set to evaluate against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalTarget {
    /// The validation split (used for early stopping / tuning).
    Validation,
    /// The test split (used for reported numbers).
    Test,
}

/// Aggregate metrics over a user population.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankingMetrics {
    /// Mean Recall@N.
    pub recall: f64,
    /// Mean NDCG@N.
    pub ndcg: f64,
    /// Number of users the means were taken over. `0` means *no* user had a
    /// held-out item (degenerate split) — the means are then defined as 0.0
    /// rather than NaN, and an `eval.empty` event is emitted so the condition
    /// is visible in telemetry instead of silently poisoning report JSON.
    pub evaluated_users: usize,
}

/// Per-user metric detail, used for paired significance tests.
#[derive(Clone, Debug, Default)]
pub struct PerUserMetrics {
    /// Evaluated user ids (users with a non-empty target set).
    pub users: Vec<u32>,
    /// Recall@N per user, parallel to `users`.
    pub recall: Vec<f64>,
    /// NDCG@N per user, parallel to `users`.
    pub ndcg: Vec<f64>,
}

impl PerUserMetrics {
    /// Aggregates into means. An empty population yields zeroed metrics with
    /// `evaluated_users == 0` (never NaN) and reports itself via telemetry.
    pub fn aggregate(&self) -> RankingMetrics {
        let n = self.users.len();
        if n == 0 {
            if imcat_obs::enabled() {
                imcat_obs::counter_add("eval.empty", 1);
                imcat_obs::emit("eval.empty", Vec::new());
            }
            return RankingMetrics::default();
        }
        RankingMetrics {
            recall: self.recall.iter().sum::<f64>() / n as f64,
            ndcg: self.ndcg.iter().sum::<f64>() / n as f64,
            evaluated_users: n,
        }
    }
}

fn held_out(data: &SplitDataset, target: EvalTarget, u: usize) -> &[u32] {
    match target {
        EvalTarget::Validation => &data.val[u],
        EvalTarget::Test => &data.test[u],
    }
}

/// Declarative description of one evaluation run, replacing the old
/// positional `(n, target)` argument pairs (and their same-typed-args-in-the-
/// wrong-order hazards) with named fields and builder methods:
///
/// ```
/// use imcat_eval::EvalSpec;
/// let spec = EvalSpec::at(20).validation();
/// let cold = EvalSpec::at(10).users(vec![3, 7, 11]);
/// ```
#[derive(Clone, Debug)]
pub struct EvalSpec {
    /// Ranking cutoff `N` for Recall@N / NDCG@N.
    pub k: usize,
    /// Which held-out split supplies the ground truth.
    pub target: EvalTarget,
    /// Restrict evaluation to this user subset (`None` = all users). Users
    /// without a held-out item in `target` are skipped either way.
    pub users: Option<Vec<u32>>,
    /// Mask each user's training items out of the ranking (the paper's
    /// protocol). Disable only for diagnostics.
    pub mask_train: bool,
}

impl Default for EvalSpec {
    fn default() -> Self {
        Self { k: 20, target: EvalTarget::Test, users: None, mask_train: true }
    }
}

impl EvalSpec {
    /// Test-split evaluation at cutoff `k` with training items masked.
    pub fn at(k: usize) -> Self {
        Self { k, ..Self::default() }
    }

    /// Evaluates against the validation split.
    pub fn validation(mut self) -> Self {
        self.target = EvalTarget::Validation;
        self
    }

    /// Evaluates against the test split.
    pub fn test(mut self) -> Self {
        self.target = EvalTarget::Test;
        self
    }

    /// Restricts evaluation to a user subset (e.g. a cold-start group).
    pub fn users(mut self, users: Vec<u32>) -> Self {
        self.users = Some(users);
        self
    }

    /// Ranks over *all* items, training interactions included.
    pub fn unmasked(mut self) -> Self {
        self.mask_train = false;
        self
    }

    fn select_users(&self, data: &SplitDataset) -> Vec<u32> {
        let nonempty = |u: u32| !held_out(data, self.target, u as usize).is_empty();
        match &self.users {
            Some(sel) => sel.iter().copied().filter(|&u| nonempty(u)).collect(),
            None => (0..data.n_users() as u32).filter(|&u| nonempty(u)).collect(),
        }
    }
}

/// Reusable ranking buffers. One scratch per worker lets a stream of users be
/// ranked without any per-user allocation; reuse never changes results — the
/// selection runs on identical contents regardless of buffer history.
#[derive(Default)]
pub struct TopKScratch {
    ranked: Vec<(u32, f32)>,
    top: Vec<u32>,
}

/// The top-`n` unmasked item indices of one score row, reusing `scratch`.
/// `mask` must be sorted ascending (training-item lists are).
///
/// Ranking uses the *canonical* order (score descending, then index
/// ascending): a strict total order with no ties, so the selected head is a
/// pure function of the `(index, score)` candidate *set* — independent of
/// candidate enumeration order, and monotone under supersets: any candidate
/// subset that contains the canonical head selects exactly that head. This
/// is what lets distributed rankers (per-shard top-K in `imcat-net`, ANN
/// shortlists) re-rank a union of partial results bit-identically to one
/// full scan.
pub fn top_n_masked_with<'a>(
    scores: &[f32],
    mask: &[u32],
    n: usize,
    scratch: &'a mut TopKScratch,
) -> &'a [u32] {
    let ranked = &mut scratch.ranked;
    ranked.clear();
    ranked.extend(
        scores
            .iter()
            .copied()
            .enumerate()
            .map(|(j, s)| (j as u32, s))
            .filter(|(j, _)| mask.binary_search(j).is_err()),
    );
    // Partial selection then exact ordering of the head, both under the
    // canonical tie-free comparator.
    let canon = |a: &(u32, f32), b: &(u32, f32)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    let n = n.min(ranked.len());
    if n > 0 {
        ranked.select_nth_unstable_by(n - 1, canon);
        ranked[..n].sort_unstable_by(canon);
    }
    scratch.top.clear();
    scratch.top.extend(ranked[..n].iter().map(|&(j, _)| j));
    &scratch.top
}

/// The top-`n` unmasked item indices of one score row (allocating
/// convenience wrapper over [`top_n_masked_with`]).
pub fn top_n_masked(scores: &[f32], mask: &[u32], n: usize) -> Vec<u32> {
    let mut scratch = TopKScratch::default();
    top_n_masked_with(scores, mask, n, &mut scratch).to_vec()
}

/// Per-user Recall@N and NDCG@N for every selected user with a non-empty
/// target set.
///
/// `score_fn(users)` must return `[users.len(), n_items]` relevance scores.
/// Users are scored in chunks to bound peak memory.
pub fn evaluate_per_user(
    score_fn: &mut dyn FnMut(&[u32]) -> Tensor,
    data: &SplitDataset,
    spec: &EvalSpec,
) -> PerUserMetrics {
    let users = spec.select_users(data);
    let n = spec.k;
    let mut out = PerUserMetrics::default();
    let pool = imcat_par::global();
    for chunk in users.chunks(256) {
        let scores = score_fn(chunk);
        assert_eq!(scores.rows(), chunk.len());
        // Scoring stays on the calling thread (`score_fn` is `FnMut`); the
        // per-user ranking math fans out. Each user writes its own slot, so
        // the result order — and every bit — is thread-count independent.
        let mut per_user = vec![(0.0f64, 0.0f64); chunk.len()];
        pool.parallel_chunks_mut(&mut per_user, 32, |ci, slots| {
            // One scratch per worker slice: every user in it reuses the same
            // ranking buffers instead of allocating fresh ones.
            let mut scratch = TopKScratch::default();
            for (off, slot) in slots.iter_mut().enumerate() {
                let row = ci * 32 + off;
                let u = chunk[row];
                let train: &[u32] =
                    if spec.mask_train { data.train_items(u as usize) } else { &[] };
                let top = top_n_masked_with(scores.row(row), train, n, &mut scratch);
                let truth = held_out(data, spec.target, u as usize);
                let mut hits = 0usize;
                let mut dcg = 0.0f64;
                for (rank, j) in top.iter().enumerate() {
                    if truth.contains(j) {
                        hits += 1;
                        dcg += 1.0 / ((rank + 2) as f64).log2();
                    }
                }
                let recall = hits as f64 / truth.len() as f64;
                let ideal: f64 =
                    (0..truth.len().min(n)).map(|r| 1.0 / ((r + 2) as f64).log2()).sum();
                let ndcg = if ideal > 0.0 { dcg / ideal } else { 0.0 };
                *slot = (recall, ndcg);
            }
        });
        out.users.extend_from_slice(chunk);
        for &(recall, ndcg) in &per_user {
            out.recall.push(recall);
            out.ndcg.push(ndcg);
        }
    }
    out
}

/// Aggregate Recall@N / NDCG@N.
pub fn evaluate(
    score_fn: &mut dyn FnMut(&[u32]) -> Tensor,
    data: &SplitDataset,
    spec: &EvalSpec,
) -> RankingMetrics {
    evaluate_per_user(score_fn, data, spec).aggregate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_data::Dataset;
    use imcat_tensor::Csr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One user, ten items; items 0..7 in train-candidates, test = {3, 5}.
    fn fixed_split() -> SplitDataset {
        let ui = Csr::from_adjacency(1, 10, &[(0..10).collect()]);
        let it = Csr::from_adjacency(10, 2, &(0..10).map(|i| vec![i % 2]).collect::<Vec<_>>());
        let d = Dataset::new("fixed", ui, it);
        let mut rng = StdRng::seed_from_u64(0);
        d.split((0.7, 0.1, 0.2), &mut rng)
    }

    #[test]
    fn perfect_scores_give_perfect_metrics() {
        let data = fixed_split();
        let test_items = data.test[0].clone();
        let mut score_fn = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 10);
            for r in 0..users.len() {
                for &j in &test_items {
                    t.set(r, j as usize, 10.0);
                }
            }
            t
        };
        let m = evaluate(&mut score_fn, &data, &EvalSpec::at(5));
        assert!((m.recall - 1.0).abs() < 1e-9);
        assert!((m.ndcg - 1.0).abs() < 1e-9);
        assert_eq!(m.evaluated_users, 1);
    }

    /// Regression: aggregating an empty population (every user filtered out,
    /// e.g. a degenerate cold-start split) must yield zeroed metrics with
    /// `evaluated_users == 0`, never NaN.
    #[test]
    fn empty_population_aggregates_to_zero_not_nan() {
        let empty = PerUserMetrics::default();
        let m = empty.aggregate();
        assert!(!m.recall.is_nan() && !m.ndcg.is_nan());
        assert_eq!(m, RankingMetrics::default());
        assert_eq!(m.evaluated_users, 0);

        // End-to-end: a split where no user has a test item.
        let ui = Csr::from_adjacency(2, 6, &[vec![0, 1], vec![2, 3]]);
        let it = Csr::from_adjacency(6, 2, &(0..6).map(|i| vec![i % 2]).collect::<Vec<_>>());
        let d = Dataset::new("no-test", ui, it);
        let split = SplitDataset {
            name: d.name.clone(),
            train: d.user_item.clone(),
            val: vec![Vec::new(); 2],
            test: vec![Vec::new(); 2],
            item_tag: d.item_tag.clone(),
        };
        let mut score_fn = |users: &[u32]| Tensor::zeros(users.len(), 6);
        let m = evaluate(&mut score_fn, &split, &EvalSpec::at(5));
        assert_eq!(m.evaluated_users, 0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.ndcg, 0.0);
    }

    #[test]
    fn training_items_are_masked() {
        let data = fixed_split();
        let train = data.train_items(0).to_vec();
        // Give training items the highest scores; they must be excluded, so
        // recall depends only on the remaining ranking.
        let score_fn = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 10);
            for r in 0..users.len() {
                for &j in &train {
                    t.set(r, j as usize, 100.0);
                }
            }
            t
        };
        let top = {
            let s = score_fn(&[0]);
            top_n_masked(s.row(0), &train, 5)
        };
        for j in &top {
            assert!(!train.contains(j), "masked item {j} leaked into ranking");
        }
    }

    #[test]
    fn worst_scores_give_zero_recall() {
        let data = fixed_split();
        let test_items = data.test[0].clone();
        let mut score_fn = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 10);
            for r in 0..users.len() {
                for &j in &test_items {
                    t.set(r, j as usize, -10.0);
                }
            }
            t
        };
        // Only `n` below (candidates - test size) can exclude the test items.
        let m = evaluate(&mut score_fn, &data, &EvalSpec::at(1));
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.ndcg, 0.0);
    }

    #[test]
    fn ndcg_rewards_earlier_hits() {
        let data = fixed_split();
        let test_items = data.test[0].clone();
        let t0 = test_items[0] as usize;
        // Hit at rank 0 vs hit at the last rank. All other items get strictly
        // decreasing scores so no tie-break ambiguity can reorder the hits.
        let mut early = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 10);
            for j in 0..10 {
                t.set(0, j, -(j as f32));
            }
            t.set(0, t0, 5.0);
            t
        };
        let mut late = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 10);
            for j in 0..10 {
                t.set(0, j, -(j as f32));
            }
            t.set(0, t0, -100.0);
            t
        };
        let m_early = evaluate(&mut early, &data, &EvalSpec::at(8));
        let m_late = evaluate(&mut late, &data, &EvalSpec::at(8));
        assert!(m_early.ndcg > m_late.ndcg);
    }

    #[test]
    fn top_n_masked_orders_descending() {
        let scores = vec![0.1, 0.9, 0.5, 0.7, 0.3];
        let top = top_n_masked(&scores, &[], 3);
        assert_eq!(top, vec![1, 3, 2]);
        let masked = top_n_masked(&scores, &[1, 3], 3);
        assert_eq!(masked, vec![2, 4, 0]);
    }

    /// Reusing one scratch across many rankings must give exactly the same
    /// results as a fresh scratch (or the allocating wrapper) per call.
    #[test]
    fn scratch_reuse_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        let rows = imcat_tensor::normal(40, 25, 1.0, &mut rng);
        let mut reused = TopKScratch::default();
        for r in 0..rows.rows() {
            let mask: Vec<u32> = (0..25).filter(|j| (j + r) % 3 == 0).map(|j| j as u32).collect();
            let n = 1 + r % 12;
            let fresh = top_n_masked(rows.row(r), &mask, n);
            let shared = top_n_masked_with(rows.row(r), &mask, n, &mut reused);
            assert_eq!(fresh, shared, "row {r} diverged under scratch reuse");
        }
        // Degenerate case: everything masked -> empty list, no panic.
        let all: Vec<u32> = (0..25).collect();
        assert!(top_n_masked_with(rows.row(0), &all, 5, &mut reused).is_empty());
    }
}
