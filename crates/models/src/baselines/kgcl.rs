//! KGCL baseline (Yang et al. 2022): knowledge-graph contrastive learning —
//! cross-view contrastive signals between the collaborative-filtering graph
//! and the knowledge (item–tag) graph, on top of a LightGCN encoder.
//!
//! Mechanisms preserved: (1) a CF view from edge-dropout LightGCN
//! propagation; (2) a knowledge view where item representations absorb their
//! tag context; (3) cross-view InfoNCE on items plus a dual-dropout-view
//! contrast on users; (4) BPR for ranking. Simplification: the original's
//! knowledge-guided (consistency-weighted) edge dropout is replaced with
//! uniform dropout.

use std::rc::Rc;

use imcat_data::{BprSampler, SplitDataset};
use imcat_graph::{joint_normalized_adjacency, Bipartite};
use imcat_tensor::{xavier_uniform, Adam, Csr, ParamId, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;

use crate::common::{
    bpr_loss, dedup_ids, info_nce, info_nce_one_way, propagate_mean, propagate_mean_tensor,
    split_user_item, EpochStats, RecModel, TrainConfig,
};

/// Knowledge graph contrastive learning recommender.
pub struct Kgcl {
    store: ParamStore,
    adam: Adam,
    node_emb: ParamId,
    tag_emb: ParamId,
    adj: Rc<Csr>,
    view1: Rc<Csr>,
    view2: Rc<Csr>,
    it_agg: Rc<Csr>,
    it_agg_t: Rc<Csr>,
    train_graph: Bipartite,
    cfg: TrainConfig,
    sampler: BprSampler,
    n_users: usize,
    n_items: usize,
    /// Edge dropout probability.
    pub drop_rate: f32,
    /// Weight of the contrastive losses.
    pub ssl_weight: f32,
    /// InfoNCE temperature.
    pub tau: f32,
    /// Relative scale of the cross-view item contrast. Items sharing tags
    /// have near-identical knowledge views, so this term needs a gentler
    /// weight than the user dual-view contrast.
    pub item_ssl_scale: f32,
}

impl Kgcl {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let n_users = data.n_users();
        let n_items = data.n_items();
        let mut store = ParamStore::new();
        let node_emb = store.add("node_emb", xavier_uniform(n_users + n_items, cfg.dim, rng));
        let tag_emb = store.add("tag_emb", xavier_uniform(data.n_tags(), cfg.dim, rng));
        let adam = Adam::new(cfg.adam(), &store);
        let adj = Rc::new(joint_normalized_adjacency(&data.train));
        let it = data.item_tag.row_mean_aggregator();
        let it_t = it.transpose();
        let mut model = Self {
            store,
            adam,
            node_emb,
            tag_emb,
            adj: Rc::clone(&adj),
            view1: Rc::clone(&adj),
            view2: adj,
            it_agg: Rc::new(it),
            it_agg_t: Rc::new(it_t),
            train_graph: data.train.clone(),
            cfg,
            sampler: BprSampler::for_user_items(data),
            n_users,
            n_items,
            drop_rate: 0.1,
            ssl_weight: 0.005,
            tau: 1.0,
            item_ssl_scale: 0.25,
        };
        model.refresh_views(rng);
        model
    }

    /// Rebuilds the dropout views (once per epoch).
    pub fn refresh_views(&mut self, rng: &mut StdRng) {
        let v1 = Bipartite::new(self.train_graph.forward().drop_edges(self.drop_rate, rng));
        let v2 = Bipartite::new(self.train_graph.forward().drop_edges(self.drop_rate, rng));
        self.view1 = Rc::new(joint_normalized_adjacency(&v1));
        self.view2 = Rc::new(joint_normalized_adjacency(&v2));
    }

    /// Knowledge view of item embeddings: `0.5 (v + mean_tags(v))`, `[V, d]`.
    fn knowledge_view(&self, tape: &mut Tape, item_rows: Var) -> Var {
        let tags = tape.leaf(&self.store, self.tag_emb);
        let ctx = tape.spmm(&self.it_agg, &self.it_agg_t, tags); // [V, d]
        let sum = tape.add(item_rows, ctx);
        tape.scale(sum, 0.5)
    }

    fn item_rows(&self, tape: &mut Tape, nodes: Var) -> Var {
        let ids: Vec<u32> = (self.n_users as u32..(self.n_users + self.n_items) as u32).collect();
        tape.gather_rows(nodes, &ids)
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let x0 = tape.leaf(&self.store, self.node_emb);
        let nodes = propagate_mean(&mut tape, &self.adj, x0, self.cfg.gnn_layers);
        let pos: Vec<u32> = batch.positives.iter().map(|&v| v + self.n_users as u32).collect();
        let neg: Vec<u32> = batch.negatives.iter().map(|&v| v + self.n_users as u32).collect();
        let u = tape.gather_rows(nodes, &batch.anchors);
        let vp = tape.gather_rows(nodes, &pos);
        let vn = tape.gather_rows(nodes, &neg);
        let sp = tape.rowwise_dot(u, vp);
        let sn = tape.rowwise_dot(u, vn);
        let cf = bpr_loss(&mut tape, sp, sn);
        // Cross-view item contrast: CF view vs knowledge view. Duplicates
        // are removed — a duplicated node would appear as its own
        // (unseparable) negative.
        let uniq_users = dedup_ids(&batch.anchors);
        let uniq_items = dedup_ids(&batch.positives);
        let n1 = propagate_mean(&mut tape, &self.view1, x0, self.cfg.gnn_layers);
        let items_cf = self.item_rows(&mut tape, n1);
        let items_kg = self.knowledge_view(&mut tape, items_cf);
        let i_cf = tape.gather_rows(items_cf, &uniq_items);
        let i_kg = tape.gather_rows(items_kg, &uniq_items);
        // One-way: anchors are the (possibly near-duplicate) knowledge views,
        // negatives the distinct CF views.
        let ssl_items = info_nce_one_way(&mut tape, i_kg, i_cf, 1.0);
        let ssl_items = tape.scale(ssl_items, self.item_ssl_scale);
        // Dual-view user contrast.
        let n2 = propagate_mean(&mut tape, &self.view2, x0, self.cfg.gnn_layers);
        let u1 = tape.gather_rows(n1, &uniq_users);
        let u2 = tape.gather_rows(n2, &uniq_users);
        let ssl_users = info_nce(&mut tape, u1, u2, self.tau, None);
        let ssl = tape.add(ssl_items, ssl_users);
        let ssl = tape.scale(ssl, self.ssl_weight);
        let loss = tape.add(cf, ssl);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.store);
        self.adam.step(&mut self.store);
        value
    }
}

impl RecModel for Kgcl {
    fn name(&self) -> String {
        "KGCL".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        self.refresh_views(rng);
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        let nodes =
            propagate_mean_tensor(&self.adj, self.store.value(self.node_emb), self.cfg.gnn_layers);
        Some(split_user_item(&nodes, self.n_users, self.n_items))
    }

    fn num_params(&self) -> usize {
        self.store.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{small_split, tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn knowledge_view_mixes_tag_context() {
        let data = tiny_split(141);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Kgcl::new(&data, TrainConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let x0 = tape.leaf(&model.store, model.node_emb);
        let items = model.item_rows(&mut tape, x0);
        let kg = model.knowledge_view(&mut tape, items);
        assert_eq!(tape.value(kg).shape(), (data.n_items(), 32));
        // The knowledge view must differ from the raw item embeddings for
        // items that have tags.
        let raw = tape.value(items).clone();
        let kgv = tape.value(kg);
        let mut differs = 0;
        for j in 0..data.n_items() {
            let diff: f32 = raw.row(j).iter().zip(kgv.row(j)).map(|(a, b)| (a - b).abs()).sum();
            if diff > 1e-6 {
                differs += 1;
            }
        }
        assert!(differs > data.n_items() / 2);
    }

    #[test]
    fn loss_decreases() {
        let data = tiny_split(142);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Kgcl::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..15 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = small_split(143);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Kgcl::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 60);
    }
}
