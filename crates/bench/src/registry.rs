//! Model registry: builds any of the paper's 14 methods by name.

use imcat_core::{Imcat, ImcatConfig};
use imcat_data::SplitDataset;
use imcat_models::{
    Bprmf, Cfa, Cke, Dspr, Kgat, Kgcl, Kgin, LightGcn, Neumf, RecModel, RippleNet, Sgl, Tgcn,
    TrainConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All methods of Table II, in the paper's row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// BPRMF backbone (no auxiliary information).
    Bprmf,
    /// NeuMF backbone (no auxiliary information).
    Neumf,
    /// LightGCN backbone (no auxiliary information).
    LightGcn,
    /// CFA (tag-enhanced).
    Cfa,
    /// DSPR (tag-enhanced).
    Dspr,
    /// TGCN (tag-enhanced).
    Tgcn,
    /// CKE (KG-enhanced).
    Cke,
    /// RippleNet (KG-enhanced).
    RippleNet,
    /// KGAT (KG-enhanced).
    Kgat,
    /// KGIN (KG-enhanced).
    Kgin,
    /// SGL (SSL-based).
    Sgl,
    /// KGCL (SSL-based).
    Kgcl,
    /// IMCAT on the BPRMF backbone.
    BImcat,
    /// IMCAT on the NeuMF backbone.
    NImcat,
    /// IMCAT on the LightGCN backbone.
    LImcat,
}

impl ModelKind {
    /// Table II row order.
    pub fn all() -> Vec<ModelKind> {
        use ModelKind::*;
        vec![
            Bprmf, Neumf, LightGcn, Cfa, Dspr, Tgcn, Cke, RippleNet, Kgat, Kgin, Sgl, Kgcl, BImcat,
            NImcat, LImcat,
        ]
    }

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Bprmf => "BPRMF",
            ModelKind::Neumf => "NeuMF",
            ModelKind::LightGcn => "LightGCN",
            ModelKind::Cfa => "CFA",
            ModelKind::Dspr => "DSPR",
            ModelKind::Tgcn => "TGCN",
            ModelKind::Cke => "CKE",
            ModelKind::RippleNet => "RippleNet",
            ModelKind::Kgat => "KGAT",
            ModelKind::Kgin => "KGIN",
            ModelKind::Sgl => "SGL",
            ModelKind::Kgcl => "KGCL",
            ModelKind::BImcat => "B-IMCAT",
            ModelKind::NImcat => "N-IMCAT",
            ModelKind::LImcat => "L-IMCAT",
        }
    }

    /// Parses a display name (case-insensitive).
    pub fn parse(name: &str) -> Option<ModelKind> {
        ModelKind::all().into_iter().find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// True for the IMCAT variants.
    pub fn is_imcat(&self) -> bool {
        matches!(self, ModelKind::BImcat | ModelKind::NImcat | ModelKind::LImcat)
    }

    /// Builds the model on a split. `icfg` only affects IMCAT variants;
    /// `seed` controls parameter initialization (the paper re-runs with the
    /// same partition but different initializations).
    pub fn build(
        &self,
        data: &SplitDataset,
        tcfg: &TrainConfig,
        icfg: &ImcatConfig,
        seed: u64,
    ) -> Box<dyn RecModel> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            ModelKind::Bprmf => Box::new(Bprmf::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Neumf => Box::new(Neumf::new(data, tcfg.clone(), &mut rng)),
            ModelKind::LightGcn => Box::new(LightGcn::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Cfa => Box::new(Cfa::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Dspr => Box::new(Dspr::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Tgcn => Box::new(Tgcn::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Cke => Box::new(Cke::new(data, tcfg.clone(), &mut rng)),
            ModelKind::RippleNet => Box::new(RippleNet::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Kgat => Box::new(Kgat::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Kgin => Box::new(Kgin::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Sgl => Box::new(Sgl::new(data, tcfg.clone(), &mut rng)),
            ModelKind::Kgcl => Box::new(Kgcl::new(data, tcfg.clone(), &mut rng)),
            ModelKind::BImcat => {
                let bb = Bprmf::new(data, tcfg.clone(), &mut rng);
                Box::new(Imcat::new(bb, data, icfg.clone(), &mut rng))
            }
            ModelKind::NImcat => {
                let bb = Neumf::new(data, tcfg.clone(), &mut rng);
                Box::new(Imcat::new(bb, data, icfg.clone(), &mut rng))
            }
            ModelKind::LImcat => {
                let bb = LightGcn::new(data, tcfg.clone(), &mut rng);
                Box::new(Imcat::new(bb, data, icfg.clone(), &mut rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_data::{generate, SynthConfig};

    #[test]
    fn all_has_15_methods_in_order() {
        let all = ModelKind::all();
        assert_eq!(all.len(), 15);
        assert_eq!(all[0].name(), "BPRMF");
        assert_eq!(all[14].name(), "L-IMCAT");
    }

    #[test]
    fn parse_roundtrip() {
        for k in ModelKind::all() {
            assert_eq!(ModelKind::parse(k.name()), Some(k));
        }
        assert_eq!(ModelKind::parse("l-imcat"), Some(ModelKind::LImcat));
        assert_eq!(ModelKind::parse("nope"), None);
    }

    #[test]
    fn every_model_builds_and_trains_one_epoch() {
        let data = generate(&SynthConfig::tiny(), 5).dataset;
        let mut rng = StdRng::seed_from_u64(0);
        let split = data.split((0.7, 0.1, 0.2), &mut rng);
        let tcfg = TrainConfig::default();
        let icfg = ImcatConfig { pretrain_epochs: 0, ..Default::default() };
        for kind in ModelKind::all() {
            let mut model = kind.build(&split, &tcfg, &icfg, 1);
            let mut rng = StdRng::seed_from_u64(2);
            let stats = model.train_epoch(&mut rng);
            assert!(stats.loss.is_finite(), "{} produced NaN loss", kind.name());
            let scores = model.score_users(&[0, 1]);
            assert_eq!(scores.shape(), (2, split.n_items()));
        }
    }
}
