//! Dataset model and train/validation/test splitting.
//!
//! Mirrors the problem formulation of §III-A: a binary user–item rating
//! matrix `Y`, an item–tag labelling matrix `Y'`, and a per-user 7:1:2 split
//! of interactions into train/validation/test (§V-B).

use imcat_graph::Bipartite;
use imcat_tensor::Csr;
use rand::seq::SliceRandom;
use rand::Rng;

/// A tag-enhanced recommendation dataset before splitting.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"HetRec-MV (synthetic)"`).
    pub name: String,
    /// User → item interactions (`Y`).
    pub user_item: Bipartite,
    /// Item → tag assignments (`Y'`).
    pub item_tag: Bipartite,
}

impl Dataset {
    /// Builds a dataset from raw incidence matrices.
    pub fn new(name: impl Into<String>, user_item: Csr, item_tag: Csr) -> Self {
        assert_eq!(
            user_item.cols(),
            item_tag.rows(),
            "user-item and item-tag matrices disagree on the number of items"
        );
        Self {
            name: name.into(),
            user_item: Bipartite::new(user_item),
            item_tag: Bipartite::new(item_tag),
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.user_item.n_rows()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.user_item.n_cols()
    }

    /// Number of tags.
    pub fn n_tags(&self) -> usize {
        self.item_tag.n_cols()
    }

    /// Table-I style statistics.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            n_users: self.n_users(),
            n_items: self.n_items(),
            n_tags: self.n_tags(),
            n_ui: self.user_item.n_edges(),
            ui_density: self.user_item.density(),
            ui_avg_degree: self.user_item.avg_row_degree(),
            n_it: self.item_tag.n_edges(),
            it_density: self.item_tag.density(),
            it_avg_degree: self.item_tag.avg_row_degree(),
        }
    }

    /// Splits each user's interactions into train/validation/test with the
    /// given ratios (paper: 0.7 / 0.1 / 0.2). Every user keeps at least one
    /// training item, and users with ≥ 2 interactions keep at least one test
    /// item.
    pub fn split(&self, ratios: (f64, f64, f64), rng: &mut impl Rng) -> SplitDataset {
        let (tr, va, te) = ratios;
        assert!((tr + va + te - 1.0).abs() < 1e-9, "split ratios must sum to 1");
        let n_users = self.n_users();
        let mut train_adj: Vec<Vec<u32>> = Vec::with_capacity(n_users);
        let mut val: Vec<Vec<u32>> = Vec::with_capacity(n_users);
        let mut test: Vec<Vec<u32>> = Vec::with_capacity(n_users);
        for u in 0..n_users {
            let mut items: Vec<u32> = self.user_item.forward().row_indices(u).to_vec();
            items.shuffle(rng);
            let n = items.len();
            if n == 0 {
                train_adj.push(Vec::new());
                val.push(Vec::new());
                test.push(Vec::new());
                continue;
            }
            let n_test = if n >= 2 { ((n as f64 * te).round() as usize).max(1) } else { 0 };
            let n_val = if n - n_test >= 2 { (n as f64 * va).round() as usize } else { 0 };
            let n_train = n - n_test - n_val;
            debug_assert!(n_train >= 1);
            let mut it = items.into_iter();
            let tr_items: Vec<u32> = it.by_ref().take(n_train).collect();
            let va_items: Vec<u32> = it.by_ref().take(n_val).collect();
            let te_items: Vec<u32> = it.collect();
            train_adj.push(tr_items);
            val.push(va_items);
            test.push(te_items);
        }
        let train = Csr::from_adjacency(n_users, self.n_items(), &train_adj);
        SplitDataset {
            name: self.name.clone(),
            train: Bipartite::new(train),
            val,
            test,
            item_tag: self.item_tag.clone(),
        }
    }
}

/// A dataset with interactions split for evaluation. The item–tag matrix is
/// side information and is never split.
#[derive(Clone, Debug)]
pub struct SplitDataset {
    /// Dataset name.
    pub name: String,
    /// Training user → item interactions.
    pub train: Bipartite,
    /// Per-user validation items.
    pub val: Vec<Vec<u32>>,
    /// Per-user test items.
    pub test: Vec<Vec<u32>>,
    /// Item → tag assignments.
    pub item_tag: Bipartite,
}

impl SplitDataset {
    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.train.n_rows()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.train.n_cols()
    }

    /// Number of tags.
    pub fn n_tags(&self) -> usize {
        self.item_tag.n_cols()
    }

    /// Training items of one user (sorted).
    pub fn train_items(&self, u: usize) -> &[u32] {
        self.train.forward().row_indices(u)
    }

    /// All `(user, item)` training pairs.
    pub fn train_pairs(&self) -> Vec<(u32, u32)> {
        self.train.forward().iter().map(|(u, v, _)| (u, v)).collect()
    }

    /// All `(item, tag)` pairs.
    pub fn item_tag_pairs(&self) -> Vec<(u32, u32)> {
        self.item_tag.forward().iter().map(|(v, t, _)| (v, t)).collect()
    }

    /// Users with a non-empty test set (the evaluable population).
    pub fn test_users(&self) -> Vec<u32> {
        (0..self.n_users() as u32).filter(|&u| !self.test[u as usize].is_empty()).collect()
    }
}

/// Statistics matching a row block of the paper's Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// #User.
    pub n_users: usize,
    /// #Item.
    pub n_items: usize,
    /// #Tag.
    pub n_tags: usize,
    /// #UI — user–item interactions.
    pub n_ui: usize,
    /// UI density.
    pub ui_density: f64,
    /// UI average user degree.
    pub ui_avg_degree: f64,
    /// #IT — item–tag assignments.
    pub n_it: usize,
    /// IT density.
    pub it_density: f64,
    /// IT average item degree.
    pub it_avg_degree: f64,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<24} users={:<6} items={:<6} tags={:<5} UI={:<7} (density {:.2}%, deg {:.2}) IT={:<7} (density {:.2}%, deg {:.2})",
            self.name,
            self.n_users,
            self.n_items,
            self.n_tags,
            self.n_ui,
            self.ui_density * 100.0,
            self.ui_avg_degree,
            self.n_it,
            self.it_density * 100.0,
            self.it_avg_degree,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> Dataset {
        let ui = Csr::from_adjacency(3, 10, &[(0..10).collect(), vec![0, 1, 2, 3, 4], vec![7, 8]]);
        let it = Csr::from_adjacency(10, 4, &(0..10).map(|i| vec![i % 4]).collect::<Vec<_>>());
        Dataset::new("toy", ui, it)
    }

    #[test]
    fn stats_match_construction() {
        let d = toy_dataset();
        let s = d.stats();
        assert_eq!(s.n_users, 3);
        assert_eq!(s.n_items, 10);
        assert_eq!(s.n_tags, 4);
        assert_eq!(s.n_ui, 17);
        assert_eq!(s.n_it, 10);
        assert!((s.ui_density - 17.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = toy_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let s = d.split((0.7, 0.1, 0.2), &mut rng);
        for u in 0..3 {
            let train: Vec<u32> = s.train_items(u).to_vec();
            let mut all: Vec<u32> = train.clone();
            all.extend(&s.val[u]);
            all.extend(&s.test[u]);
            all.sort_unstable();
            let mut expected: Vec<u32> = d.user_item.forward().row_indices(u).to_vec();
            expected.sort_unstable();
            assert_eq!(all, expected, "user {u} split loses/duplicates items");
            for t in &s.test[u] {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn split_keeps_nonempty_train_and_test() {
        let d = toy_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let s = d.split((0.7, 0.1, 0.2), &mut rng);
        for u in 0..3 {
            assert!(!s.train_items(u).is_empty(), "user {u} lost all train items");
            assert!(!s.test[u].is_empty(), "user {u} lost all test items");
        }
        assert_eq!(s.test_users(), vec![0, 1, 2]);
    }

    #[test]
    fn split_ratio_roughly_respected_for_large_user() {
        let items: Vec<u32> = (0..100).collect();
        let ui = Csr::from_adjacency(1, 100, &[items]);
        let it = Csr::from_adjacency(100, 2, &(0..100).map(|i| vec![i % 2]).collect::<Vec<_>>());
        let d = Dataset::new("big-user", ui, it);
        let mut rng = StdRng::seed_from_u64(2);
        let s = d.split((0.7, 0.1, 0.2), &mut rng);
        assert_eq!(s.train_items(0).len(), 70);
        assert_eq!(s.val[0].len(), 10);
        assert_eq!(s.test[0].len(), 20);
    }

    #[test]
    #[should_panic(expected = "disagree on the number of items")]
    fn mismatched_item_counts_rejected() {
        let ui = Csr::from_adjacency(1, 3, &[vec![0]]);
        let it = Csr::from_adjacency(4, 2, &[vec![0], vec![1], vec![0], vec![1]]);
        let _ = Dataset::new("bad", ui, it);
    }
}
