//! Finite-difference validation of every autodiff operator.
//!
//! For each op (or realistic composition of ops) we build a scalar loss from
//! parameter leaves, back-propagate, and compare the analytic parameter
//! gradients against central finite differences computed by re-running the
//! forward pass with perturbed parameters.

use std::rc::Rc;

use imcat_tensor::{normal, Csr, ParamStore, Tape, Tensor, Var};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Relative-error comparison robust near zero.
fn close(a: f32, n: f32, tol: f32) -> bool {
    (a - n).abs() <= tol * a.abs().max(n.abs()).max(1.0)
}

/// Checks d(loss)/d(param) for every parameter entry by central differences.
fn gradcheck(
    store: &mut ParamStore,
    build: impl Fn(&mut Tape, &ParamStore) -> Var,
    h: f32,
    tol: f32,
) {
    // Analytic pass.
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.backward(loss, store);
    let analytic: Vec<Tensor> = store.iter().map(|(_, p)| p.grad().clone()).collect();
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    store.zero_grads();

    for (pi, &pid) in ids.iter().enumerate() {
        let (rows, cols) = store.value(pid).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.value(pid).get(r, c);
                store.value_mut(pid).set(r, c, orig + h);
                let mut t1 = Tape::new();
                let l1 = build(&mut t1, store);
                let f1 = t1.value(l1).item();
                store.value_mut(pid).set(r, c, orig - h);
                let mut t2 = Tape::new();
                let l2 = build(&mut t2, store);
                let f2 = t2.value(l2).item();
                store.value_mut(pid).set(r, c, orig);
                let numeric = (f1 - f2) / (2.0 * h);
                let a = analytic[pi].get(r, c);
                assert!(
                    close(a, numeric, tol),
                    "param {pi} entry ({r},{c}): analytic {a} vs numeric {numeric}"
                );
            }
        }
    }
}

fn seeded_store(shapes: &[(usize, usize)], seed: u64) -> ParamStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    for (i, &(r, c)) in shapes.iter().enumerate() {
        let t = normal(r, c, 0.8, &mut rng);
        store.add(format!("p{i}"), t);
    }
    store
}

fn pid(store: &ParamStore, i: usize) -> imcat_tensor::ParamId {
    store.iter().nth(i).unwrap().0
}

#[test]
fn grad_matmul_chain() {
    let mut store = seeded_store(&[(3, 4), (4, 2)], 1);
    gradcheck(
        &mut store,
        |t, s| {
            let a = t.leaf(s, pid(s, 0));
            let b = t.leaf(s, pid(s, 1));
            let c = t.matmul(a, b);
            let sq = t.mul(c, c);
            t.mean_all(sq)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_matmul_nt_and_diag() {
    let mut store = seeded_store(&[(3, 4), (3, 4)], 2);
    gradcheck(
        &mut store,
        |t, s| {
            let a = t.leaf(s, pid(s, 0));
            let b = t.leaf(s, pid(s, 1));
            let logits = t.matmul_nt(a, b);
            let d = t.take_diag(logits);
            let sq = t.mul(d, d);
            t.sum_all(sq)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_gather_sparse() {
    let mut store = seeded_store(&[(6, 3)], 3);
    gradcheck(
        &mut store,
        |t, s| {
            // Repeated rows exercise accumulation.
            let g = t.gather(s, pid(s, 0), &[1, 4, 1]);
            let sq = t.mul(g, g);
            t.sum_all(sq)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_gather_rows_from_node() {
    let mut store = seeded_store(&[(5, 3), (3, 3)], 4);
    gradcheck(
        &mut store,
        |t, s| {
            let a = t.leaf(s, pid(s, 0));
            let w = t.leaf(s, pid(s, 1));
            let h = t.matmul(a, w);
            let picked = t.gather_rows(h, &[0, 2, 2, 4]);
            let sq = t.mul(picked, picked);
            t.mean_all(sq)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_spmm() {
    let csr = Rc::new(Csr::from_triplets(
        3,
        4,
        &[(0, 0, 0.5), (0, 3, 1.5), (1, 1, -1.0), (2, 2, 2.0), (2, 0, 1.0)],
    ));
    let csr_t = Rc::new(csr.transpose());
    let mut store = seeded_store(&[(4, 2)], 5);
    gradcheck(
        &mut store,
        |t, s| {
            let x = t.leaf(s, pid(s, 0));
            let y = t.spmm(&csr, &csr_t, x);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_bpr_style_loss() {
    // -mean(log sigmoid(u.v+ - u.v-)): the paper's Eq. 1.
    let mut store = seeded_store(&[(4, 3), (4, 3), (4, 3)], 6);
    gradcheck(
        &mut store,
        |t, s| {
            let u = t.leaf(s, pid(s, 0));
            let vp = t.leaf(s, pid(s, 1));
            let vn = t.leaf(s, pid(s, 2));
            let sp = t.rowwise_dot(u, vp);
            let sn = t.rowwise_dot(u, vn);
            let diff = t.sub(sp, sn);
            let ls = t.log_sigmoid(diff);
            let m = t.mean_all(ls);
            t.neg(m)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_infonce_style_loss() {
    // Bidirectional in-batch InfoNCE with relatedness weights (Eq. 11-13).
    let mut store = seeded_store(&[(4, 3), (4, 3)], 7);
    let weights = Tensor::from_vec(4, 1, vec![0.4, 0.1, 0.3, 0.2]);
    gradcheck(
        &mut store,
        |t, s| {
            let u = t.leaf(s, pid(s, 0));
            let z = t.leaf(s, pid(s, 1));
            let un = t.l2_normalize_rows(u, 1e-8);
            let zn = t.l2_normalize_rows(z, 1e-8);
            let logits = t.matmul_nt(un, zn);
            let logits = t.scale(logits, 1.0 / 0.2);
            let w = t.constant(weights.clone());
            let ls_u2z = t.log_softmax_rows(logits);
            let d1 = t.take_diag(ls_u2z);
            let lt = t.transpose(logits);
            let ls_z2u = t.log_softmax_rows(lt);
            let d2 = t.take_diag(ls_z2u);
            let d = t.add(d1, d2);
            let dw = t.mul(d, w);
            let ssum = t.sum_all(dw);
            let half = t.scale(ssum, -0.5);
            t.sum_all(half)
        },
        1e-2,
        3e-2,
    );
}

#[test]
fn grad_student_t_kl_loss() {
    // Student-t soft assignment + KL to a *fixed* target (Eq. 4-6).
    let mut store = seeded_store(&[(5, 4), (3, 4)], 8);
    // Precompute a fixed target distribution Q-hat (detached in the paper).
    let qhat = Tensor::from_vec(
        5,
        3,
        vec![0.7, 0.2, 0.1, 0.1, 0.8, 0.1, 0.3, 0.3, 0.4, 0.05, 0.15, 0.8, 0.5, 0.25, 0.25],
    );
    gradcheck(
        &mut store,
        |t, s| {
            let tags = t.leaf(s, pid(s, 0));
            let centers = t.leaf(s, pid(s, 1));
            let d2 = t.sq_dist(tags, centers);
            let eta = 1.0_f32;
            let base = t.scale(d2, 1.0 / eta);
            let base = t.add_scalar(base, 1.0);
            let q_un = t.powf(base, -(eta + 1.0) / 2.0);
            let q = t.row_normalize(q_un);
            let lnq = t.ln(q, 1e-12);
            let qh = t.constant(qhat.clone());
            let cross = t.mul(qh, lnq);
            let sumc = t.sum_all(cross);
            t.neg(sumc) // KL up to the constant entropy of qhat
        },
        5e-3,
        3e-2,
    );
}

#[test]
fn grad_mlp_with_activations() {
    // NeuMF-style tower: LeakyReLU and tanh layers with bias adds.
    let mut store = seeded_store(&[(4, 3), (3, 5), (1, 5), (5, 1), (1, 1)], 9);
    gradcheck(
        &mut store,
        |t, s| {
            let x = t.leaf(s, pid(s, 0));
            let w1 = t.leaf(s, pid(s, 1));
            let b1 = t.leaf(s, pid(s, 2));
            let w2 = t.leaf(s, pid(s, 3));
            let b2 = t.leaf(s, pid(s, 4));
            let h = t.matmul(x, w1);
            let h = t.add_row_vec(h, b1);
            let h = t.leaky_relu(h, 0.1);
            let o = t.matmul(h, w2);
            let o = t.add_row_vec(o, b2);
            let o = t.tanh(o);
            let sq = t.mul(o, o);
            t.mean_all(sq)
        },
        1e-2,
        3e-2,
    );
}

#[test]
fn grad_softmax_sigmoid_exp() {
    let mut store = seeded_store(&[(3, 4)], 10);
    gradcheck(
        &mut store,
        |t, s| {
            let x = t.leaf(s, pid(s, 0));
            let sm = t.softmax_rows(x);
            let sg = t.sigmoid(sm);
            let ex = t.exp(sg);
            t.mean_all(ex)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_concat_slice_sumrows() {
    let mut store = seeded_store(&[(3, 2), (3, 3)], 11);
    gradcheck(
        &mut store,
        |t, s| {
            let a = t.leaf(s, pid(s, 0));
            let b = t.leaf(s, pid(s, 1));
            let cat = t.concat_cols(&[a, b]);
            let sl = t.slice_cols(cat, 1, 4);
            let rs = t.sum_rows(sl);
            let cs = t.sum_cols(sl);
            let r = t.sum_all(rs);
            let c = t.sum_all(cs);
            let rr = t.mul(r, r);
            let cc = t.mul(c, c);
            let tot = t.add(rr, cc);
            t.sum_all(tot)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_concat_rows() {
    let mut store = seeded_store(&[(2, 3), (3, 3)], 14);
    gradcheck(
        &mut store,
        |t, s| {
            let a = t.leaf(s, pid(s, 0));
            let b = t.leaf(s, pid(s, 1));
            let cat = t.concat_rows(&[a, b]);
            let picked = t.gather_rows(cat, &[0, 4, 2]);
            let sq = t.mul(picked, picked);
            t.mean_all(sq)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_reshape_roundtrip() {
    let mut store = seeded_store(&[(2, 6)], 13);
    gradcheck(
        &mut store,
        |t, s| {
            let a = t.leaf(s, pid(s, 0));
            let r = t.reshape(a, 4, 3);
            let sm = t.softmax_rows(r);
            let back = t.reshape(sm, 2, 6);
            let sq = t.mul(back, back);
            t.mean_all(sq)
        },
        1e-2,
        2e-2,
    );
}

#[test]
fn grad_mul_col_vec_weighting() {
    let mut store = seeded_store(&[(4, 3), (4, 1)], 12);
    gradcheck(
        &mut store,
        |t, s| {
            let a = t.leaf(s, pid(s, 0));
            let v = t.leaf(s, pid(s, 1));
            let w = t.mul_col_vec(a, v);
            let sq = t.mul(w, w);
            t.mean_all(sq)
        },
        1e-2,
        2e-2,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random small compositions: normalize -> similarity -> log-softmax.
    /// Rows are rescaled to unit-or-larger norm: finite differences with
    /// h = 1e-2 are meaningless across the L2-normalization singularity at
    /// the origin (the analytic gradient there is covered by the
    /// deterministic tests with well-conditioned inputs).
    #[test]
    fn prop_contrastive_block(seed in 0u64..5000, rows in 2usize..5, dim in 2usize..5) {
        let mut store = seeded_store(&[(rows, dim), (rows, dim)], seed);
        for pi in 0..2 {
            let id = pid(&store, pi);
            let t = store.value_mut(id);
            for r in 0..t.rows() {
                let norm = t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm < 1.0 {
                    let scale = if norm < 1e-6 { 0.0 } else { 1.0 / norm };
                    for x in t.row_mut(r) {
                        *x = if scale == 0.0 { 1.0 } else { *x * scale };
                    }
                }
            }
        }
        gradcheck(
            &mut store,
            |t, s| {
                let a = t.leaf(s, pid(s, 0));
                let b = t.leaf(s, pid(s, 1));
                let an = t.l2_normalize_rows(a, 1e-8);
                let bn = t.l2_normalize_rows(b, 1e-8);
                let logits = t.matmul_nt(an, bn);
                let ls = t.log_softmax_rows(logits);
                let d = t.take_diag(ls);
                let sm = t.sum_all(d);
                t.neg(sm)
            },
            1e-2,
            5e-2,
        );
    }

    /// Random elementwise chains stay consistent.
    #[test]
    fn prop_elementwise_chain(seed in 0u64..5000, rows in 1usize..4, cols in 1usize..5) {
        let mut store = seeded_store(&[(rows, cols), (rows, cols)], seed);
        gradcheck(
            &mut store,
            |t, s| {
                let a = t.leaf(s, pid(s, 0));
                let b = t.leaf(s, pid(s, 1));
                let x = t.mul(a, b);
                let x = t.scale(x, 0.7);
                let x = t.add_scalar(x, 0.3);
                let x = t.tanh(x);
                let y = t.sub(x, b);
                let sq = t.mul(y, y);
                t.mean_all(sq)
            },
            1e-2,
            4e-2,
        );
    }

    /// Student-t assignment keeps rows on the simplex for random inputs.
    #[test]
    fn prop_row_normalize_simplex(seed in 0u64..5000, rows in 1usize..6, k in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = normal(rows, k, 1.0, &mut rng).map(|v| v * v + 0.01); // positive
        let mut tape = Tape::new();
        let c = tape.constant(x);
        let q = tape.row_normalize(c);
        for r in 0..rows {
            let s: f32 = tape.value(q).row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(tape.value(q).row(r).iter().all(|&v| v >= 0.0));
        }
    }
}
