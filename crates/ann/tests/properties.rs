//! Property-based tests for the persisted index sections: serialization
//! roundtrips bit-exactly, and truncated / corrupted / semantically invalid
//! `ann.*` sections are rejected all-or-nothing — a decode either yields a
//! fully validated index or an error, never something partial.

use imcat_ann::ivf::{SEC_ANN_CENTROIDS, SEC_ANN_LISTS};
use imcat_ann::{AnnConfig, IvfIndex, ProbeScratch};
use imcat_ckpt::{Checkpoint, Decoder, Encoder};
use imcat_tensor::Tensor;
use proptest::prelude::*;

/// A finite-valued item matrix drawn from raw bits.
fn finite_items(rows: usize, cols: usize, gen: &mut Gen) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| {
                let raw = f32::from_bits(gen.next_u64() as u32);
                if raw.is_finite() {
                    raw.clamp(-1e30, 1e30)
                } else {
                    gen.below(1000) as f32
                }
            })
            .collect(),
    )
}

fn arbitrary_index(seed: u64) -> (IvfIndex, Tensor) {
    let mut gen = Gen::new(seed);
    let n_items = 4 + gen.below(60) as usize;
    let d = 1 + gen.below(6) as usize;
    let items = finite_items(n_items, d, &mut gen);
    let cfg = AnnConfig {
        nlist: 1 + gen.below(n_items as u64) as usize,
        nprobe: 0,
        quantized: gen.below(2) == 1,
        ..AnnConfig::default()
    };
    (IvfIndex::build(&items, &cfg, seed ^ 0xa11), items)
}

fn serialize(idx: &IvfIndex) -> Vec<u8> {
    let mut ck = Checkpoint::new();
    idx.add_to_checkpoint(&mut ck);
    ck.to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Arbitrary indices survive the container roundtrip bit-exactly
    /// (checked by re-serializing the decoded index: any lost or altered bit
    /// in centroids, lists, codes, or scales would change the bytes).
    #[test]
    fn roundtrip_is_bit_exact(seed in 0u64..1_000_000) {
        let (idx, _) = arbitrary_index(seed);
        let bytes = serialize(&idx);
        let ck = Checkpoint::from_bytes(&bytes).unwrap();
        let back = IvfIndex::from_checkpoint(&ck).unwrap().expect("sections present");
        prop_assert_eq!(serialize(&back), bytes);
        prop_assert_eq!(back.nlist(), idx.nlist());
        prop_assert_eq!(back.quantized(), idx.quantized());
    }

    /// A container with no `ann.*` sections is "no index", not an error.
    #[test]
    fn absent_sections_decode_to_none(seed in 0u64..1_000_000) {
        let mut ck = Checkpoint::new();
        ck.insert("unrelated", vec![seed as u8]);
        prop_assert!(IvfIndex::from_checkpoint(&ck).unwrap().is_none());
    }

    /// Any strict truncation and any single-byte corruption of an
    /// index-bearing container is rejected at the container layer.
    #[test]
    fn truncation_and_corruption_are_rejected(seed in 0u64..1_000_000) {
        let (idx, _) = arbitrary_index(seed);
        let bytes = serialize(&idx);
        let mut gen = Gen::new(seed ^ 0xfeed);

        let cut = gen.below(bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "truncation at {} accepted", cut);

        let mut flipped = bytes.clone();
        let at = gen.below(bytes.len() as u64) as usize;
        flipped[at] ^= 1 + gen.below(255) as u8;
        prop_assert!(Checkpoint::from_bytes(&flipped).is_err(), "byte flip at {} accepted", at);
    }

    /// Structurally valid sections whose *content* breaks the index
    /// invariants decode as errors: duplicated ids, out-of-range ids,
    /// non-tiling offsets, and nonfinite centroids are all caught.
    #[test]
    fn semantic_corruption_is_rejected(seed in 0u64..1_000_000) {
        let (idx, _) = arbitrary_index(seed);
        let mut ck = Checkpoint::new();
        idx.add_to_checkpoint(&mut ck);

        // Decode the genuine lists so each corruption starts from valid data.
        let mut d = Decoder::new(ck.get(SEC_ANN_LISTS).unwrap());
        let offsets = d.u32s().unwrap();
        let entries = d.u32s().unwrap();

        let reencode = |offsets: &[u32], entries: &[u32]| {
            let mut e = Encoder::new();
            e.put_u32s(offsets);
            e.put_u32s(entries);
            e.into_bytes()
        };
        let with_lists = |bytes: Vec<u8>| {
            let mut bad = Checkpoint::new();
            idx.add_to_checkpoint(&mut bad);
            bad.insert(SEC_ANN_LISTS, bytes);
            IvfIndex::from_checkpoint(&bad)
        };

        if entries.len() >= 2 {
            // Duplicate one id (first entry overwrites the second).
            let mut dup = entries.clone();
            dup[1] = dup[0];
            prop_assert!(with_lists(reencode(&offsets, &dup)).is_err(), "duplicate id accepted");
        }

        // Out-of-range id.
        let mut oor = entries.clone();
        oor[0] = idx.n_items() as u32;
        prop_assert!(with_lists(reencode(&offsets, &oor)).is_err(), "out-of-range id accepted");

        // Offsets that no longer tile the entries.
        let mut bad_off = offsets.clone();
        *bad_off.last_mut().unwrap() += 1;
        prop_assert!(with_lists(reencode(&bad_off, &entries)).is_err(), "non-tiling offsets accepted");

        // Nonfinite centroid.
        let mut bad = Checkpoint::new();
        idx.add_to_checkpoint(&mut bad);
        let mut cd = Decoder::new(bad.get(SEC_ANN_CENTROIDS).unwrap());
        let mut cents = cd.tensor().unwrap();
        cents.row_mut(0)[0] = f32::NAN;
        let mut ce = Encoder::new();
        ce.put_tensor(&cents);
        bad.insert(SEC_ANN_CENTROIDS, ce.into_bytes());
        prop_assert!(IvfIndex::from_checkpoint(&bad).is_err(), "NaN centroid accepted");
    }

    /// Probing every list with the re-rank path recovers the exact
    /// brute-force score row: the compact candidate set is `0..n_items` in
    /// order and every score is bit-identical to the brute-force kernel
    /// (`imcat_simd::dot`, whatever backend this process dispatched).
    /// `probe_rerank` pins the historical shape — plain `probe` on a
    /// quantized index may certify a k-sized candidate set instead, which
    /// the quantization suite covers.
    #[test]
    fn full_probe_equals_brute_force(seed in 0u64..100_000) {
        let (idx, items) = arbitrary_index(seed);
        let mut gen = Gen::new(seed ^ 0x9e3);
        let query: Vec<f32> = (0..items.cols()).map(|_| gen.below(2001) as f32 / 1000.0 - 1.0).collect();
        let mut scratch = ProbeScratch::default();
        idx.probe_rerank(&query, &items, &[], 10, idx.nlist(), &mut scratch);
        prop_assert!(!scratch.certified_skip());
        let expected_ids: Vec<u32> = (0..items.rows() as u32).collect();
        prop_assert_eq!(scratch.candidates(), &expected_ids[..]);
        for (i, s) in scratch.scores().iter().enumerate() {
            let acc = imcat_simd::dot(&query, items.row(i));
            prop_assert_eq!(s.to_bits(), acc.to_bits(), "score {} differs from brute force", i);
        }
    }
}
