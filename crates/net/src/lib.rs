//! Network serving front-end: a from-scratch TCP/HTTP/1.1 layer over
//! item-sharded [`imcat_serve::Engine`] replicas.
//!
//! The crate has three layers, each usable on its own:
//!
//! * [`ShardedEngine`] — N engine replicas, each holding a contiguous slice
//!   of the item axis (and its own IVF lists when ANN is configured). A
//!   request fans out to every replica and the per-shard top-K lists are
//!   merged through the evaluator's own canonical ranking, so the merged
//!   answer is **bit-identical** to a single unsharded engine at any shard
//!   count — same items, same order, same score bits.
//! * [`Server`] — a dependency-free HTTP/1.1 front-end: one acceptor thread,
//!   a bounded admission queue, a pool of connection workers, and a single
//!   batcher thread that folds concurrent requests into micro-batch ticks
//!   ([`imcat_serve::Engine::recommend_batch`] per replica). Overload is
//!   shed with a fast `503` and counted (`serve.shed`) rather than queued
//!   without bound.
//! * [`loadgen`] — closed-loop and open-loop (coordinated-omission-aware)
//!   load generators speaking real sockets, used by `serve_bench` to map
//!   the latency/QPS frontier per shard count.
//!
//! Everything is `std`-only: the container has no crates.io access, so the
//! HTTP layer reuses the parsing discipline of `imcat-obs`'s telemetry
//! endpoint (bounded heads, total per-connection deadlines, tail-overlap
//! terminator scans) extended to persistent multi-request connections.

pub mod http;
pub mod loadgen;
mod server;
mod shard;

pub use loadgen::{closed_loop, open_loop, LoadReport};
pub use server::{NetConfig, NetStats, Server};
pub use shard::{shard_artifact, shard_ranges, ShardedEngine};

/// Parses a `usize` environment knob, falling back to `default` when the
/// variable is unset or malformed. Delegates to the workspace knob
/// registry (`imcat_obs::knobs`), so the key must be registered there.
pub fn env_usize(key: &str, default: usize) -> usize {
    imcat_obs::knob_usize(key, default)
}

/// Parses a `u64` environment knob, falling back to `default`. Registry-
/// checked like [`env_usize`].
pub fn env_u64(key: &str, default: u64) -> u64 {
    imcat_obs::knob_u64(key, default)
}
