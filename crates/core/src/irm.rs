//! Intent-aware Representation Modeling (paper §IV-A).
//!
//! User and item embeddings are *viewed* as `K` concatenated sub-embeddings
//! (Eq. 3) — column slices of the `d`-dimensional tables, so the parameter
//! count matches intent-unaware baselines. The semantic meaning of intent `k`
//! is pinned by tag cluster `k`, learned end-to-end: a Student-t soft
//! assignment `Q` of tags to learnable cluster centers (Eq. 4), a sharpened
//! target distribution `Q̂` (Eq. 5), and a KL self-supervision loss (Eq. 6).

use imcat_tensor::{Tape, Tensor, Var};
use rand::Rng;

/// Student-t soft assignment `Q` on the tape (differentiable w.r.t. both tag
/// embeddings and centers). `tags` is `[T, d]`, `centers` `[K, d]`; the
/// result is `[T, K]` with rows on the simplex (Eq. 4).
pub fn soft_assignment(tape: &mut Tape, tags: Var, centers: Var, eta: f32) -> Var {
    let d2 = tape.sq_dist(tags, centers);
    let scaled = tape.scale(d2, 1.0 / eta);
    let base = tape.add_scalar(scaled, 1.0);
    let q_un = tape.powf(base, -(eta + 1.0) / 2.0);
    tape.row_normalize(q_un)
}

/// Gradient-free version of [`soft_assignment`] for refresh passes.
pub fn soft_assignment_tensor(tags: &Tensor, centers: &Tensor, eta: f32) -> Tensor {
    let (t, k) = (tags.rows(), centers.rows());
    let mut q = Tensor::zeros(t, k);
    for i in 0..t {
        let mut sum = 0.0;
        for j in 0..k {
            let d2: f32 =
                tags.row(i).iter().zip(centers.row(j)).map(|(a, b)| (a - b) * (a - b)).sum();
            let v = (1.0 + d2 / eta).powf(-(eta + 1.0) / 2.0);
            q.set(i, j, v);
            sum += v;
        }
        if sum > 0.0 {
            for j in 0..k {
                let v = q.get(i, j) / sum;
                q.set(i, j, v);
            }
        }
    }
    q
}

/// Sharpened target distribution `Q̂` (Eq. 5). Treated as a constant during
/// back-propagation, as in the paper's self-training scheme.
#[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
pub fn target_distribution(q: &Tensor) -> Tensor {
    let (t, k) = q.shape();
    // f_k = Σ_l Q_lk (cluster soft frequencies).
    let mut f = vec![0f32; k];
    for l in 0..t {
        for (j, fj) in f.iter_mut().enumerate() {
            *fj += q.get(l, j);
        }
    }
    let mut out = Tensor::zeros(t, k);
    for l in 0..t {
        let mut sum = 0.0;
        for j in 0..k {
            let v = if f[j] > 0.0 { q.get(l, j) * q.get(l, j) / f[j] } else { 0.0 };
            out.set(l, j, v);
            sum += v;
        }
        if sum > 0.0 {
            for j in 0..k {
                let v = out.get(l, j) / sum;
                out.set(l, j, v);
            }
        }
    }
    out
}

/// `KL(Q̂ ‖ Q)` on the tape with `Q̂` constant (Eq. 6). The returned scalar
/// includes the constant `Σ Q̂ ln Q̂` term so its *value* is the true KL,
/// while gradients flow only through `ln Q`.
pub fn kl_loss(tape: &mut Tape, q: Var, target: &Tensor) -> Var {
    assert_eq!(tape.value(q).shape(), target.shape(), "KL shape mismatch");
    let entropy: f32 =
        target.as_slice().iter().map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 }).sum();
    let lnq = tape.ln(q, 1e-12);
    let tgt = tape.constant(target.clone());
    let cross = tape.mul(tgt, lnq);
    let s = tape.sum_all(cross);
    let neg = tape.neg(s);
    tape.add_scalar(neg, entropy)
}

/// Hard cluster index per tag: `argmax_k Q_lk`.
pub fn hard_assignment(q: &Tensor) -> Vec<usize> {
    (0..q.rows())
        .map(|l| {
            q.row(l)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(k, _)| k)
                .unwrap_or(0)
        })
        .collect()
}

/// Lloyd k-means over tag embeddings, used to initialize the cluster centers
/// when the clustering phase activates (after pre-training).
///
/// Delegates to the workspace-shared implementation in `imcat-ann` — the same
/// routine that trains the IVF coarse quantizer for serving — so the intent
/// clustering and the retrieval index can never drift apart. The shared
/// routine preserves this function's historical RNG draw sequence and
/// accumulation orders bit-exactly (checkpoints from earlier versions resume
/// unchanged).
pub fn kmeans_centers(tags: &Tensor, k: usize, iters: usize, rng: &mut impl Rng) -> Tensor {
    imcat_ann::kmeans_centers(tags, k, iters, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_tensor::normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered_tags(rng: &mut StdRng) -> Tensor {
        // Two well-separated blobs of 5 tags each in 3-D.
        let mut t = Tensor::zeros(10, 3);
        let noise = normal(10, 3, 0.05, rng);
        for i in 0..10 {
            let center = if i < 5 { [3.0, 0.0, 0.0] } else { [-3.0, 0.0, 0.0] };
            for (j, (o, &n)) in t.row_mut(i).iter_mut().zip(noise.row(i)).enumerate() {
                *o = center[j] + n;
            }
        }
        t
    }

    #[test]
    fn soft_assignment_rows_are_simplex() {
        let mut rng = StdRng::seed_from_u64(0);
        let tags = clustered_tags(&mut rng);
        let centers = Tensor::from_vec(2, 3, vec![3.0, 0.0, 0.0, -3.0, 0.0, 0.0]);
        let q = soft_assignment_tensor(&tags, &centers, 1.0);
        for l in 0..10 {
            let s: f32 = q.row(l).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Blob membership recovered.
        let hard = hard_assignment(&q);
        assert!(hard[..5].iter().all(|&k| k == 0));
        assert!(hard[5..].iter().all(|&k| k == 1));
    }

    #[test]
    fn tape_and_tensor_assignments_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let tags = normal(6, 4, 1.0, &mut rng);
        let centers = normal(3, 4, 1.0, &mut rng);
        let plain = soft_assignment_tensor(&tags, &centers, 1.0);
        let mut tape = Tape::new();
        let tv = tape.constant(tags);
        let cv = tape.constant(centers);
        let q = soft_assignment(&mut tape, tv, cv, 1.0);
        assert!(tape.value(q).approx_eq(&plain, 1e-5));
    }

    #[test]
    fn target_sharpens_assignments() {
        // Balanced clusters: sharpening dominates.
        let q = Tensor::from_vec(2, 2, vec![0.7, 0.3, 0.3, 0.7]);
        let t = target_distribution(&q);
        for l in 0..2 {
            let s: f32 = t.row(l).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(t.get(0, 0) > q.get(0, 0));
        assert!(t.get(1, 1) > q.get(1, 1));
    }

    #[test]
    fn target_balances_cluster_frequencies() {
        // Eq. 5 divides by soft cluster frequencies: mass assigned to an
        // over-popular cluster is *reduced*, preventing collapse.
        let q = Tensor::from_vec(2, 2, vec![0.7, 0.3, 0.6, 0.4]);
        let t = target_distribution(&q);
        // Cluster 0 holds most soft mass (1.3 vs 0.7); the weaker row's
        // cluster-0 share must shrink.
        assert!(t.get(1, 0) < q.get(1, 0));
    }

    #[test]
    fn kl_is_zero_iff_equal() {
        let q = Tensor::from_vec(2, 2, vec![0.5, 0.5, 0.2, 0.8]);
        let mut tape = Tape::new();
        let qv = tape.constant(q.clone());
        let kl_same = kl_loss(&mut tape, qv, &q);
        assert!(tape.value(kl_same).item().abs() < 1e-5);
        let other = Tensor::from_vec(2, 2, vec![0.9, 0.1, 0.5, 0.5]);
        let qv2 = tape.constant(q);
        let kl_diff = kl_loss(&mut tape, qv2, &other);
        assert!(tape.value(kl_diff).item() > 0.01);
    }

    #[test]
    fn kl_training_pulls_tags_toward_targets() {
        // Minimizing KL(Q̂ ‖ Q) against a *fixed* target must reduce the KL.
        use imcat_tensor::{Adam, AdamConfig, ParamStore};
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let tags = store.add("tags", normal(8, 3, 1.0, &mut rng));
        let centers = store.add("centers", normal(2, 3, 1.0, &mut rng));
        let target = {
            let q0 = soft_assignment_tensor(store.value(tags), store.value(centers), 1.0);
            target_distribution(&q0)
        };
        let cfg = AdamConfig { lr: 0.05, weight_decay: 0.0, ..Default::default() };
        let mut adam = Adam::new(cfg, &store);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut tape = Tape::new();
            let tv = tape.leaf(&store, tags);
            let cv = tape.leaf(&store, centers);
            let q = soft_assignment(&mut tape, tv, cv, 1.0);
            let loss = kl_loss(&mut tape, q, &target);
            last = tape.value(loss).item();
            first.get_or_insert(last);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert!(last < first.unwrap() * 0.5, "KL did not decrease: {first:?} -> {last}");
    }

    #[test]
    fn kmeans_recovers_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let tags = clustered_tags(&mut rng);
        let centers = kmeans_centers(&tags, 2, 10, &mut rng);
        // One center near +3, one near -3 on the first axis.
        let mut xs: Vec<f32> = (0..2).map(|j| centers.get(j, 0)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        assert!(xs[0] < -2.0, "centers: {xs:?}");
        assert!(xs[1] > 2.0, "centers: {xs:?}");
    }
}
