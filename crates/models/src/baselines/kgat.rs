//! KGAT baseline (Wang et al. 2019): attentive graph convolution over the
//! collaborative knowledge graph, with TransR-style relation modeling.
//!
//! The unified user–item–tag graph carries four relation types (interact,
//! interacted-by, has-tag, tag-of). Edge attention
//! `π(h, r, t) = LeakyReLU(e_t · tanh(e_h + e_r))`, normalized per head node,
//! modulates message passing; a TransR ranking loss trains the relation
//! space. Simplification: attention coefficients are recomputed from the
//! current embeddings at each epoch and treated as constants within the
//! epoch (the original back-propagates through them); the relation projection
//! is identity. The defining mechanism — relation-aware attention weighting
//! of propagation, trained jointly with a TransR objective — is preserved.

use std::rc::Rc;

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{xavier_uniform, Adam, Csr, ParamId, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;

use crate::baselines::unified::UnifiedLayout;
use crate::common::{bpr_loss, split_user_item, EpochStats, RecModel, TrainConfig};

const REL_UI: usize = 0;
const REL_IU: usize = 1;
const REL_IT: usize = 2;
const REL_TI: usize = 3;

/// Knowledge graph attention network.
pub struct Kgat {
    store: ParamStore,
    adam: Adam,
    node_emb: ParamId,
    rel_emb: ParamId,
    /// Directed edges `(head, tail, relation)` of the unified graph.
    edges: Vec<(u32, u32, usize)>,
    att_adj: Rc<Csr>,
    att_adj_t: Rc<Csr>,
    layout: UnifiedLayout,
    cfg: TrainConfig,
    ui_sampler: BprSampler,
    it_sampler: BprSampler,
    /// TransR loss weight.
    pub kg_weight: f32,
}

impl Kgat {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let layout = UnifiedLayout::of(data);
        let mut store = ParamStore::new();
        let node_emb = store.add("node_emb", xavier_uniform(layout.total(), cfg.dim, rng));
        let rel_emb = store.add("rel_emb", xavier_uniform(4, cfg.dim, rng));
        let adam = Adam::new(cfg.adam(), &store);
        let mut edges = Vec::new();
        for (u, v, _) in data.train.forward().iter() {
            edges.push((u, layout.item(v), REL_UI));
            edges.push((layout.item(v), u, REL_IU));
        }
        for (v, t, _) in data.item_tag.forward().iter() {
            edges.push((layout.item(v), layout.tag(t), REL_IT));
            edges.push((layout.tag(t), layout.item(v), REL_TI));
        }
        let mut model = Self {
            store,
            adam,
            node_emb,
            rel_emb,
            edges,
            att_adj: Rc::new(Csr::empty(layout.total(), layout.total())),
            att_adj_t: Rc::new(Csr::empty(layout.total(), layout.total())),
            layout,
            cfg,
            ui_sampler: BprSampler::for_user_items(data),
            it_sampler: BprSampler::for_item_tags(data),
            kg_weight: 0.5,
        };
        model.refresh_attention();
        model
    }

    /// Recomputes the attention-weighted adjacency from current embeddings.
    pub fn refresh_attention(&mut self) {
        let emb = self.store.value(self.node_emb);
        let rel = self.store.value(self.rel_emb);
        let n = self.layout.total();
        // Raw scores per edge.
        let mut scores: Vec<f32> = Vec::with_capacity(self.edges.len());
        for &(h, t, r) in &self.edges {
            let eh = emb.row(h as usize);
            let et = emb.row(t as usize);
            let er = rel.row(r);
            let s: f32 = et
                .iter()
                .zip(eh.iter().zip(er))
                .map(|(&tt, (&hh, &rr))| tt * (hh + rr).tanh())
                .sum();
            scores.push(if s > 0.0 { s } else { 0.1 * s }); // LeakyReLU
        }
        // Softmax per head node.
        let mut max_per_head = vec![f32::NEG_INFINITY; n];
        for (k, &(h, _, _)) in self.edges.iter().enumerate() {
            max_per_head[h as usize] = max_per_head[h as usize].max(scores[k]);
        }
        let mut sum_per_head = vec![0f32; n];
        let mut exps = vec![0f32; self.edges.len()];
        for (k, &(h, _, _)) in self.edges.iter().enumerate() {
            let e = (scores[k] - max_per_head[h as usize]).exp();
            exps[k] = e;
            sum_per_head[h as usize] += e;
        }
        let triplets: Vec<(u32, u32, f32)> = self
            .edges
            .iter()
            .enumerate()
            .map(|(k, &(h, t, _))| (h, t, exps[k] / sum_per_head[h as usize]))
            .collect();
        let adj = Csr::from_triplets(n, n, &triplets);
        self.att_adj_t = Rc::new(adj.transpose());
        self.att_adj = Rc::new(adj);
    }

    fn propagate(&self, tape: &mut Tape) -> Var {
        let mut x = tape.leaf(&self.store, self.node_emb);
        let mut acc = x;
        for _ in 0..self.cfg.gnn_layers {
            x = tape.spmm(&self.att_adj, &self.att_adj_t, x);
            acc = tape.add(acc, x);
        }
        tape.scale(acc, 1.0 / (self.cfg.gnn_layers as f32 + 1.0))
    }

    fn propagate_tensor(&self) -> Tensor {
        let mut x = self.store.value(self.node_emb).clone();
        let mut acc = x.clone();
        for _ in 0..self.cfg.gnn_layers {
            x = self.att_adj.spmm(&x);
            acc.add_assign(&x);
        }
        acc.map(|v| v / (self.cfg.gnn_layers as f32 + 1.0))
    }

    /// TransR energy with identity projection: `||e_h + e_r - e_t||²`.
    fn transr_energy(&self, tape: &mut Tape, heads: Var, tails: Var, rel: usize) -> Var {
        let r_all = tape.leaf(&self.store, self.rel_emb);
        let r = tape.gather_rows(r_all, &[rel as u32]);
        let diff = tape.sub(heads, tails);
        let shifted = broadcast_add_row(tape, diff, r);
        let sq = tape.mul(shifted, shifted);
        tape.sum_rows(sq)
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.ui_sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let nodes = self.propagate(&mut tape);
        let pos: Vec<u32> = batch.positives.iter().map(|&v| self.layout.item(v)).collect();
        let neg: Vec<u32> = batch.negatives.iter().map(|&v| self.layout.item(v)).collect();
        let u = tape.gather_rows(nodes, &batch.anchors);
        let vp = tape.gather_rows(nodes, &pos);
        let vn = tape.gather_rows(nodes, &neg);
        let sp = tape.rowwise_dot(u, vp);
        let sn = tape.rowwise_dot(u, vn);
        let cf = bpr_loss(&mut tape, sp, sn);
        // TransR on raw embeddings for item-tag triples.
        let kg = self.it_sampler.sample(self.cfg.batch_size, rng);
        let raw = tape.leaf(&self.store, self.node_emb);
        let items: Vec<u32> = kg.anchors.iter().map(|&v| self.layout.item(v)).collect();
        let tp: Vec<u32> = kg.positives.iter().map(|&t| self.layout.tag(t)).collect();
        let tn: Vec<u32> = kg.negatives.iter().map(|&t| self.layout.tag(t)).collect();
        let hv = tape.gather_rows(raw, &items);
        let tpv = tape.gather_rows(raw, &tp);
        let tnv = tape.gather_rows(raw, &tn);
        let e_pos = self.transr_energy(&mut tape, hv, tpv, REL_IT);
        let hv2 = tape.gather_rows(raw, &items);
        let e_neg = self.transr_energy(&mut tape, hv2, tnv, REL_IT);
        let kg_loss = bpr_loss(&mut tape, e_neg, e_pos);
        let kg_loss = tape.scale(kg_loss, self.kg_weight);
        let loss = tape.add(cf, kg_loss);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.store);
        self.adam.step(&mut self.store);
        value
    }
}

/// Adds row-vector `row` (`[1, d]` Var) to every row of `x`, keeping both
/// differentiable. Implemented as `x + ones ⊗ row` via matmul.
fn broadcast_add_row(tape: &mut Tape, x: Var, row: Var) -> Var {
    let b = tape.value(x).rows();
    let ones = tape.constant(Tensor::full(b, 1, 1.0));
    let tiled = tape.matmul(ones, row);
    tape.add(x, tiled)
}

impl RecModel for Kgat {
    fn name(&self) -> String {
        "KGAT".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        self.refresh_attention();
        let batches = self.ui_sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        let nodes = self.propagate_tensor();
        Some(split_user_item(&nodes, self.layout.n_users, self.layout.n_items))
    }

    fn num_params(&self) -> usize {
        self.store.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn attention_rows_sum_to_one() {
        let data = tiny_split(111);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Kgat::new(&data, TrainConfig::default(), &mut rng);
        for r in 0..model.layout.total() {
            let s: f32 = model.att_adj.row_values(r).iter().sum();
            if model.att_adj.row_nnz(r) > 0 {
                assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            }
        }
    }

    #[test]
    fn loss_decreases() {
        let data = tiny_split(112);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Kgat::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..15 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(113);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Kgat::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 30);
    }
}
