//! The serving engine: frozen-artifact top-K retrieval with an LRU cache,
//! request batching, and latency accounting.
//!
//! ## Parity contract
//!
//! A `recommend(user, k)` answer is bit-identical to what the offline
//! evaluator would rank for that user: scores are the same ascending-index
//! dot products `imcat_tensor::Tensor::matmul_nt` produces, and the top-K
//! selection is the evaluator's own `imcat_eval::top_n_masked_with` with the
//! artifact's training-item mask. The single-request path shards the item
//! axis over the [`imcat_par`] pool; each item's dot product is a sequential
//! accumulation, so the result does not depend on `IMCAT_THREADS`.
//!
//! ## ANN retrieval
//!
//! With [`ServeConfig::ann`] set, requests go through an `imcat-ann`
//! IVF-Flat probe instead of scoring the whole catalog: only the `nprobe`
//! best inverted lists are scanned, candidates are scored with the *same*
//! exact dot products, and the final list is re-ranked through the same
//! `top_n_masked_with` path — any error is pure recall loss, never a wrong
//! score or ordering, and `nprobe == nlist` is bit-identical to brute force.
//! The engine falls back to brute force (counted as `ann.fallbacks`) for
//! cold users (all-zero embedding, where centroid ranking is meaningless),
//! fully-masked users, and probes too sparse to fill the requested `k`.
//!
//! ## Telemetry
//!
//! Every request mints a trace id through `imcat_obs::trace` — sampled
//! requests (and every batch tick) collect their span breakdown (scoring,
//! ANN probe, pool dispatch) into the live trace store served at
//! `/trace/<id>`; unsampled requests still surface as span-less exemplars
//! when they exceed the slow threshold. Hot-path counters
//! (`serve.requests`, `serve.cache.hits`/`misses`, `serve.ticks`) and the
//! latency histograms go through pre-interned [`imcat_obs::Counter`] /
//! [`imcat_obs::Hist`] handles so the per-request overhead stays in the
//! tens of nanoseconds.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::time::Instant;

use imcat_ann::{AnnConfig, IvfIndex, ProbeScratch, DEFAULT_BUILD_SEED};
use imcat_ckpt::{Artifact, Checkpoint};
use imcat_eval::{top_n_masked_with, TopKScratch};
use imcat_obs::Histogram;

use crate::cache::{CacheKey, LruCache};

static OBS_REQUESTS: imcat_obs::Counter = imcat_obs::Counter::new("serve.requests");
static OBS_REQUEST_SECONDS: imcat_obs::Hist = imcat_obs::Hist::new("serve.request.seconds");
static OBS_TICKS: imcat_obs::Counter = imcat_obs::Counter::new("serve.ticks");
static OBS_TICK_SECONDS: imcat_obs::Hist = imcat_obs::Hist::new("serve.tick.seconds");
static OBS_CACHE_HITS: imcat_obs::Counter = imcat_obs::Counter::new("serve.cache.hits");
static OBS_CACHE_MISSES: imcat_obs::Counter = imcat_obs::Counter::new("serve.cache.misses");
static OBS_REJECTS: imcat_obs::Counter = imcat_obs::Counter::new("serve.rejects");

/// A request the engine refuses to answer — *never* by panicking.
///
/// The serving paths used to `assert!` on malformed requests, which is fine
/// for an in-process library and fatal for a network worker: one stale or
/// malicious `(user, k)` pair mid-batch would take the whole process down.
/// Every request is now validated up front and rejected with a typed error
/// (counted as `serve.rejects`) while the rest of the tick proceeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The requested user id is outside the artifact's user range.
    UserOutOfRange {
        /// The offending user id.
        user: u32,
        /// Number of users the live artifact serves.
        n_users: u32,
    },
    /// `k == 0` requests an empty ranking; rejected so a zero cutoff can
    /// never pollute the cache or divide downstream metrics by zero.
    ZeroK,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UserOutOfRange { user, n_users } => {
                write!(f, "user {user} out of range (artifact has {n_users} users)")
            }
            Self::ZeroK => write!(f, "k must be at least 1"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum number of `(user, k)` top-K lists kept hot (0 disables the
    /// cache).
    pub cache_capacity: usize,
    /// Item-axis shard size for the single-request scoring path.
    pub shard_items: usize,
    /// ANN retrieval configuration; `None` serves brute force.
    pub ann: Option<AnnConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { cache_capacity: 1024, shard_items: 1024, ann: None }
    }
}

/// Live ANN retrieval state: the index plus its reusable probe buffers.
struct AnnState {
    cfg: AnnConfig,
    index: IvfIndex,
    scratch: ProbeScratch,
}

impl AnnState {
    fn build(artifact: &Artifact, cfg: AnnConfig) -> Self {
        let index = IvfIndex::build(&artifact.item_emb, &cfg, DEFAULT_BUILD_SEED);
        Self { cfg, index, scratch: ProbeScratch::default() }
    }
}

/// One ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Item id.
    pub item: u32,
    /// Dot-product relevance score.
    pub score: f32,
}

/// Aggregate serving statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Requests answered (cache hits included).
    pub served: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Median request latency in seconds (bucket upper bound).
    pub p50_seconds: f64,
    /// 95th-percentile request latency in seconds.
    pub p95_seconds: f64,
    /// 99th-percentile request latency in seconds.
    pub p99_seconds: f64,
    /// Mean request latency in seconds.
    pub mean_seconds: f64,
    /// Total time spent answering requests (batched requests all account
    /// the full tick they completed in).
    pub busy_seconds: f64,
}

/// Top-K retrieval engine over one frozen [`Artifact`].
pub struct Engine {
    artifact: Artifact,
    cfg: ServeConfig,
    cache: LruCache,
    scratch: TopKScratch,
    ann: Option<AnnState>,
    latency: Histogram,
    served: u64,
}

impl Engine {
    /// Builds an engine over a validated artifact. When [`ServeConfig::ann`]
    /// is set the IVF index is built here (deterministically, from the item
    /// embeddings alone).
    pub fn new(artifact: Artifact, cfg: ServeConfig) -> io::Result<Self> {
        artifact.validate()?;
        let cache = LruCache::new(cfg.cache_capacity);
        let ann = cfg.ann.map(|c| AnnState::build(&artifact, c));
        Ok(Self {
            artifact,
            cfg,
            cache,
            scratch: TopKScratch::default(),
            ann,
            latency: Histogram::default(),
            served: 0,
        })
    }

    /// Loads an artifact from disk (with the container's `.prev` fallback)
    /// and builds an engine over it.
    ///
    /// With [`ServeConfig::ann`] set, the engine reuses the `ann.*` index
    /// sections persisted in the same container when they validate and match
    /// the requested configuration; otherwise it rebuilds the index and
    /// persists it back lazily (atomic save, `.prev` rotation preserved), so
    /// the next load is instant. A corrupt or stale persisted index is
    /// counted (`ann.index.rejected`) and rebuilt — it can never poison the
    /// engine. A failed lazy persist is non-fatal: the engine still serves
    /// from the freshly built in-memory index.
    pub fn load(path: impl AsRef<Path>, cfg: ServeConfig) -> io::Result<Self> {
        let Some(ann_cfg) = cfg.ann else {
            return Self::new(Artifact::load(&path)?, cfg);
        };
        let mut ck = Checkpoint::load(&path)?;
        let artifact = Artifact::from_checkpoint(&ck)?;
        artifact.validate()?;
        let loaded = match IvfIndex::from_checkpoint(&ck) {
            Ok(idx) => idx.filter(|idx| {
                idx.matches(&ann_cfg, artifact.n_items(), artifact.dim(), DEFAULT_BUILD_SEED)
            }),
            Err(_) => {
                if imcat_obs::enabled() {
                    imcat_obs::counter_add("ann.index.rejected", 1);
                }
                None
            }
        };
        let state = match loaded {
            Some(index) => AnnState { cfg: ann_cfg, index, scratch: ProbeScratch::default() },
            None => {
                if imcat_obs::enabled() {
                    imcat_obs::counter_add("ann.index.rebuilds", 1);
                }
                let state = AnnState::build(&artifact, ann_cfg);
                state.index.add_to_checkpoint(&mut ck);
                if ck.save(&path).is_err() && imcat_obs::enabled() {
                    imcat_obs::counter_add("ann.index.persist_failed", 1);
                }
                state
            }
        };
        let mut engine = Self::new(artifact, ServeConfig { ann: None, ..cfg.clone() })?;
        engine.cfg = cfg;
        engine.ann = Some(state);
        Ok(engine)
    }

    /// The live IVF index, when ANN retrieval is active.
    pub fn ann_index(&self) -> Option<&IvfIndex> {
        self.ann.as_ref().map(|s| &s.index)
    }

    /// The artifact currently being served.
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// Swaps in a new artifact. The cache is cleared so no stale list from
    /// the previous generation can ever be served, and the ANN index (if
    /// active) is rebuilt over the new item embeddings before the swap; on a
    /// validation error the old artifact, index, and cache all stay live.
    pub fn reload(&mut self, artifact: Artifact) -> io::Result<()> {
        artifact.validate()?;
        self.ann = self.cfg.ann.map(|c| AnnState::build(&artifact, c));
        self.artifact = artifact;
        self.cache.clear();
        if imcat_obs::enabled() {
            imcat_obs::counter_add("serve.reloads", 1);
        }
        Ok(())
    }

    /// Switches ANN retrieval on, off, or to a different configuration,
    /// rebuilding the index as needed. The result cache is cleared exactly
    /// like [`Engine::reload`] does: a list computed under the previous
    /// retrieval configuration can never be served under the new one.
    pub fn set_ann(&mut self, ann: Option<AnnConfig>) {
        self.cfg.ann = ann;
        self.ann = ann.map(|c| AnnState::build(&self.artifact, c));
        self.cache.clear();
        if imcat_obs::enabled() {
            imcat_obs::counter_add("serve.ann_swaps", 1);
        }
    }

    /// Number of users the current artifact can serve.
    pub fn n_users(&self) -> usize {
        self.artifact.n_users()
    }

    /// Catalogue size of the current artifact.
    pub fn n_items(&self) -> usize {
        self.artifact.n_items()
    }

    /// Scores every item for `user`, sharding the item axis over the thread
    /// pool. Element `j` is the same `imcat_simd::dot` kernel `matmul_nt`
    /// runs, so the row is bit-identical to the evaluator's score row at any
    /// thread count.
    fn score_user(&self, user: u32) -> Vec<f32> {
        let u_row = self.artifact.user_emb.row(user as usize);
        let items = &self.artifact.item_emb;
        let mut scores = vec![0.0f32; items.rows()];
        let shard = self.cfg.shard_items.max(1);
        imcat_par::global().parallel_chunks_mut(&mut scores, shard, |ci, slots| {
            for (off, slot) in slots.iter_mut().enumerate() {
                *slot = imcat_simd::dot(u_row, items.row(ci * shard + off));
            }
        });
        scores
    }

    fn top_k(&mut self, user: u32, k: usize, scores: &[f32]) -> Vec<Recommendation> {
        let mask = &self.artifact.masks[user as usize];
        let top = top_n_masked_with(scores, mask, k, &mut self.scratch);
        top.iter().map(|&j| Recommendation { item: j, score: scores[j as usize] }).collect()
    }

    /// ANN path for one request. `None` means "fall back to brute force":
    /// cold user (all-zero embedding — every dot product is 0 and centroid
    /// ranking is meaningless), fully-masked user, or a probe whose unmasked
    /// candidates cannot fill the requested `k`.
    fn ann_recommend(&mut self, user: u32, k: usize) -> Option<Vec<Recommendation>> {
        let state = self.ann.as_mut()?;
        let n_items = self.artifact.item_emb.rows();
        let mask = &self.artifact.masks[user as usize];
        if mask.len() >= n_items {
            return None;
        }
        let u_row = self.artifact.user_emb.row(user as usize);
        if u_row.iter().all(|&x| x == 0.0) {
            return None;
        }
        let nprobe = state.cfg.resolved_nprobe(n_items);
        state.index.probe(u_row, &self.artifact.item_emb, mask, k, nprobe, &mut state.scratch);
        let unmasked = state.scratch.candidates().len() - state.scratch.mask().len();
        if unmasked < k.min(n_items - mask.len()) {
            return None;
        }
        // Re-rank the compact candidate set through the evaluator's own
        // selection path — identical scores, identical tie discipline.
        let top =
            top_n_masked_with(state.scratch.scores(), state.scratch.mask(), k, &mut self.scratch);
        Some(
            top.iter()
                .map(|&ci| Recommendation {
                    item: state.scratch.candidates()[ci as usize],
                    score: state.scratch.scores()[ci as usize],
                })
                .collect(),
        )
    }

    /// Computes a fresh (uncached) answer: ANN probe when active, brute
    /// force otherwise or as fallback.
    fn compute(&mut self, user: u32, k: usize) -> Vec<Recommendation> {
        if self.ann.is_some() {
            if let Some(out) = self.ann_recommend(user, k) {
                return out;
            }
            if imcat_obs::enabled() {
                imcat_obs::counter_add("ann.fallbacks", 1);
            }
        }
        let _score = imcat_obs::span("serve.score.seconds");
        let scores = self.score_user(user);
        self.top_k(user, k, &scores)
    }

    fn account(&mut self, requests: u64, seconds: f64) {
        self.served += requests;
        for _ in 0..requests {
            self.latency.record(seconds);
        }
        OBS_REQUESTS.add(requests);
        OBS_REQUEST_SECONDS.observe(seconds);
    }

    /// Validates one request against the live artifact. Rejections are
    /// counted (`serve.rejects`) but cost no scoring work and leave no cache
    /// or latency footprint.
    fn validate_request(&self, user: u32, k: usize) -> Result<(), ServeError> {
        let n_users = self.artifact.n_users() as u32;
        let err = if user >= n_users {
            ServeError::UserOutOfRange { user, n_users }
        } else if k == 0 {
            ServeError::ZeroK
        } else {
            return Ok(());
        };
        OBS_REJECTS.add(1);
        Err(err)
    }

    /// Answers one request: the top `k` unseen items for `user`, best first.
    /// A malformed request (out-of-range user, `k == 0`) is rejected with a
    /// typed [`ServeError`] — the engine never panics on request data.
    ///
    /// Mints a per-request trace id; sampled requests collect their span
    /// breakdown into the live trace store (`/trace/<id>`).
    pub fn recommend(&mut self, user: u32, k: usize) -> Result<Vec<Recommendation>, ServeError> {
        self.validate_request(user, k)?;
        let _trace = imcat_obs::trace::request("serve.request", "serve.request.seconds", false);
        let t0 = Instant::now();
        if let Some(cached) = self.cache.get((user, k)) {
            let out = cached.to_vec();
            OBS_CACHE_HITS.add(1);
            self.account(1, t0.elapsed().as_secs_f64());
            return Ok(out);
        }
        OBS_CACHE_MISSES.add(1);
        let out = self.compute(user, k);
        self.cache.put((user, k), out.clone());
        self.account(1, t0.elapsed().as_secs_f64());
        Ok(out)
    }

    /// Answers a tick's worth of concurrent requests. Cache misses are
    /// deduplicated and scored with a *single* `matmul_nt` over the unique
    /// miss users, then ranked per row; results land in the cache before the
    /// tick returns. Output order matches `requests`, and every answer —
    /// including each rejection — is identical to what [`Engine::recommend`]
    /// returns for the same request: a malformed request yields its own
    /// `Err` slot while the rest of the tick is answered normally, so one
    /// bad request can never abort a batch or take down a worker.
    pub fn recommend_batch(
        &mut self,
        requests: &[(u32, usize)],
    ) -> Vec<Result<Vec<Recommendation>, ServeError>> {
        // Ticks are rare and information-dense, so their traces are always
        // sampled: the tick's matmul/probe/dispatch spans all attach.
        let _trace = imcat_obs::trace::request("serve.tick", "serve.tick.seconds", true);
        let t0 = Instant::now();
        type Answer = Result<Vec<Recommendation>, ServeError>;
        let mut outputs: Vec<Option<Answer>> = Vec::with_capacity(requests.len());
        let mut miss_keys: Vec<CacheKey> = Vec::new();
        let mut miss_index: HashMap<CacheKey, usize> = HashMap::new();
        let mut hits = 0u64;
        for &(user, k) in requests {
            if let Err(e) = self.validate_request(user, k) {
                outputs.push(Some(Err(e)));
                continue;
            }
            if let Some(cached) = self.cache.get((user, k)) {
                hits += 1;
                outputs.push(Some(Ok(cached.to_vec())));
            } else {
                outputs.push(None);
                if let Entry::Vacant(slot) = miss_index.entry((user, k)) {
                    slot.insert(miss_keys.len());
                    miss_keys.push((user, k));
                }
            }
        }
        if !miss_keys.is_empty() && self.ann.is_some() {
            // ANN path: each unique miss goes through the same probe (or
            // brute fallback) as the single-request path, so batch answers
            // stay bit-identical to [`Engine::recommend`].
            let mut fresh: Vec<Vec<Recommendation>> = Vec::with_capacity(miss_keys.len());
            for &(user, k) in &miss_keys {
                let recs = self.compute(user, k);
                self.cache.put((user, k), recs.clone());
                fresh.push(recs);
            }
            for (slot, &(user, k)) in outputs.iter_mut().zip(requests) {
                if slot.is_none() {
                    *slot = Some(Ok(fresh[miss_index[&(user, k)]].clone()));
                }
            }
        } else if !miss_keys.is_empty() {
            // One scoring matmul for the whole tick: one row per unique miss
            // user (a user requested at two cutoffs shares a row).
            let mut users: Vec<u32> = miss_keys.iter().map(|&(u, _)| u).collect();
            users.sort_unstable();
            users.dedup();
            let row_of: HashMap<u32, usize> =
                users.iter().enumerate().map(|(i, &u)| (u, i)).collect();
            let scores = self.artifact.user_emb.matmul_nt_rows(&users, &self.artifact.item_emb);
            let mut fresh: Vec<Vec<Recommendation>> = Vec::with_capacity(miss_keys.len());
            for &(user, k) in &miss_keys {
                let row = scores.row(row_of[&user]);
                let recs = self.top_k(user, k, row);
                self.cache.put((user, k), recs.clone());
                fresh.push(recs);
            }
            for (slot, &(user, k)) in outputs.iter_mut().zip(requests) {
                if slot.is_none() {
                    *slot = Some(Ok(fresh[miss_index[&(user, k)]].clone()));
                }
            }
        }
        // Defensive completion: a slot can only still be empty if the fill
        // passes above missed a valid request (a bug, not request data). It
        // used to `expect` here — aborting the whole worker mid-tick — but a
        // partially-filled tick is recoverable: answer the straggler through
        // the single-request compute path and count the repair so the
        // invariant violation stays visible in telemetry.
        for i in 0..outputs.len() {
            if outputs[i].is_none() {
                if imcat_obs::enabled() {
                    imcat_obs::counter_add("serve.tick.repairs", 1);
                }
                let (user, k) = requests[i];
                let recs = self.compute(user, k);
                self.cache.put((user, k), recs.clone());
                outputs[i] = Some(Ok(recs));
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        self.account(requests.len() as u64, dt);
        OBS_CACHE_HITS.add(hits);
        OBS_CACHE_MISSES.add(requests.len() as u64 - hits);
        OBS_TICKS.add(1);
        OBS_TICK_SECONDS.observe(dt);
        // Every slot is Some after the repair pass; the fallback keeps this
        // path abort-free by construction rather than by `expect`.
        outputs.into_iter().map(|o| o.unwrap_or(Err(ServeError::ZeroK))).collect()
    }

    /// Lifetime serving statistics (latency quantiles are log-bucket upper
    /// bounds, matching `imcat-obs` histograms).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.served,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            p50_seconds: self.latency.quantile(0.50),
            p95_seconds: self.latency.quantile(0.95),
            p99_seconds: self.latency.quantile(0.99),
            mean_seconds: self.latency.mean(),
            busy_seconds: self.latency.sum,
        }
    }

    /// Number of currently cached top-K lists.
    pub fn cached_lists(&self) -> usize {
        self.cache.len()
    }
}
