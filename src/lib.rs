//! # imcat
//!
//! A from-scratch Rust reproduction of **IMCAT** — *Intent-aware Multi-source
//! Contrastive Alignment for Tag-enhanced Recommendation* (Wu et al., ICDE
//! 2023) — including its training substrate, the three backbones it plugs
//! into, all eleven comparison baselines, the evaluation stack, and an
//! experiment harness regenerating every table and figure of the paper.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`tensor`] — dense tensors, reverse-mode autodiff, sparse-aware Adam.
//! * [`graph`] — CSR bipartite graphs, normalized adjacency, Jaccard sets.
//! * [`data`] — dataset model, synthetic intent-driven generators, loaders.
//! * [`models`] — BPRMF / NeuMF / LightGCN backbones and the baselines.
//! * [`core`] — IMCAT itself (IRM + IMCA + ISA + joint trainer).
//! * [`eval`] — Recall@N / NDCG@N, long-tail and cold-start analyses.
//!
//! ## Quickstart
//!
//! ```
//! use imcat::prelude::*;
//!
//! // Generate a small intent-driven dataset and split it 7:1:2.
//! let mut rng = StdRng::seed_from_u64(42);
//! let synth = generate(&SynthConfig::tiny(), 42);
//! let split = synth.dataset.split((0.7, 0.1, 0.2), &mut rng);
//!
//! // Wrap a LightGCN backbone with IMCAT and train briefly.
//! let backbone = LightGcn::new(&split, TrainConfig::default(), &mut rng);
//! let mut model = Imcat::new(
//!     backbone,
//!     &split,
//!     ImcatConfig { pretrain_epochs: 1, ..Default::default() },
//!     &mut rng,
//! );
//! for _ in 0..3 {
//!     model.train_epoch(&mut rng);
//! }
//!
//! // Evaluate Recall@20 / NDCG@20 on the held-out test items.
//! let mut score_fn = |users: &[u32]| model.score_users(users);
//! let metrics = evaluate(&mut score_fn, &split, &EvalSpec::at(20));
//! assert!(metrics.recall >= 0.0 && metrics.recall <= 1.0);
//! ```

#![warn(missing_docs)]

pub use imcat_core as core;
pub use imcat_data as data;
pub use imcat_eval as eval;
pub use imcat_graph as graph;
pub use imcat_models as models;
pub use imcat_tensor as tensor;

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use imcat_core::{trainer, AlignMode, Imcat, ImcatConfig, TrainerConfig};
    pub use imcat_data::{generate, BprSampler, Dataset, FilterConfig, SplitDataset, SynthConfig};
    pub use imcat_eval::{
        cold_start_users, evaluate, evaluate_per_user, evaluate_user_subset,
        group_recall_contribution, item_popularity_groups, paired_t_test, EvalSpec, EvalTarget,
    };
    pub use imcat_graph::{degree_groups, Bipartite, ClusterTagSets};
    pub use imcat_models::{
        Backbone, Bprmf, Cfa, Cke, Dspr, Kgat, Kgcl, Kgin, LightGcn, Neumf, RecModel, RippleNet,
        Sgl, Tgcn, TrainConfig,
    };
    pub use imcat_tensor::{Csr, ParamStore, Tape, Tensor};
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}
