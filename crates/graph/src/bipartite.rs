//! Bipartite interaction graphs.
//!
//! Wraps the raw CSR matrices (`Y` user–item and `Y'` item–tag from §III-A of
//! the paper) with the derived structures every model needs: transposes,
//! degree statistics, mean-aggregation operators, and the joint normalized
//! adjacency used by LightGCN-style propagation.

use imcat_tensor::Csr;

/// A user–item (or item–tag) interaction graph with its transpose cached.
#[derive(Clone, Debug)]
pub struct Bipartite {
    forward: Csr,
    backward: Csr,
}

impl Bipartite {
    /// Builds from a forward CSR (`rows -> cols` incidence).
    pub fn new(forward: Csr) -> Self {
        let backward = forward.transpose();
        Self { forward, backward }
    }

    /// Rows → cols incidence (e.g. user → items).
    pub fn forward(&self) -> &Csr {
        &self.forward
    }

    /// Cols → rows incidence (e.g. item → users).
    pub fn backward(&self) -> &Csr {
        &self.backward
    }

    /// Number of row entities.
    pub fn n_rows(&self) -> usize {
        self.forward.rows()
    }

    /// Number of column entities.
    pub fn n_cols(&self) -> usize {
        self.forward.cols()
    }

    /// Number of interactions.
    pub fn n_edges(&self) -> usize {
        self.forward.nnz()
    }

    /// Density of the incidence matrix in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let cells = self.n_rows() as f64 * self.n_cols() as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.n_edges() as f64 / cells
        }
    }

    /// Average row degree (paper's "#Avg. degree" in Table I).
    pub fn avg_row_degree(&self) -> f64 {
        if self.n_rows() == 0 {
            0.0
        } else {
            self.n_edges() as f64 / self.n_rows() as f64
        }
    }

    /// Degrees of row entities.
    pub fn row_degrees(&self) -> Vec<usize> {
        self.forward.degrees()
    }

    /// Degrees of column entities.
    pub fn col_degrees(&self) -> Vec<usize> {
        self.backward.degrees()
    }

    /// Mean-aggregation operator over columns: multiplying the returned CSR
    /// (`cols x rows`) by a row-entity embedding matrix yields, for each
    /// column entity, the average embedding of its incident row entities.
    ///
    /// With `forward = Y` (user→item) this is the user aggregation of Eq. 7.
    pub fn col_mean_aggregator(&self) -> Csr {
        self.backward.row_normalized()
    }

    /// Mean-aggregation operator over rows (`rows x cols`): averages the
    /// embeddings of each row entity's incident column entities.
    pub fn row_mean_aggregator(&self) -> Csr {
        self.forward.row_normalized()
    }
}

/// Symmetrically normalized joint adjacency over `n_rows + n_cols` nodes:
/// `Â = D^{-1/2} A D^{-1/2}` with `A = [[0, Y], [Yᵀ, 0]]` (LightGCN, SGL).
pub fn joint_normalized_adjacency(g: &Bipartite) -> Csr {
    let (nu, nv) = (g.n_rows(), g.n_cols());
    let n = nu + nv;
    let row_deg: Vec<f32> = g.row_degrees().iter().map(|&d| d as f32).collect();
    let col_deg: Vec<f32> = g.col_degrees().iter().map(|&d| d as f32).collect();
    let mut triplets = Vec::with_capacity(2 * g.n_edges());
    for (u, v, w) in g.forward().iter() {
        let du = row_deg[u as usize].max(1.0).sqrt();
        let dv = col_deg[v as usize].max(1.0).sqrt();
        let val = w / (du * dv);
        triplets.push((u, nu as u32 + v, val));
        triplets.push((nu as u32 + v, u, val));
    }
    Csr::from_triplets(n, n, &triplets)
}

/// Gini coefficient of a degree distribution — quantifies the long tail the
/// paper's Fig. 7 analyses (0 = perfectly uniform, → 1 = all interactions on
/// one entity).
pub fn gini_coefficient(degrees: &[usize]) -> f64 {
    if degrees.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Log-2-bucketed degree histogram: `result[b]` counts entities with degree
/// in `[2^b, 2^(b+1))` (degree 0 lands in its own leading bucket).
pub fn degree_histogram(degrees: &[usize]) -> Vec<usize> {
    let max = degrees.iter().copied().max().unwrap_or(0);
    let buckets = if max == 0 { 1 } else { (max as f64).log2() as usize + 2 };
    let mut hist = vec![0usize; buckets];
    for &d in degrees {
        let b = if d == 0 { 0 } else { (d as f64).log2() as usize + 1 };
        hist[b] += 1;
    }
    hist
}

/// Splits all column entities (items) into `n_groups` equal-size groups by
/// ascending degree, as in the long-tail analysis of the paper's Fig. 7.
/// Returns per-item group ids in `0..n_groups`.
pub fn degree_groups(degrees: &[usize], n_groups: usize) -> Vec<usize> {
    assert!(n_groups > 0);
    let mut order: Vec<usize> = (0..degrees.len()).collect();
    order.sort_by_key(|&i| (degrees[i], i));
    let mut groups = vec![0usize; degrees.len()];
    let per = degrees.len().div_ceil(n_groups);
    for (rank, &i) in order.iter().enumerate() {
        groups[i] = (rank / per).min(n_groups - 1);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Bipartite {
        // 3 users x 4 items
        // u0: {0, 1}; u1: {1, 2, 3}; u2: {3}
        Bipartite::new(Csr::from_adjacency(3, 4, &[vec![0, 1], vec![1, 2, 3], vec![3]]))
    }

    #[test]
    fn shapes_and_counts() {
        let g = toy();
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.n_cols(), 4);
        assert_eq!(g.n_edges(), 6);
        assert!((g.density() - 0.5).abs() < 1e-9);
        assert!((g.avg_row_degree() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degrees_both_sides() {
        let g = toy();
        assert_eq!(g.row_degrees(), vec![2, 3, 1]);
        assert_eq!(g.col_degrees(), vec![1, 2, 1, 2]);
    }

    #[test]
    fn col_mean_aggregator_averages() {
        let g = toy();
        let agg = g.col_mean_aggregator();
        // Item 1 was interacted by users {0, 1}: weights 0.5 each.
        assert_eq!(agg.row_indices(1), &[0, 1]);
        assert_eq!(agg.row_values(1), &[0.5, 0.5]);
        // Item 0 only by user 0.
        assert_eq!(agg.row_values(0), &[1.0]);
    }

    #[test]
    fn joint_adjacency_is_symmetric_and_normalized() {
        let g = toy();
        let adj = joint_normalized_adjacency(&g);
        assert_eq!(adj.rows(), 7);
        // Edge u0 - item1 (node 3+1=4): value 1/sqrt(2*2) = 0.5.
        assert!(adj.contains(0, 4));
        assert!(adj.contains(4, 0));
        let v = adj.iter().find(|&(r, c, _)| r == 0 && c == 4).map(|(_, _, v)| v).unwrap();
        assert!((v - 0.5).abs() < 1e-6);
        // Symmetry of every entry.
        for (r, c, v) in adj.iter() {
            let back =
                adj.iter().find(|&(r2, c2, _)| r2 == c && c2 == r).map(|(_, _, v2)| v2).unwrap();
            assert!((v - back).abs() < 1e-6);
        }
    }

    #[test]
    fn degree_groups_equal_sizes() {
        let degs = vec![5, 1, 9, 2, 7, 3, 8, 4, 6, 0];
        let groups = degree_groups(&degs, 5);
        let mut counts = [0usize; 5];
        for &g in &groups {
            counts[g] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2, 2]);
        // The two smallest degrees (0 and 1) land in group 0.
        assert_eq!(groups[9], 0);
        assert_eq!(groups[1], 0);
        // The two largest (9 and 8) land in group 4.
        assert_eq!(groups[2], 4);
        assert_eq!(groups[6], 4);
    }

    #[test]
    fn gini_extremes() {
        // Uniform distribution: gini = 0.
        assert!(gini_coefficient(&[5, 5, 5, 5]).abs() < 1e-9);
        // Fully concentrated: gini -> (n-1)/n.
        let g = gini_coefficient(&[0, 0, 0, 100]);
        assert!((g - 0.75).abs() < 1e-9, "g = {g}");
        // Empty and all-zero are defined as 0.
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_orders_by_inequality() {
        let even = gini_coefficient(&[10, 11, 9, 10]);
        let skewed = gini_coefficient(&[1, 2, 3, 34]);
        assert!(skewed > even);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&[0, 1, 1, 2, 3, 4, 8, 9]);
        // bucket 0: degree 0 (1 entity); bucket 1: degree 1 (2);
        // bucket 2: degrees 2-3 (2); bucket 3: 4-7 (1); bucket 4: 8-15 (2).
        assert_eq!(h, vec![1, 2, 2, 1, 2]);
        assert_eq!(degree_histogram(&[]), vec![0]);
    }

    #[test]
    fn degree_groups_uneven_lengths() {
        let degs = vec![3, 1, 2];
        let groups = degree_groups(&degs, 2);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|&g| g < 2));
    }
}
