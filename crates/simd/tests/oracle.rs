//! Kernel oracle tests.
//!
//! Three contracts, in decreasing strictness:
//! 1. `scalar::*` is bit-identical to the naive historical loops (restated
//!    literally here), at every awkward length.
//! 2. On AVX2 hosts, the intrinsic kernels are bit-identical to their
//!    [`imcat_simd::portable`] mirrors — the mirror IS the spec of the
//!    intrinsics.
//! 3. The Avx2 backend agrees with the Scalar oracle within a forward-error
//!    tolerance, at awkward lengths and under proptest-random inputs.

use imcat_simd::{portable, scalar, Backend};
use proptest::prelude::*;

/// Lengths that stress every dispatch edge: empty, sub-lane, exactly one
/// lane, lane+1, the serving dims, and a large non-multiple-of-8.
const AWKWARD: &[usize] = &[0, 1, 7, 8, 9, 64, 128, 4095];

/// Deterministic mixed-magnitude test vector.
fn vector(seed: u64, n: usize) -> Vec<f32> {
    let mut gen = Gen::new(seed);
    (0..n)
        .map(|_| {
            let mag = 10f64.powi(gen.below(5) as i32 - 2);
            ((gen.unit_f64() * 2.0 - 1.0) * mag) as f32
        })
        .collect()
}

fn codes(seed: u64, n: usize) -> Vec<i8> {
    let mut gen = Gen::new(seed);
    (0..n).map(|_| (gen.below(255) as i64 - 127) as i8).collect()
}

/// Forward-error tolerance for comparing two summation orders of the same
/// inner product: a few ulps per accumulated term.
fn dot_tol(terms: impl Iterator<Item = f32>, n: usize) -> f32 {
    let l1: f32 = terms.map(|t| t.abs()).sum();
    8.0 * (n as f32 + 8.0) * f32::EPSILON * l1 + 1e-30
}

// ---------------------------------------------------------------------------
// Contract 1: scalar == historical naive loops, bitwise.
// ---------------------------------------------------------------------------

#[test]
fn scalar_matches_naive_loops_bitwise() {
    for &n in AWKWARD {
        let a = vector(0x5eed ^ n as u64, n);
        let b = vector(0xbeef ^ n as u64, n);
        let c = codes(0xc0de ^ n as u64, n);

        let mut naive_dot = 0.0f32;
        for i in 0..n {
            naive_dot += a[i] * b[i];
        }
        assert_eq!(scalar::dot(&a, &b).to_bits(), naive_dot.to_bits(), "dot n={n}");

        let mut y = b.clone();
        let mut naive_y = b.clone();
        scalar::axpy(0.37, &a, &mut y);
        for i in 0..n {
            naive_y[i] += 0.37 * a[i];
        }
        for i in 0..n {
            assert_eq!(y[i].to_bits(), naive_y[i].to_bits(), "axpy n={n} i={i}");
        }

        let mut naive_q = 0.0f32;
        for i in 0..n {
            naive_q += c[i] as f32 * a[i];
        }
        let scale = 0.011_f32;
        assert_eq!(
            scalar::dot_i8_scaled(&c, &a, scale).to_bits(),
            (scale * naive_q).to_bits(),
            "dot_i8_scaled n={n}"
        );

        let mut naive_l2 = 0.0f32;
        for i in 0..n {
            let d = a[i] - b[i];
            naive_l2 += d * d;
        }
        assert_eq!(scalar::l2_sq(&a, &b).to_bits(), naive_l2.to_bits(), "l2_sq n={n}");

        let mut naive_l1 = 0.0f32;
        for &v in &a {
            naive_l1 += v.abs();
        }
        assert_eq!(scalar::l1_norm(&a).to_bits(), naive_l1.to_bits(), "l1_norm n={n}");
    }
}

// ---------------------------------------------------------------------------
// Contract 2: AVX2 intrinsics == portable mirror, bitwise (AVX2 hosts).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_intrinsics_match_portable_mirror_bitwise() {
    if !imcat_simd::avx2_detected() {
        eprintln!("skipping: host has no AVX2+FMA");
        return;
    }
    for &n in AWKWARD {
        for seed in 0..4u64 {
            let a = vector(seed * 7919 + 1 + n as u64, n);
            let b = vector(seed * 104_729 + 2 + n as u64, n);
            let c = codes(seed * 31 + 3 + n as u64, n);
            // SAFETY: avx2_detected() checked above.
            unsafe {
                assert_eq!(
                    imcat_simd::avx2::dot(&a, &b).to_bits(),
                    portable::dot(&a, &b).to_bits(),
                    "dot n={n} seed={seed}"
                );
                let mut y_i = b.clone();
                let mut y_p = b.clone();
                imcat_simd::avx2::axpy(-1.73, &a, &mut y_i);
                portable::axpy(-1.73, &a, &mut y_p);
                for i in 0..n {
                    assert_eq!(y_i[i].to_bits(), y_p[i].to_bits(), "axpy n={n} i={i}");
                }
                assert_eq!(
                    imcat_simd::avx2::dot_i8_scaled(&c, &a, 0.007).to_bits(),
                    portable::dot_i8_scaled(&c, &a, 0.007).to_bits(),
                    "dot_i8_scaled n={n} seed={seed}"
                );
                assert_eq!(
                    imcat_simd::avx2::l2_sq(&a, &b).to_bits(),
                    portable::l2_sq(&a, &b).to_bits(),
                    "l2_sq n={n} seed={seed}"
                );
                assert_eq!(
                    imcat_simd::avx2::l1_norm(&a).to_bits(),
                    portable::l1_norm(&a).to_bits(),
                    "l1_norm n={n} seed={seed}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Contract 3: Avx2 backend vs Scalar oracle, tolerance, every dispatch path.
// ---------------------------------------------------------------------------

#[test]
fn avx2_backend_matches_scalar_oracle_at_awkward_lengths() {
    for &n in AWKWARD {
        let a = vector(0x11 + n as u64, n);
        let b = vector(0x22 + n as u64, n);
        let c = codes(0x33 + n as u64, n);

        let tol = dot_tol(a.iter().zip(&b).map(|(x, y)| x * y), n);
        let exact = imcat_simd::dot_with(Backend::Scalar, &a, &b);
        let fast = imcat_simd::dot_with(Backend::Avx2, &a, &b);
        assert!((exact - fast).abs() <= tol, "dot n={n}: {exact} vs {fast} tol={tol}");

        let mut y_s = b.clone();
        let mut y_v = b.clone();
        imcat_simd::axpy_with(Backend::Scalar, 2.5, &a, &mut y_s);
        imcat_simd::axpy_with(Backend::Avx2, 2.5, &a, &mut y_v);
        for i in 0..n {
            let t = 8.0 * f32::EPSILON * (y_s[i].abs() + (2.5 * a[i]).abs()) + 1e-30;
            assert!((y_s[i] - y_v[i]).abs() <= t, "axpy n={n} i={i}");
        }

        let qt = dot_tol(c.iter().zip(&a).map(|(x, y)| *x as f32 * y), n);
        let q_s = imcat_simd::dot_i8_scaled_with(Backend::Scalar, &c, &a, 0.01);
        let q_v = imcat_simd::dot_i8_scaled_with(Backend::Avx2, &c, &a, 0.01);
        assert!((q_s - q_v).abs() <= 0.01 * qt + 1e-30, "dot_i8 n={n}: {q_s} vs {q_v}");

        let lt = dot_tol(a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)), n);
        let l_s = imcat_simd::l2_sq_with(Backend::Scalar, &a, &b);
        let l_v = imcat_simd::l2_sq_with(Backend::Avx2, &a, &b);
        assert!((l_s - l_v).abs() <= lt, "l2_sq n={n}: {l_s} vs {l_v}");

        let nt = dot_tol(a.iter().copied(), n);
        let n_s = imcat_simd::l1_norm_with(Backend::Scalar, &a);
        let n_v = imcat_simd::l1_norm_with(Backend::Avx2, &a);
        assert!((n_s - n_v).abs() <= nt, "l1_norm n={n}: {n_s} vs {n_v}");
    }
}

#[test]
fn empty_inputs_are_exact_zero_on_both_backends() {
    for bk in [Backend::Scalar, Backend::Avx2] {
        assert_eq!(imcat_simd::dot_with(bk, &[], &[]), 0.0);
        assert_eq!(imcat_simd::dot_i8_scaled_with(bk, &[], &[], 3.0), 0.0);
        assert_eq!(imcat_simd::l2_sq_with(bk, &[], &[]), 0.0);
        assert_eq!(imcat_simd::l1_norm_with(bk, &[]), 0.0);
        imcat_simd::axpy_with(bk, 1.0, &[], &mut []);
    }
}

#[test]
fn process_backend_matches_its_explicit_variant() {
    let a = vector(1, 129);
    let b = vector(2, 129);
    let bk = imcat_simd::backend();
    assert_eq!(imcat_simd::dot(&a, &b).to_bits(), imcat_simd::dot_with(bk, &a, &b).to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random lengths and values: the Avx2 backend (intrinsics or portable,
    /// whichever this host dispatches to) stays within the forward-error
    /// tolerance of the scalar oracle.
    #[test]
    fn prop_dot_backends_agree(seed in 0u64..u64::MAX, n in 0usize..700) {
        let a = vector(seed, n);
        let b = vector(seed ^ 0xffff_ffff, n);
        let tol = dot_tol(a.iter().zip(&b).map(|(x, y)| x * y), n);
        let exact = imcat_simd::dot_with(Backend::Scalar, &a, &b);
        let fast = imcat_simd::dot_with(Backend::Avx2, &a, &b);
        prop_assert!((exact - fast).abs() <= tol, "{exact} vs {fast}, tol {tol}");
    }

    /// Same contract for the fused int8 kernel.
    #[test]
    fn prop_dot_i8_backends_agree(seed in 0u64..u64::MAX, n in 0usize..700) {
        let c = codes(seed, n);
        let q = vector(seed ^ 0xaaaa, n);
        let scale = 0.003 + (seed % 97) as f32 * 1e-4;
        let tol = scale * dot_tol(c.iter().zip(&q).map(|(x, y)| *x as f32 * y), n);
        let exact = imcat_simd::dot_i8_scaled_with(Backend::Scalar, &c, &q, scale);
        let fast = imcat_simd::dot_i8_scaled_with(Backend::Avx2, &c, &q, scale);
        prop_assert!((exact - fast).abs() <= tol + 1e-30, "{exact} vs {fast}, tol {tol}");
    }

    /// axpy agrees elementwise (one fused vs two roundings per element).
    #[test]
    fn prop_axpy_backends_agree(seed in 0u64..u64::MAX, n in 0usize..700) {
        let x = vector(seed, n);
        let mut y_s = vector(seed ^ 1, n);
        let mut y_v = y_s.clone();
        let s = ((seed % 1000) as f32 - 500.0) * 0.01;
        imcat_simd::axpy_with(Backend::Scalar, s, &x, &mut y_s);
        imcat_simd::axpy_with(Backend::Avx2, s, &x, &mut y_v);
        for i in 0..n {
            let t = 8.0 * f32::EPSILON * (y_s[i].abs() + (s * x[i]).abs()) + 1e-30;
            prop_assert!((y_s[i] - y_v[i]).abs() <= t, "i={i}: {} vs {}", y_s[i], y_v[i]);
        }
    }
}
