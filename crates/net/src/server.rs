//! The serving front-end: acceptor → bounded admission queue → connection
//! workers → micro-batch tick over a [`ShardedEngine`].
//!
//! ## Thread anatomy
//!
//! * **1 acceptor** — accepts sockets and pushes them onto a bounded
//!   connection queue. When the queue is full the socket is answered with a
//!   fast `503` *on the acceptor thread* and closed: overload costs one
//!   response write, never an unbounded backlog.
//! * **N workers** — each pops a connection and speaks keep-alive HTTP/1.1
//!   on it: parse a request (total per-request deadline), submit a job,
//!   block until the batcher fills the job's slot, write the response.
//! * **1 batcher** — owns the [`ShardedEngine`]. Drains up to `max_batch`
//!   jobs per tick (lingering `tick_wait` to let a batch fill), answers
//!   them with one `recommend_batch` fan-out, and wakes the waiting
//!   workers.
//!
//! Admission control is two-stage: the connection queue bounds sockets
//! waiting for a worker, and the job queue bounds requests waiting for a
//! tick. Both shed with `503` + the `serve.shed` counter
//! (`net.shed.conns` / `net.shed.jobs` split the cause); a request whose
//! deadline lapses while queued gets `504` and `net.timeouts`. Malformed
//! requests come back as `400` with the [`ServeError`] message — the
//! engine's typed rejections exist precisely so a stale id on the wire can
//! never panic a worker.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use imcat_ckpt::Artifact;
use imcat_obs::Json;
use imcat_serve::{AnnDescriptor, Interaction, Recommendation, ServeConfig, ServeError};

use crate::http::{self, Conn, Request, JSON, TEXT};
use crate::shard::ShardedEngine;
use crate::{env_u64, env_usize};

static OBS_SHED: imcat_obs::Counter = imcat_obs::Counter::new("serve.shed");
static OBS_NET_REQUESTS: imcat_obs::Counter = imcat_obs::Counter::new("net.requests");
static OBS_NET_CONNS: imcat_obs::Counter = imcat_obs::Counter::new("net.connections");
static OBS_NET_TIMEOUTS: imcat_obs::Counter = imcat_obs::Counter::new("net.timeouts");
static OBS_NET_SECONDS: imcat_obs::Hist = imcat_obs::Hist::new("net.request.seconds");

/// Front-end configuration. Every knob has an `IMCAT_NET_*` environment
/// variable (see [`NetConfig::from_env`]).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Engine replicas sharded on the item axis (`IMCAT_NET_SHARDS`).
    pub shards: usize,
    /// Connection worker threads (`IMCAT_NET_WORKERS`).
    pub workers: usize,
    /// Bounded admission queue capacity, for both connections awaiting a
    /// worker and jobs awaiting a tick (`IMCAT_NET_QUEUE`). Overflow sheds
    /// with a fast `503`.
    pub queue: usize,
    /// Maximum requests folded into one micro-batch tick
    /// (`IMCAT_NET_BATCH`).
    pub max_batch: usize,
    /// How long a tick lingers for the batch to fill once the first job
    /// arrives (`IMCAT_NET_TICK_US`, microseconds).
    pub tick_wait: Duration,
    /// Total per-request deadline on a connection: head read, queueing and
    /// the tick all included (`IMCAT_NET_DEADLINE_MS`).
    pub deadline: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            workers: 4,
            queue: 64,
            max_batch: 64,
            tick_wait: Duration::from_micros(200),
            deadline: Duration::from_secs(2),
        }
    }
}

impl NetConfig {
    /// Reads every knob from `IMCAT_NET_*`, defaulting to
    /// [`NetConfig::default`] for unset or malformed values.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            shards: env_usize("IMCAT_NET_SHARDS", d.shards).max(1),
            workers: env_usize("IMCAT_NET_WORKERS", d.workers).max(1),
            queue: env_usize("IMCAT_NET_QUEUE", d.queue).max(1),
            max_batch: env_usize("IMCAT_NET_BATCH", d.max_batch).max(1),
            tick_wait: Duration::from_micros(env_u64(
                "IMCAT_NET_TICK_US",
                d.tick_wait.as_micros() as u64,
            )),
            deadline: Duration::from_millis(env_u64(
                "IMCAT_NET_DEADLINE_MS",
                d.deadline.as_millis() as u64,
            )),
        }
    }
}

/// Front-end counters, snapshotted by [`Server::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// `/recommend` requests admitted to parsing.
    pub requests: u64,
    /// Requests answered `200`.
    pub answered: u64,
    /// Requests shed with `503` (connection- and job-queue overflow).
    pub shed: u64,
    /// Requests rejected `400` (bad parameters or a typed engine error).
    pub rejected: u64,
    /// Requests that timed out queued or in-flight (`504`/`408`).
    pub timeouts: u64,
    /// Interactions accepted through `POST /ingest`.
    pub ingested: u64,
}

/// One queued request plus the slot its answer lands in. Mutations ride
/// the same bounded queue as reads — admission control covers ingestion
/// identically, and the single batcher serializes every engine mutation.
struct Job {
    kind: JobKind,
    slot: Arc<Slot>,
}

enum JobKind {
    Recommend { user: u32, k: usize },
    Ingest(Vec<Interaction>),
    RegisterUser,
    RegisterItem,
}

/// What the batcher hands back for one job.
enum Answer {
    Recs(Result<Vec<Recommendation>, ServeError>),
    /// Per-interaction outcomes, in submission order.
    Ingested(Vec<Result<(), ServeError>>),
    /// Id assigned to the registered entity.
    Registered(u32),
}

/// Single-use rendezvous between a worker and the batcher.
struct Slot {
    state: Mutex<Option<Answer>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self { state: Mutex::new(None), cv: Condvar::new() }
    }

    fn fill(&self, answer: Answer) {
        *self.state.lock().unwrap() = Some(answer);
        self.cv.notify_all();
    }

    /// Blocks until the batcher fills the slot or `deadline` passes.
    fn wait(&self, deadline: Instant) -> Option<Answer> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(answer) = state.take() {
                return Some(answer);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (guard, timeout) = self.cv.wait_timeout(state, remaining).unwrap();
            state = guard;
            if timeout.timed_out() {
                return state.take();
            }
        }
    }
}

/// Bounded MPMC queue: non-blocking bounded push (admission control),
/// blocking pop that drains remaining items after close, then yields
/// `None`.
struct Queue<T> {
    inner: Mutex<QueueState<T>>,
    cv: Condvar,
    cap: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Queue<T> {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Admits `item` unless the queue is full or closed; the rejected item
    /// is handed back so the caller can shed it.
    fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.inner.lock().unwrap();
        if state.closed || state.items.len() >= self.cap {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        let mut state = self.inner.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).unwrap();
        }
    }

    /// Drains up to `max` items for one tick. Blocks for the first item,
    /// then lingers up to `wait` for the batch to fill. Returns empty only
    /// once closed and drained.
    fn pop_batch(&self, max: usize, wait: Duration) -> Vec<T> {
        let mut state = self.inner.lock().unwrap();
        loop {
            if !state.items.is_empty() {
                break;
            }
            if state.closed {
                return Vec::new();
            }
            state = self.cv.wait(state).unwrap();
        }
        if state.items.len() < max && !wait.is_zero() {
            let deadline = Instant::now() + wait;
            while state.items.len() < max && !state.closed {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let (guard, timeout) = self.cv.wait_timeout(state, remaining).unwrap();
                state = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = state.items.len().min(max);
        state.items.drain(..take).collect()
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }
}

struct Shared {
    cfg: NetConfig,
    conns: Queue<TcpStream>,
    jobs: Queue<Job>,
    /// Live entity counts, maintained by the batcher as registrations land
    /// (reads are advisory: the engine revalidates every job).
    n_users: AtomicU64,
    n_items: AtomicU64,
    shutdown: AtomicBool,
    /// Per-shard ANN backend descriptors captured at startup (`None` slot =
    /// that replica serves brute force without an index). Resolved build
    /// parameters are frozen per generation, so a startup snapshot is the
    /// live truth; only `n_items` can drift as cold items stream in.
    ann: Vec<Option<AnnDescriptor>>,
    requests: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    ingested: AtomicU64,
}

/// The running front-end: bound socket plus its thread complement. Dropping
/// (or calling [`Server::shutdown`]) stops every thread and joins them.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the sharded engine, binds `addr` (e.g. `127.0.0.1:0` for an
    /// ephemeral port) and starts the acceptor, workers, and batcher.
    pub fn start(
        artifact: &Artifact,
        serve_cfg: &ServeConfig,
        cfg: NetConfig,
        addr: &str,
    ) -> io::Result<Self> {
        let engine = ShardedEngine::new(artifact, serve_cfg, cfg.shards)?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            conns: Queue::new(cfg.queue),
            jobs: Queue::new(cfg.queue),
            n_users: AtomicU64::new(engine.n_users() as u64),
            n_items: AtomicU64::new(engine.n_items() as u64),
            shutdown: AtomicBool::new(false),
            ann: engine.ann_descriptors(),
            requests: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            ingested: AtomicU64::new(0),
            cfg,
        });
        let mut handles = Vec::new();
        {
            let shared = shared.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("imcat-net-accept".into())
                    .spawn(move || accept_loop(listener, &shared))?,
            );
        }
        for w in 0..shared.cfg.workers {
            let shared = shared.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("imcat-net-worker-{w}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        {
            let shared = shared.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("imcat-net-batcher".into())
                    .spawn(move || batcher_loop(engine, &shared))?,
            );
        }
        Ok(Self { addr: local, shared, handles })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the front-end counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            answered: self.shared.answered.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            timeouts: self.shared.timeouts.load(Ordering::Relaxed),
            ingested: self.shared.ingested.load(Ordering::Relaxed),
        }
    }

    /// Stops every thread and joins them. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.conns.close();
        self.shared.jobs.close();
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        OBS_NET_CONNS.add(1);
        if let Err(mut stream) = shared.conns.try_push(stream) {
            // Admission queue full: shed on the acceptor thread with one
            // cheap write — the queue stays bounded no matter the offered
            // load.
            shared.shed.fetch_add(1, Ordering::Relaxed);
            OBS_SHED.add(1);
            imcat_obs::counter_add("net.shed.conns", 1);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let _ = http::write_response(
                &mut stream,
                "503 Service Unavailable",
                JSON,
                &error_body("overloaded: connection queue full"),
                false,
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.conns.pop() {
        handle_conn(Conn::new(stream), shared);
    }
}

fn handle_conn(mut conn: Conn, shared: &Shared) {
    loop {
        let deadline = Instant::now() + shared.cfg.deadline;
        let request = match conn.read_request(deadline) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                shared.timeouts.fetch_add(1, Ordering::Relaxed);
                OBS_NET_TIMEOUTS.add(1);
                let _ = conn.respond("408 Request Timeout", TEXT, "timed out\n", false);
                return;
            }
            Err(_) => return,
        };
        let keep_alive = request.keep_alive;
        if serve_one(&mut conn, &request, shared, deadline).is_err() || !keep_alive {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::Str(message.into()))]).render()
}

fn serve_one(
    conn: &mut Conn,
    request: &Request,
    shared: &Shared,
    deadline: Instant,
) -> io::Result<()> {
    let keep = request.keep_alive;
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => conn.respond("200 OK", TEXT, "ok\n", keep),
        ("GET", "/stats") => {
            // The effective `IMCAT_*` configuration rides along so a live
            // process reports the knobs it actually runs under.
            let knobs = Json::obj(
                imcat_obs::knobs::dump()
                    .into_iter()
                    .map(|(key, value)| (key, Json::Str(value)))
                    .collect(),
            );
            // One entry per shard: which ANN backend is live and the build
            // parameters it resolved to (`null` = brute force, no index).
            let ann = Json::Arr(
                shared
                    .ann
                    .iter()
                    .map(|d| match d {
                        None => Json::Null,
                        Some(d) => {
                            let mut fields = vec![
                                ("kind", Json::Str(d.kind.into())),
                                ("n_items", Json::Num(d.n_items as f64)),
                            ];
                            match d.kind {
                                "ivf" => fields.extend([
                                    ("nlist", Json::Num(d.nlist as f64)),
                                    ("nprobe", Json::Num(d.nprobe as f64)),
                                    ("quantized", Json::Bool(d.quantized)),
                                ]),
                                "hnsw" => fields.extend([
                                    ("m", Json::Num(d.m as f64)),
                                    ("ef_construction", Json::Num(d.ef_construction as f64)),
                                    ("ef_search", Json::Num(d.ef_search as f64)),
                                ]),
                                _ => {}
                            }
                            Json::obj(fields)
                        }
                    })
                    .collect(),
            );
            let body = Json::obj(vec![
                ("shards", Json::Num(shared.cfg.shards as f64)),
                ("workers", Json::Num(shared.cfg.workers as f64)),
                ("queue", Json::Num(shared.cfg.queue as f64)),
                ("ann", ann),
                ("n_users", Json::Num(shared.n_users.load(Ordering::Relaxed) as f64)),
                ("n_items", Json::Num(shared.n_items.load(Ordering::Relaxed) as f64)),
                ("requests", Json::Num(shared.requests.load(Ordering::Relaxed) as f64)),
                ("answered", Json::Num(shared.answered.load(Ordering::Relaxed) as f64)),
                ("shed", Json::Num(shared.shed.load(Ordering::Relaxed) as f64)),
                ("rejected", Json::Num(shared.rejected.load(Ordering::Relaxed) as f64)),
                ("timeouts", Json::Num(shared.timeouts.load(Ordering::Relaxed) as f64)),
                ("ingested", Json::Num(shared.ingested.load(Ordering::Relaxed) as f64)),
                ("knobs", knobs),
            ]);
            conn.respond("200 OK", JSON, &body.render(), keep)
        }
        ("GET", "/recommend") => serve_recommend(conn, request, shared, deadline),
        ("POST", "/ingest") => serve_ingest(conn, request, shared, deadline),
        ("POST", "/users") => {
            serve_register(conn, request, shared, deadline, JobKind::RegisterUser)
        }
        ("POST", "/items") => {
            serve_register(conn, request, shared, deadline, JobKind::RegisterItem)
        }
        ("GET", _) => conn.respond("404 Not Found", TEXT, "not found\n", keep),
        (_, "/recommend")
        | (_, "/healthz")
        | (_, "/stats")
        | (_, "/ingest")
        | (_, "/users")
        | (_, "/items") => {
            conn.respond("405 Method Not Allowed", TEXT, "method not allowed\n", keep)
        }
        _ => conn.respond("404 Not Found", TEXT, "not found\n", keep),
    }
}

/// Pushes `kind` through the bounded job queue and waits for the batcher.
/// `None` = shed (queue full), `Some(None)` = deadline, `Some(Some(a))` =
/// answered.
fn submit(shared: &Shared, kind: JobKind, deadline: Instant) -> Option<Option<Answer>> {
    let slot = Arc::new(Slot::new());
    if shared.jobs.try_push(Job { kind, slot: slot.clone() }).is_err() {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        OBS_SHED.add(1);
        imcat_obs::counter_add("net.shed.jobs", 1);
        return None;
    }
    Some(slot.wait(deadline))
}

fn serve_recommend(
    conn: &mut Conn,
    request: &Request,
    shared: &Shared,
    deadline: Instant,
) -> io::Result<()> {
    let keep = request.keep_alive;
    shared.requests.fetch_add(1, Ordering::Relaxed);
    OBS_NET_REQUESTS.add(1);
    let user = request.query("user").and_then(|v| v.parse::<u32>().ok());
    let k = request.query("k").and_then(|v| v.parse::<usize>().ok());
    let (Some(user), Some(k)) = (user, k) else {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        return conn.respond(
            "400 Bad Request",
            JSON,
            &error_body("numeric `user` and `k` query parameters required"),
            keep,
        );
    };
    let t0 = Instant::now();
    match submit(shared, JobKind::Recommend { user, k }, deadline) {
        None => {
            // Parsed but inadmissible: the tick backlog is at capacity.
            conn.respond(
                "503 Service Unavailable",
                JSON,
                &error_body("overloaded: request queue full"),
                keep,
            )
        }
        Some(None) => {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
            OBS_NET_TIMEOUTS.add(1);
            conn.respond(
                "504 Gateway Timeout",
                JSON,
                &error_body("request deadline exceeded"),
                keep,
            )
        }
        Some(Some(Answer::Recs(Err(e)))) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            conn.respond("400 Bad Request", JSON, &error_body(&e.to_string()), keep)
        }
        Some(Some(Answer::Recs(Ok(recs)))) => {
            shared.answered.fetch_add(1, Ordering::Relaxed);
            OBS_NET_SECONDS.observe(t0.elapsed().as_secs_f64());
            // `score_bits` carries the exact f32 bit patterns (u32 < 2^53,
            // so the JSON number is lossless): clients and tests can verify
            // bit-identity without trusting a decimal round-trip.
            let body = Json::obj(vec![
                ("user", Json::Num(user as f64)),
                ("k", Json::Num(k as f64)),
                ("items", Json::Arr(recs.iter().map(|r| Json::Num(r.item as f64)).collect())),
                ("scores", Json::Arr(recs.iter().map(|r| Json::Num(r.score as f64)).collect())),
                (
                    "score_bits",
                    Json::Arr(recs.iter().map(|r| Json::Num(r.score.to_bits() as f64)).collect()),
                ),
            ]);
            conn.respond("200 OK", JSON, &body.render(), keep)
        }
        Some(Some(_)) => {
            conn.respond("500 Internal Server Error", JSON, &error_body("answer mismatch"), keep)
        }
    }
}

/// `POST /ingest`: one interaction per body line (`user item`, whitespace
/// separated), or a single `?user=U&item=I` pair with an empty body. The
/// whole batch rides one bounded-queue job; per-interaction outcomes come
/// back in order, so one stale id rejects that line and never the batch.
fn serve_ingest(
    conn: &mut Conn,
    request: &Request,
    shared: &Shared,
    deadline: Instant,
) -> io::Result<()> {
    let keep = request.keep_alive;
    shared.requests.fetch_add(1, Ordering::Relaxed);
    OBS_NET_REQUESTS.add(1);
    let batch = match parse_ingest(request) {
        Ok(batch) if batch.is_empty() => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            return conn.respond(
                "400 Bad Request",
                JSON,
                &error_body("no interactions: send `user item` lines or ?user=&item="),
                keep,
            );
        }
        Ok(batch) => batch,
        Err(msg) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            return conn.respond("400 Bad Request", JSON, &error_body(msg), keep);
        }
    };
    match submit(shared, JobKind::Ingest(batch), deadline) {
        None => conn.respond(
            "503 Service Unavailable",
            JSON,
            &error_body("overloaded: request queue full"),
            keep,
        ),
        Some(None) => {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
            OBS_NET_TIMEOUTS.add(1);
            conn.respond(
                "504 Gateway Timeout",
                JSON,
                &error_body("request deadline exceeded"),
                keep,
            )
        }
        Some(Some(Answer::Ingested(results))) => {
            let accepted = results.iter().filter(|r| r.is_ok()).count();
            let errors: Vec<Json> = results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    r.as_ref().err().map(|e| {
                        Json::obj(vec![
                            ("index", Json::Num(i as f64)),
                            ("error", Json::Str(e.to_string())),
                        ])
                    })
                })
                .collect();
            shared.ingested.fetch_add(accepted as u64, Ordering::Relaxed);
            let all_rejected = accepted == 0;
            let body = Json::obj(vec![
                ("accepted", Json::Num(accepted as f64)),
                ("rejected", Json::Num(errors.len() as f64)),
                ("errors", Json::Arr(errors)),
            ]);
            if all_rejected {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                conn.respond("400 Bad Request", JSON, &body.render(), keep)
            } else {
                shared.answered.fetch_add(1, Ordering::Relaxed);
                conn.respond("200 OK", JSON, &body.render(), keep)
            }
        }
        Some(Some(_)) => {
            conn.respond("500 Internal Server Error", JSON, &error_body("answer mismatch"), keep)
        }
    }
}

fn parse_ingest(request: &Request) -> Result<Vec<Interaction>, &'static str> {
    let mut batch = Vec::new();
    if let (Some(user), Some(item)) = (request.query("user"), request.query("item")) {
        let user = user.parse().map_err(|_| "numeric `user` required")?;
        let item = item.parse().map_err(|_| "numeric `item` required")?;
        batch.push(Interaction { user, item });
    }
    let text = std::str::from_utf8(&request.body).map_err(|_| "body must be UTF-8")?;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(u), Some(i), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err("each body line must be `user item`");
        };
        let user = u.parse().map_err(|_| "numeric `user` required")?;
        let item = i.parse().map_err(|_| "numeric `item` required")?;
        batch.push(Interaction { user, item });
    }
    Ok(batch)
}

/// `POST /users` / `POST /items`: registers one cold entity, returning the
/// assigned dense id. Serialized through the batcher like every mutation.
fn serve_register(
    conn: &mut Conn,
    request: &Request,
    shared: &Shared,
    deadline: Instant,
    kind: JobKind,
) -> io::Result<()> {
    let keep = request.keep_alive;
    shared.requests.fetch_add(1, Ordering::Relaxed);
    OBS_NET_REQUESTS.add(1);
    let field = match kind {
        JobKind::RegisterUser => "user",
        _ => "item",
    };
    match submit(shared, kind, deadline) {
        None => conn.respond(
            "503 Service Unavailable",
            JSON,
            &error_body("overloaded: request queue full"),
            keep,
        ),
        Some(None) => {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
            OBS_NET_TIMEOUTS.add(1);
            conn.respond(
                "504 Gateway Timeout",
                JSON,
                &error_body("request deadline exceeded"),
                keep,
            )
        }
        Some(Some(Answer::Registered(id))) => {
            shared.answered.fetch_add(1, Ordering::Relaxed);
            let body = Json::obj(vec![(field, Json::Num(id as f64))]);
            conn.respond("201 Created", JSON, &body.render(), keep)
        }
        Some(Some(_)) => {
            conn.respond("500 Internal Server Error", JSON, &error_body("answer mismatch"), keep)
        }
    }
}

fn batcher_loop(mut engine: ShardedEngine, shared: &Shared) {
    loop {
        let jobs = shared.jobs.pop_batch(shared.cfg.max_batch, shared.cfg.tick_wait);
        if jobs.is_empty() {
            // Empty means closed-and-drained; in-flight slots were all
            // popped before close took effect.
            return;
        }
        // Mutations first, in arrival order (ordering against reads in the
        // same tick is not contractual — the requests were concurrent), so
        // this tick's recommendations already see this tick's ingests.
        let mut mutated = false;
        let mut recommends: Vec<(usize, u32, usize)> = Vec::new();
        let mut answers: Vec<Option<Answer>> = jobs.iter().map(|_| None).collect();
        for (i, job) in jobs.iter().enumerate() {
            match &job.kind {
                JobKind::Recommend { user, k } => recommends.push((i, *user, *k)),
                JobKind::Ingest(batch) => {
                    mutated = true;
                    answers[i] = Some(Answer::Ingested(engine.ingest_batch(batch)));
                }
                JobKind::RegisterUser => {
                    mutated = true;
                    answers[i] = Some(Answer::Registered(engine.register_user()));
                }
                JobKind::RegisterItem => {
                    mutated = true;
                    answers[i] = Some(Answer::Registered(engine.register_item()));
                }
            }
        }
        if mutated {
            // Fold off the request path: cold entities become reachable at
            // the end of the tick that admitted them.
            engine.fold_pending();
            shared.n_users.store(engine.n_users() as u64, Ordering::Relaxed);
            shared.n_items.store(engine.n_items() as u64, Ordering::Relaxed);
        }
        if !recommends.is_empty() {
            let requests: Vec<(u32, usize)> = recommends.iter().map(|&(_, u, k)| (u, k)).collect();
            for (&(i, _, _), answer) in recommends.iter().zip(engine.recommend_batch(&requests)) {
                answers[i] = Some(Answer::Recs(answer));
            }
        }
        for (job, answer) in jobs.into_iter().zip(answers) {
            if let Some(answer) = answer {
                job.slot.fill(answer);
            }
        }
    }
}
