//! # imcat-core
//!
//! The IMCAT method (Wu et al., *Intent-aware Multi-source Contrastive
//! Alignment for Tag-enhanced Recommendation*, ICDE 2023), as a plug-in over
//! any [`imcat_models::Backbone`]:
//!
//! * [`irm`] — Intent-aware Representation Modeling: intent sub-embeddings
//!   and self-supervised end-to-end tag clustering (Eqs. 3–6).
//! * [`imca`] — Intent-aware Multi-source Contrastive Alignment: per-intent
//!   multi-source positive construction, intent relatedness `M`, and the
//!   bidirectional (masked) InfoNCE (Eqs. 7–14).
//! * [`isa`] — Intent-aware Set-to-set Alignment: per-intent Jaccard similar
//!   sets enriching positives for long-tail items (Eqs. 15–17).
//! * [`Imcat`] — the joint model optimizing Eq. 18 with pre-training and
//!   periodic cluster refresh; [`trainer`] adds early stopping and timing.
//!
//! ```no_run
//! use imcat_core::{Imcat, ImcatConfig, trainer};
//! use imcat_data::{generate, SynthConfig};
//! use imcat_models::{LightGcn, TrainConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let data = generate(&SynthConfig::tiny(), 0).dataset;
//! let mut rng = StdRng::seed_from_u64(0);
//! let split = data.split((0.7, 0.1, 0.2), &mut rng);
//! let backbone = LightGcn::new(&split, TrainConfig::default(), &mut rng);
//! let mut model = Imcat::new(backbone, &split, ImcatConfig::default(), &mut rng);
//! let report = trainer::train(&mut model, &split, &trainer::TrainerConfig::default());
//! println!("L-IMCAT best validation recall: {:.4}", report.best_val_recall);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod explain;
pub mod imca;
pub mod irm;
pub mod isa;
mod model;
pub mod trainer;

pub use config::{AlignMode, ClusteringMode, ImcatConfig};
pub use explain::{Explanation, IntentContribution};
pub use model::Imcat;
pub use trainer::{train, TrainReport, TrainerConfig};
