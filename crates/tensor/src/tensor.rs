//! Dense, row-major 2-D tensors.
//!
//! Every value flowing through the autodiff tape is a [`Tensor`]: a `Vec<f32>`
//! interpreted as a `rows x cols` matrix. Vectors are represented as `[n, 1]`
//! (column) or `[1, n]` (row) matrices and scalars as `[1, 1]`, which keeps
//! shape rules explicit — there is no implicit broadcasting anywhere in this
//! crate beyond the documented `*_row` / `*_rowvec` operations.

use std::fmt;

/// Minimum multiply-add count before a dense kernel pays for a pool dispatch;
/// below this the dispatch overhead exceeds the kernel itself.
pub(crate) const PAR_MIN_FLOPS: usize = 1 << 15;

/// Runs `body(row, out_row)` for every output row, fanning row blocks out
/// over the global pool when the kernel is large enough.
///
/// Determinism: rows are computed independently and written to disjoint
/// slices, and `body` is exactly the serial per-row computation, so the
/// result is bit-identical to a serial row loop for any thread count
/// (including the serial fallback taken for small kernels).
pub(crate) fn run_row_blocked(
    m: usize,
    n: usize,
    flops: usize,
    out: &mut [f32],
    body: &(dyn Fn(usize, &mut [f32]) + Sync),
) {
    debug_assert_eq!(out.len(), m * n);
    if m > 1 && flops >= PAR_MIN_FLOPS && imcat_par::parallelism_available() {
        let pool = imcat_par::global();
        // Four blocks per thread keeps stragglers short without shrinking
        // blocks below useful sizes. Block boundaries only affect scheduling,
        // never arithmetic order, so this may depend on the thread count.
        let rows_per = m.div_ceil(pool.threads() * 4).max(1);
        pool.parallel_chunks_mut(out, rows_per * n, |ci, chunk| {
            let row0 = ci * rows_per;
            for (off, o_row) in chunk.chunks_mut(n).enumerate() {
                body(row0 + off, o_row);
            }
        });
    } else {
        for (i, o_row) in out.chunks_mut(n).enumerate() {
            body(i, o_row);
        }
    }
}

/// A dense, row-major `rows x cols` matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { data: vec![value; rows * cols], rows, cols }
    }

    /// Creates a `[1, 1]` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self { data: vec![value], rows: 1, cols: 1 }
    }

    /// Wraps an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Builds a tensor from nested rows; all rows must share one length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Tensor::from_rows");
            data.extend_from_slice(row);
        }
        Self { data, rows: r, cols: c }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor. Panics on out-of-bounds in debug builds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter. Panics on out-of-bounds in debug builds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols;
        &self.data[r * c..(r + 1) * c]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The value of a `[1, 1]` tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a scalar tensor");
        self.data[0]
    }

    /// Returns the transposed matrix (copies).
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), rows: self.rows, cols: self.cols }
    }

    /// In-place `self += other`. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += s * other`. Shapes must match.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        imcat_simd::axpy(s, &other.data, &mut self.data);
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Dense matrix product `self @ other` (`[m,k] x [k,n] -> [m,n]`).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul inner dimension mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let _sp = crate::obs_matmul(m, k, n);
        let mut out = Tensor::zeros(m, n);
        if n == 0 || k == 0 {
            return out;
        }
        // ikj loop order: streams through `other` and `out` rows contiguously.
        // Output rows are independent, so the row-blocked parallel fan-out
        // below is bit-identical to this serial loop for any thread count.
        let a_data = &self.data;
        let b_data = &other.data;
        let body = |i: usize, o_row: &mut [f32]| {
            let a_row = &a_data[i * k..(i + 1) * k];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                imcat_simd::axpy(a, &b_data[p * n..(p + 1) * n], o_row);
            }
        };
        run_row_blocked(m, n, m * k * n, &mut out.data, &body);
        out
    }

    /// Matrix product with the second operand transposed:
    /// `self @ other^T` (`[m,k] x [n,k]^T -> [m,n]`).
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt inner dimension mismatch: {:?} x {:?}^T",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let _sp = crate::obs_matmul(m, k, n);
        let mut out = Tensor::zeros(m, n);
        if n == 0 || k == 0 {
            return out;
        }
        let a_data = &self.data;
        let b_data = &other.data;
        let body = |i: usize, o_row: &mut [f32]| {
            let a_row = &a_data[i * k..(i + 1) * k];
            for (j, o) in o_row.iter_mut().enumerate() {
                *o = imcat_simd::dot(a_row, &b_data[j * k..(j + 1) * k]);
            }
        };
        run_row_blocked(m, n, m * k * n, &mut out.data, &body);
        out
    }

    /// [`matmul_nt`](Self::matmul_nt) over a selection of `self`'s rows:
    /// `self[rows] @ other^T` (`[r,k] x [n,k]^T -> [r,n]`). Bit-identical to
    /// copying the rows into a fresh tensor and calling `matmul_nt`, without
    /// the copy — this is the serving batch-scorer shape, where `rows` is a
    /// tick's worth of user ids against the full item table.
    pub fn matmul_nt_rows(&self, rows: &[u32], other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt_rows inner dimension mismatch: {:?} x {:?}^T",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (rows.len(), self.cols, other.rows);
        for &r in rows {
            assert!((r as usize) < self.rows, "row {r} out of bounds for {} rows", self.rows);
        }
        let _sp = crate::obs_matmul(m, k, n);
        let mut out = Tensor::zeros(m, n);
        if n == 0 || k == 0 {
            return out;
        }
        let a_data = &self.data;
        let b_data = &other.data;
        let body = |i: usize, o_row: &mut [f32]| {
            let r = rows[i] as usize;
            let a_row = &a_data[r * k..(r + 1) * k];
            for (j, o) in o_row.iter_mut().enumerate() {
                *o = imcat_simd::dot(a_row, &b_data[j * k..(j + 1) * k]);
            }
        };
        run_row_blocked(m, n, m * k * n, &mut out.data, &body);
        out
    }

    /// Matrix product with the first operand transposed:
    /// `self^T @ other` (`[k,m]^T x [k,n] -> [m,n]`).
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn inner dimension mismatch: {:?}^T x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let _sp = crate::obs_matmul(m, k, n);
        let mut out = Tensor::zeros(m, n);
        if n == 0 || k == 0 {
            return out;
        }
        if m > 1 && m * k * n >= PAR_MIN_FLOPS && imcat_par::parallelism_available() {
            // Row-blocked variant: each output row accumulates over ascending
            // `p` with the same `a == 0` skip as the serial loop below, so the
            // per-element operation sequence — and therefore every bit of the
            // result — is identical.
            let a_data = &self.data;
            let b_data = &other.data;
            let body = |i: usize, o_row: &mut [f32]| {
                for p in 0..k {
                    let a = a_data[p * m + i];
                    if a == 0.0 {
                        continue;
                    }
                    imcat_simd::axpy(a, &b_data[p * n..(p + 1) * n], o_row);
                }
            };
            run_row_blocked(m, n, m * k * n, &mut out.data, &body);
        } else {
            // Serial pki order streams through `self` and `other` rows
            // contiguously (better locality than the row-blocked variant).
            for p in 0..k {
                let a_row = &self.data[p * m..(p + 1) * m];
                let b_row = &other.data[p * n..(p + 1) * n];
                for (i, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    imcat_simd::axpy(a, b_row, &mut out.data[i * n..(i + 1) * n]);
                }
            }
        }
        out
    }

    /// True when every pairwise difference is within `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.rows_iter().enumerate().take(max_rows) {
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate().take(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if row.len() > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
            if i + 1 == max_rows && self.rows > max_rows {
                writeln!(f, "  ...")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(4, 3, vec![1., 0., 1., 2., 1., 0., 0., 3., 1., 1., 1., 1.]);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transposed());
        assert!(via_nt.approx_eq(&via_t, 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        let via_tn = a.matmul_tn(&b);
        let via_t = a.transposed().matmul(&b);
        assert!(via_tn.approx_eq(&via_t, 1e-6));
    }

    #[test]
    fn matmul_nt_rows_matches_copy_then_matmul_nt_bitwise() {
        let a = Tensor::from_vec(5, 3, (0..15).map(|x| (x as f32) * 0.37 - 2.0).collect());
        let b = Tensor::from_vec(4, 3, (0..12).map(|x| (x as f32) * 0.11 + 0.5).collect());
        let rows: Vec<u32> = vec![3, 0, 3, 1];
        let direct = a.matmul_nt_rows(&rows, &b);
        let mut copied = Tensor::zeros(rows.len(), a.cols());
        for (i, &r) in rows.iter().enumerate() {
            copied.row_mut(i).copy_from_slice(a.row(r as usize));
        }
        let via_copy = copied.matmul_nt(&b);
        assert_eq!(direct.shape(), via_copy.shape());
        for (x, y) in direct.as_slice().iter().zip(via_copy.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert!(a.transposed().transposed().approx_eq(&a, 0.0));
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11., 22., 33.]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[16., 32., 48.]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn reduction_helpers() {
        let t = Tensor::from_vec(2, 2, vec![1., -2., 3., -4.]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.sq_norm(), 30.0);
        assert_eq!(t.max_abs(), 4.0);
    }
}
