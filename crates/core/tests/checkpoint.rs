//! Checkpoint/resume integration: killing a run at an epoch boundary and
//! resuming from the checkpoint must reproduce the uninterrupted run's final
//! state **bit-for-bit** — report metrics, validation trajectory, and the
//! full ranking scores — at any `IMCAT_THREADS`. Also covers the `.prev`
//! fallback after corruption and the graceful skip for models that do not
//! support resume.

use std::path::PathBuf;

use imcat_core::{trainer, Imcat, ImcatConfig, TrainReport, TrainerConfig};
use imcat_models::test_util::tiny_split;
use imcat_models::{Bprmf, EpochStats, RecModel, TrainConfig};
use imcat_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fresh per-test scratch directory under the target dir (no tempfile crate).
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("ckpt_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(max_epochs: usize, dir: Option<PathBuf>) -> TrainerConfig {
    TrainerConfig {
        max_epochs,
        patience: 100,
        eval_every: 2,
        eval_at: 10,
        seed: 7,
        checkpoint_every: if dir.is_some() { 1 } else { 0 },
        checkpoint_dir: dir,
        artifact_path: None,
    }
}

fn fresh_imcat(data: &imcat_data::SplitDataset) -> Imcat<Bprmf> {
    let mut rng = StdRng::seed_from_u64(5);
    let bb = Bprmf::new(data, TrainConfig { dim: 8, ..TrainConfig::default() }, &mut rng);
    Imcat::new(bb, data, ImcatConfig { pretrain_epochs: 1, ..Default::default() }, &mut rng)
}

/// The deterministic parts of a finished run: everything except wall-clock.
fn det_fields(r: &TrainReport) -> (usize, u64, u32, Vec<(usize, u64)>) {
    (
        r.epochs_run,
        r.best_val_recall.to_bits(),
        r.final_loss.to_bits(),
        r.curve.iter().map(|&(e, v)| (e, v.to_bits())).collect(),
    )
}

fn assert_scores_bit_equal(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: score shapes differ");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: scores not bit-identical");
    }
}

#[test]
fn imcat_kill_and_resume_is_bit_identical() {
    let data = tiny_split(601);
    let users: Vec<u32> = (0..data.n_users() as u32).collect();

    // Uninterrupted reference run: 6 epochs, no checkpointing.
    let mut full = fresh_imcat(&data);
    let full_report = trainer::train(&mut full, &data, &config(6, None));
    assert_eq!(full_report.resumed_from, None);

    // "Killed" run: identical config, stopped at epoch 3 with checkpoints.
    let dir = scratch("imcat_resume");
    let mut first = fresh_imcat(&data);
    let first_report = trainer::train(&mut first, &data, &config(3, Some(dir.clone())));
    assert_eq!(first_report.epochs_run, 3);
    assert!(dir.join("trainer.ckpt").exists());
    drop(first); // the process is gone; only the checkpoint survives

    // Resume: a freshly built model picks up at epoch 4 and finishes.
    let mut resumed = fresh_imcat(&data);
    let resumed_report = trainer::train(&mut resumed, &data, &config(6, Some(dir)));
    assert_eq!(resumed_report.resumed_from, Some(3));

    assert_eq!(det_fields(&full_report), det_fields(&resumed_report));
    assert_scores_bit_equal(&full.score_users(&users), &resumed.score_users(&users), "IMCAT");
}

#[test]
fn bprmf_backbone_resumes_bit_identically() {
    let data = tiny_split(602);
    let users: Vec<u32> = (0..data.n_users() as u32).collect();
    let build = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        Bprmf::new(&data, TrainConfig { dim: 8, ..TrainConfig::default() }, &mut rng)
    };

    let mut full = build(9);
    let full_report = trainer::train(&mut full, &data, &config(4, None));

    let dir = scratch("bprmf_resume");
    let mut first = build(9);
    trainer::train(&mut first, &data, &config(2, Some(dir.clone())));
    let mut resumed = build(9);
    let resumed_report = trainer::train(&mut resumed, &data, &config(4, Some(dir)));

    assert_eq!(resumed_report.resumed_from, Some(2));
    assert_eq!(det_fields(&full_report), det_fields(&resumed_report));
    assert_scores_bit_equal(&full.score_users(&users), &resumed.score_users(&users), "BPRMF");
}

/// A truncated `trainer.ckpt` must not poison the run: the trainer falls
/// back to the rotated `.prev` checkpoint (one save older) and still resumes.
#[test]
fn corrupted_checkpoint_falls_back_to_prev() {
    let data = tiny_split(603);
    let dir = scratch("fallback");
    let mut first = fresh_imcat(&data);
    trainer::train(&mut first, &data, &config(3, Some(dir.clone())));
    let primary = dir.join("trainer.ckpt");
    let prev = primary.with_extension("ckpt.prev");
    assert!(prev.exists(), "rotation should have left a .prev checkpoint");

    // Simulate a crash mid-write after the rename: truncate the primary.
    let bytes = std::fs::read(&primary).unwrap();
    std::fs::write(&primary, &bytes[..bytes.len() / 2]).unwrap();

    let mut resumed = fresh_imcat(&data);
    let report = trainer::train(&mut resumed, &data, &config(5, Some(dir)));
    // `.prev` holds the epoch-2 state (primary held epoch 3).
    assert_eq!(report.resumed_from, Some(2));
    assert_eq!(report.epochs_run, 5);
}

/// Minimal model that keeps the trait's default (no-resume) checkpoint
/// methods: training with checkpointing enabled must complete normally and
/// simply skip the saves.
struct NoCkpt {
    n_items: usize,
}

impl RecModel for NoCkpt {
    fn name(&self) -> String {
        "NoCkpt".into()
    }
    fn train_epoch(&mut self, _rng: &mut StdRng) -> EpochStats {
        EpochStats { loss: 1.0, batches: 1 }
    }
    fn score_users(&self, users: &[u32]) -> Tensor {
        Tensor::zeros(users.len(), self.n_items)
    }
    fn num_params(&self) -> usize {
        0
    }
}

#[test]
fn unsupported_model_skips_checkpointing_gracefully() {
    let data = tiny_split(604);
    let dir = scratch("skip");
    let mut model = NoCkpt { n_items: data.n_items() };
    let report = trainer::train(&mut model, &data, &config(3, Some(dir.clone())));
    assert_eq!(report.epochs_run, 3);
    assert!(!dir.join("trainer.ckpt").exists(), "no checkpoint for unsupported model");
    // load_state's default is a hard error, so resume never silently no-ops.
    assert!(model.load_state(&[]).is_err());
}
