//! The workspace's single `IMCAT_*` environment-knob reader.
//!
//! Every operational knob used to be parsed ad hoc at its use site — one
//! `std::env::var` + `parse` + fallback per crate, with no central list to
//! check the README's environment table against. This module owns that
//! layer: a static registry of every knob (name, kind, default, owning
//! subsystem, help line) plus typed accessors that look the knob up in the
//! registry before reading the environment, so an unregistered name is a
//! bug caught in tests rather than a silently undocumented knob.
//!
//! `imcat_core::config` re-exports this module as the library-facing
//! configuration surface; the network front-end's `/stats` route serves
//! [`dump`] so a live process can report its effective configuration.
//!
//! Reads are intentionally *not* cached: several tests and benches set
//! knobs mid-process, and a few hundred nanoseconds of `getenv` at
//! configuration time (never on a request path) buys that flexibility.

/// Value kind of a registered knob, for documentation and dump rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnobKind {
    /// Unsigned integer (`usize`/`u64`).
    Int,
    /// Floating-point number.
    Float,
    /// Boolean-ish flag (`1`/`true`/`on` enable).
    Flag,
    /// Free-form string (paths, addresses, comma lists, backend names).
    Str,
}

/// One registered environment knob.
#[derive(Clone, Copy, Debug)]
pub struct Knob {
    /// Environment variable name (`IMCAT_*`).
    pub key: &'static str,
    /// Value kind.
    pub kind: KnobKind,
    /// Human-readable default (what applies when the variable is unset).
    pub default: &'static str,
    /// Owning subsystem, matching the README table's "crate" column.
    pub owner: &'static str,
    /// One-line description.
    pub help: &'static str,
}

macro_rules! knob {
    ($key:literal, $kind:ident, $default:literal, $owner:literal, $help:literal) => {
        Knob { key: $key, kind: KnobKind::$kind, default: $default, owner: $owner, help: $help }
    };
}

/// Every `IMCAT_*` knob the workspace reads, in README-table order. The
/// README's environment table is tested against this list
/// (`imcat-core/tests/knob_registry.rs`), so adding a knob here without
/// documenting it — or documenting one without registering it — fails CI.
pub static KNOBS: &[Knob] = &[
    knob!("IMCAT_SCALE", Float, "1.0", "bench", "Synthetic dataset size multiplier"),
    knob!("IMCAT_EPOCHS", Int, "per-bin", "bench", "Training epoch budget"),
    knob!("IMCAT_TRIALS", Int, "per-bin", "bench", "Seeds per experiment cell"),
    knob!("IMCAT_DIM", Int, "32", "bench", "Embedding dimension"),
    knob!("IMCAT_OBS", Flag, "off", "obs", "Enables telemetry collection"),
    knob!("IMCAT_OBS_OUT", Str, "unset", "obs", "JSONL sink path (implies IMCAT_OBS=1)"),
    knob!("IMCAT_OBS_ADDR", Str, "unset", "obs", "Bind /metrics endpoint (implies IMCAT_OBS=1)"),
    knob!("IMCAT_OBS_FLUSH_SECS", Float, "unset", "obs", "Append a JSONL snapshot every N seconds"),
    knob!("IMCAT_OBS_FLUSH_PATH", Str, "derived", "obs", "Flusher output path"),
    knob!("IMCAT_OBS_WINDOW_SECS", Int, "60", "obs", "Sliding-percentile window length"),
    knob!("IMCAT_OBS_TRACE_SAMPLE", Int, "16", "obs", "Record full spans for 1-in-N requests"),
    knob!("IMCAT_OBS_TRACE_CAP", Int, "512", "obs", "Trace ring-buffer capacity"),
    knob!("IMCAT_OBS_SLOW_US", Float, "windowed p99", "obs", "Slow-trace threshold, microseconds"),
    knob!("IMCAT_THREADS", Int, "#cores", "par", "Thread-pool size; 1 = fully inline"),
    knob!("IMCAT_SIMD", Str, "auto", "simd", "Kernel backend override: scalar or avx2"),
    knob!("IMCAT_CKPT_DIR", Str, "unset", "core", "Checkpoint directory (enables checkpointing)"),
    knob!("IMCAT_CKPT_EVERY", Int, "1", "core", "Checkpoint every N epochs"),
    knob!("IMCAT_SERVE_REQUESTS", Int, "2000", "bench", "serve_bench request count"),
    knob!("IMCAT_SERVE_ZIPF", Float, "1.1", "bench", "serve_bench user-popularity skew"),
    knob!("IMCAT_SERVE_K", Int, "20", "bench", "serve_bench top-K cutoff"),
    knob!("IMCAT_SERVE_BATCH", Int, "32", "bench", "serve_bench batch-tick size"),
    knob!("IMCAT_SERVE_CACHE", Int, "256", "bench", "serve_bench LRU capacity"),
    knob!("IMCAT_SERVE_HOLD_SECS", Float, "0", "bench", "serve_bench live hold after the table"),
    knob!("IMCAT_OBS_BENCH_GATE", Flag, "off", "bench", "obs_bench exits nonzero on gate failure"),
    knob!("IMCAT_ANN_REQUESTS", Int, "2000", "bench", "ann_bench request count"),
    knob!("IMCAT_ANN_K", Int, "10", "bench", "ann_bench ranking cutoff"),
    knob!("IMCAT_ANN_ZIPF", Float, "1.1", "bench", "ann_bench user-popularity skew"),
    knob!("IMCAT_ANN_NLIST", Int, "0", "bench", "ann_bench inverted-list count (0 = auto)"),
    knob!("IMCAT_ANN_KIND", Str, "ivf", "serve", "ANN backend: ivf, brute, or hnsw"),
    knob!("IMCAT_HNSW_M", Int, "0", "ann", "HNSW degree bound per level (0 = auto)"),
    knob!("IMCAT_HNSW_EFC", Int, "0", "ann", "HNSW construction beam width (0 = auto)"),
    knob!("IMCAT_HNSW_EFS", Int, "0", "ann", "HNSW search beam width (0 = auto)"),
    knob!("IMCAT_KERNEL_REPS", Int, "5", "bench", "kernel_bench best-of repetitions"),
    knob!("IMCAT_KERNEL_BATCH", Int, "4", "bench", "kernel_bench matmul row-batch size"),
    knob!("IMCAT_NET_SHARDS", Int, "1", "net", "Engine replicas sharded on the item axis"),
    knob!("IMCAT_NET_WORKERS", Int, "4", "net", "Connection worker threads"),
    knob!("IMCAT_NET_QUEUE", Int, "64", "net", "Bounded admission queue capacity"),
    knob!("IMCAT_NET_BATCH", Int, "64", "net", "Max requests per micro-batch tick"),
    knob!("IMCAT_NET_TICK_US", Int, "200", "net", "Tick linger for the batch to fill, us"),
    knob!("IMCAT_NET_DEADLINE_MS", Int, "2000", "net", "Total per-request deadline, ms"),
    knob!("IMCAT_NET_FRONTIER", Flag, "1", "bench", "0 skips serve_bench's network frontier"),
    knob!("IMCAT_NET_SHARD_COUNTS", Str, "1,2,4", "bench", "Frontier shard counts, comma list"),
    knob!("IMCAT_NET_REQUESTS", Int, "600", "bench", "Frontier socket requests per pass"),
    knob!("IMCAT_NET_CONNS", Int, "8", "bench", "Frontier closed-loop connections"),
    knob!("IMCAT_NET_SENDERS", Int, "16", "bench", "Frontier open-loop sender threads"),
    knob!("IMCAT_NET_OPEN_FACTORS", Str, "0.6,1.5", "bench", "Open-loop offered-rate fractions"),
    knob!("IMCAT_INGEST_USERS", Int, "32", "bench", "stream_bench cold users registered live"),
    knob!("IMCAT_INGEST_BATCH", Int, "8", "bench", "Interactions applied per ingest slice"),
    knob!("IMCAT_INGEST_FOLD_LAMBDA", Float, "0.1", "serve", "Fold-in ridge regularizer"),
    knob!("IMCAT_INGEST_FOLD_STEPS", Int, "0", "serve", "Fold-in lazy-Adam refinement steps"),
    knob!("IMCAT_REBUILD_AT", Float, "0.5", "bench", "Stream fraction that triggers the rebuild"),
    knob!("IMCAT_STREAM_REQUESTS", Int, "2000", "bench", "stream_bench recommend-request count"),
];

/// Looks `key` up in the registry. Accessors assert registration so an
/// undocumented knob cannot creep back in.
pub fn lookup(key: &str) -> Option<&'static Knob> {
    KNOBS.iter().find(|k| k.key == key)
}

fn assert_registered(key: &str) {
    debug_assert!(lookup(key).is_some(), "env knob {key} is not registered in imcat_obs::knobs");
}

/// Reads a registered `usize` knob, falling back to `default` when unset or
/// malformed.
pub fn knob_usize(key: &str, default: usize) -> usize {
    assert_registered(key);
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a registered `u64` knob.
pub fn knob_u64(key: &str, default: u64) -> u64 {
    assert_registered(key);
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a registered `f64` knob.
pub fn knob_f64(key: &str, default: f64) -> f64 {
    assert_registered(key);
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a registered `f32` knob.
pub fn knob_f32(key: &str, default: f32) -> f32 {
    assert_registered(key);
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a registered flag knob (`1`/`true`/`on` are true).
pub fn knob_flag(key: &str, default: bool) -> bool {
    assert_registered(key);
    match std::env::var(key).ok().as_deref() {
        Some("1") | Some("true") | Some("on") => true,
        Some("0") | Some("false") | Some("off") => false,
        _ => default,
    }
}

/// Reads a registered string knob verbatim.
pub fn knob_str(key: &str) -> Option<String> {
    assert_registered(key);
    std::env::var(key).ok()
}

/// The effective configuration: every registered knob with its current
/// value (the environment's, or the registered default when unset). Served
/// by the front-end's `/stats` route so a live process reports the knobs it
/// is actually running under.
pub fn dump() -> Vec<(&'static str, String)> {
    KNOBS
        .iter()
        .map(|k| (k.key, std::env::var(k.key).unwrap_or_else(|_| k.default.to_string())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        for (i, a) in KNOBS.iter().enumerate() {
            assert!(a.key.starts_with("IMCAT_"), "knob {} lacks the IMCAT_ prefix", a.key);
            for b in &KNOBS[i + 1..] {
                assert_ne!(a.key, b.key, "knob {} registered twice", a.key);
            }
        }
    }

    #[test]
    fn typed_accessors_parse_and_fall_back() {
        std::env::remove_var("IMCAT_NET_SHARDS");
        assert_eq!(knob_usize("IMCAT_NET_SHARDS", 3), 3);
        std::env::set_var("IMCAT_NET_SHARDS", "7");
        assert_eq!(knob_usize("IMCAT_NET_SHARDS", 3), 7);
        std::env::set_var("IMCAT_NET_SHARDS", "junk");
        assert_eq!(knob_usize("IMCAT_NET_SHARDS", 3), 3, "malformed values fall back");
        std::env::remove_var("IMCAT_NET_SHARDS");
        std::env::set_var("IMCAT_NET_FRONTIER", "0");
        assert!(!knob_flag("IMCAT_NET_FRONTIER", true));
        std::env::remove_var("IMCAT_NET_FRONTIER");
    }

    #[test]
    fn dump_reports_defaults_and_overrides() {
        std::env::remove_var("IMCAT_INGEST_FOLD_LAMBDA");
        let get = |d: &[(&str, String)], key: &str| {
            d.iter().find(|(k, _)| *k == key).map(|(_, v)| v.clone())
        };
        let d = dump();
        assert_eq!(get(&d, "IMCAT_INGEST_FOLD_LAMBDA").as_deref(), Some("0.1"));
        std::env::set_var("IMCAT_INGEST_FOLD_LAMBDA", "0.5");
        let d = dump();
        assert_eq!(get(&d, "IMCAT_INGEST_FOLD_LAMBDA").as_deref(), Some("0.5"));
        std::env::remove_var("IMCAT_INGEST_FOLD_LAMBDA");
    }
}
