//! The README's "Environment knobs" table is hand-written; this test keeps
//! it honest against the compiled registry (`imcat_core::config::knobs`):
//! same knobs, same order, same defaults, same owning crate. Adding a knob
//! to either side without the other fails here, not in a code review.

use imcat_core::config::knobs::KNOBS;

/// Parses the README env table into `(key, default, crate)` rows. Rows look
/// like `` | `IMCAT_X` | `default` | crate | help | ``; the default cell may
/// be prose ("unset", "#cores") or a backticked literal.
fn readme_rows() -> Vec<(String, String, String)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(path).expect("README.md at the workspace root");
    let mut rows = Vec::new();
    for line in readme.lines() {
        let line = line.trim();
        if !line.starts_with("| `IMCAT_") {
            continue;
        }
        let cells: Vec<&str> =
            line.trim_matches('|').split('|').map(|c| c.trim().trim_matches('`')).collect();
        assert!(cells.len() >= 4, "malformed env-table row: {line}");
        rows.push((cells[0].to_string(), cells[1].to_string(), cells[2].to_string()));
    }
    rows
}

#[test]
fn readme_env_table_matches_knob_registry() {
    let readme = readme_rows();
    let registry: Vec<(String, String, String)> = KNOBS
        .iter()
        .map(|k| (k.key.to_string(), k.default.to_string(), k.owner.to_string()))
        .collect();
    assert!(!readme.is_empty(), "README env table not found");
    for (doc, reg) in readme.iter().zip(&registry) {
        assert_eq!(doc, reg, "README row and registry entry disagree");
    }
    assert_eq!(
        readme.len(),
        registry.len(),
        "README documents {} knobs, registry declares {}",
        readme.len(),
        registry.len()
    );
}

#[test]
fn registry_keys_are_unique_and_namespaced() {
    let mut seen = std::collections::HashSet::new();
    for knob in KNOBS {
        assert!(knob.key.starts_with("IMCAT_"), "{} escapes the namespace", knob.key);
        assert!(seen.insert(knob.key), "{} registered twice", knob.key);
        assert!(!knob.help.is_empty(), "{} has no help line", knob.key);
    }
}

#[test]
fn typed_accessors_read_through_the_registry() {
    // Unset knobs fall back to the caller's default.
    std::env::remove_var("IMCAT_INGEST_FOLD_STEPS");
    assert_eq!(imcat_core::config::knobs::knob_usize("IMCAT_INGEST_FOLD_STEPS", 3), 3);
    std::env::set_var("IMCAT_INGEST_FOLD_STEPS", "7");
    assert_eq!(imcat_core::config::knobs::knob_usize("IMCAT_INGEST_FOLD_STEPS", 3), 7);
    std::env::remove_var("IMCAT_INGEST_FOLD_STEPS");
    // dump() reports every registered knob, in registry order.
    let dump = imcat_core::config::knobs::dump();
    assert_eq!(dump.len(), KNOBS.len());
    assert!(dump.iter().zip(KNOBS).all(|((k, _), knob)| *k == knob.key));
}
