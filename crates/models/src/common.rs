//! Shared model machinery: the [`RecModel`] trait every method implements,
//! the [`Backbone`] trait IMCAT plugs into, training configuration, loss
//! helpers (BPR, bidirectional InfoNCE), an MLP block, and LightGCN-style
//! propagation.

use std::rc::Rc;

use imcat_data::SplitDataset;
use imcat_tensor::{xavier_uniform, Adam, AdamConfig, Csr, ParamId, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::Rng;

/// Hyper-parameters shared by every model (§V-D of the paper; scaled-down
/// defaults for CPU runs).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Total embedding dimension `d` (paper: 64).
    pub dim: usize,
    /// Mini-batch size (paper: 1024).
    pub batch_size: usize,
    /// Learning rate (paper: 1e-3).
    pub lr: f32,
    /// Decoupled weight decay (paper: 1e-3).
    pub weight_decay: f32,
    /// Number of propagation layers for GNN models (paper: 2).
    pub gnn_layers: usize,
    /// RNG seed for parameter initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { dim: 32, batch_size: 512, lr: 1e-3, weight_decay: 1e-3, gnn_layers: 2, seed: 0 }
    }
}

impl TrainConfig {
    /// Builds the Adam configuration for this run.
    pub fn adam(&self) -> AdamConfig {
        AdamConfig { lr: self.lr, weight_decay: self.weight_decay, ..AdamConfig::default() }
    }
}

/// Summary of one training epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochStats {
    /// Mean loss over the epoch's batches.
    pub loss: f32,
    /// Number of batches run.
    pub batches: usize,
}

/// A trainable top-N recommender.
pub trait RecModel {
    /// Model name as reported in the paper's tables.
    fn name(&self) -> String;

    /// Runs one epoch of optimization.
    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats;

    /// Resolved, gradient-free user/item embedding matrices (`[n_users, d]`,
    /// `[n_items, d]`) such that user `u`'s relevance for item `j` is exactly
    /// `user_emb[u] · item_emb[j]` — the frozen inference surface behind both
    /// [`RecModel::score_users`] and [`RecModel::export_artifact`]. For GNN
    /// models this runs propagation; for factorization models it is the raw
    /// tables. Models whose scoring is not a user×item dot product (NeuMF's
    /// fused MLP head, RippleNet's per-user tag attention) return `None` and
    /// override [`RecModel::score_users`] instead.
    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        None
    }

    /// Full-ranking scores `[users.len(), n_items]` for evaluation
    /// (training-item masking is the evaluator's job). The provided default
    /// scores against [`RecModel::export_embeddings`]; only models without a
    /// dot-product decomposition implement this directly.
    fn score_users(&self, users: &[u32]) -> Tensor {
        let (user_emb, item_emb) = self.export_embeddings().unwrap_or_else(|| {
            panic!("{}: implement export_embeddings or override score_users", self.name())
        });
        dot_score_all(&user_emb, &item_emb, users)
    }

    /// Freezes the model into a serving artifact: the resolved embeddings of
    /// [`RecModel::export_embeddings`] plus each user's sorted training-item
    /// mask, ready for `imcat-serve`. `None` when the model has no
    /// dot-product inference surface.
    fn export_artifact(&self, data: &SplitDataset) -> Option<imcat_ckpt::Artifact> {
        let (user_emb, item_emb) = self.export_embeddings()?;
        let masks = (0..data.n_users()).map(|u| data.train_items(u).to_vec()).collect();
        Some(imcat_ckpt::Artifact::new(self.name(), user_emb, item_emb, masks))
    }

    /// Total scalar parameter count.
    fn num_params(&self) -> usize;

    /// Serializes the model's full mutable training state — parameters,
    /// optimizer moments, and any internal counters — for crash-safe
    /// checkpointing, or `None` when the model does not support resume (the
    /// default; the trainer then skips checkpointing with a telemetry event).
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`RecModel::save_state`] into a model built
    /// with the identical configuration and dataset. Implementations must
    /// validate before mutating: on error the model is unchanged.
    fn load_state(&mut self, _bytes: &[u8]) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            format!("{} does not support checkpoint resume", self.name()),
        ))
    }
}

/// A backbone exposes differentiable user/item embeddings so IMCAT's
/// alignment losses (Eqs. 11–13, 16–17) can be attached on top of its own
/// ranking objective.
pub trait Backbone: RecModel {
    /// Embedding dimension `d`.
    fn dim(&self) -> usize;

    /// Parameter store (shared with any plug-in losses).
    fn store(&self) -> &ParamStore;

    /// Mutable parameter store.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Optimizer covering all currently registered parameters.
    fn rebuild_optimizer(&mut self);

    /// The optimizer state (for checkpointing).
    fn optimizer(&self) -> &Adam;

    /// Split borrow of parameter store and optimizer, for checkpoint restore
    /// (which rewrites both together).
    fn store_and_optimizer_mut(&mut self) -> (&mut ParamStore, &mut Adam);

    /// Records the *resolved* full user and item embedding matrices on the
    /// tape (`[n_users, d]`, `[n_items, d]`). For GNN backbones this runs
    /// propagation; for factorization backbones it is the raw tables.
    fn embed_all(&self, tape: &mut Tape) -> (Var, Var);

    /// Differentiable relevance scores `[B, 1]` for user/item index pairs
    /// drawn against the embeddings returned by [`Backbone::embed_all`].
    fn score_pairs(
        &self,
        tape: &mut Tape,
        all_users: Var,
        users: &[u32],
        all_items: Var,
        items: &[u32],
    ) -> Var;

    /// One optimizer step against the accumulated gradients.
    fn opt_step(&mut self);
}

/// User/item embedding tables plus the Adam state that covers the store.
pub struct EmbeddingCore {
    /// Parameter store holding every trainable tensor of the model.
    pub store: ParamStore,
    /// Optimizer over `store`.
    pub adam: Adam,
    /// User embedding table id.
    pub user_emb: ParamId,
    /// Item embedding table id.
    pub item_emb: ParamId,
    /// Embedding dimension.
    pub dim: usize,
}

impl EmbeddingCore {
    /// Xavier-initialized user/item tables.
    pub fn new(n_users: usize, n_items: usize, cfg: &TrainConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let user_emb = store.add("user_emb", xavier_uniform(n_users, cfg.dim, rng));
        let item_emb = store.add("item_emb", xavier_uniform(n_items, cfg.dim, rng));
        let adam = Adam::new(cfg.adam(), &store);
        Self { store, adam, user_emb, item_emb, dim: cfg.dim }
    }

    /// Recreates the optimizer after registering extra parameters.
    pub fn rebuild_optimizer(&mut self, cfg: &TrainConfig) {
        self.adam = Adam::new(cfg.adam(), &self.store);
    }

    /// Checkpoint payload: every parameter plus the full Adam state.
    pub fn save_state(&self) -> Vec<u8> {
        imcat_ckpt::encode_backbone_state(&self.store, &self.adam)
    }

    /// Restores a payload written by [`EmbeddingCore::save_state`].
    pub fn load_state(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        imcat_ckpt::restore_backbone_state(&mut self.store, &mut self.adam, bytes)
    }
}

/// BPR pairwise ranking loss `-mean(log σ(s⁺ - s⁻))` (paper Eq. 1/2).
pub fn bpr_loss(tape: &mut Tape, score_pos: Var, score_neg: Var) -> Var {
    let diff = tape.sub(score_pos, score_neg);
    let ls = tape.log_sigmoid(diff);
    let m = tape.mean_all(ls);
    tape.neg(m)
}

/// Bidirectional in-batch InfoNCE between row-aligned views `a` and `b`
/// (`[B, d]` each): positives on the diagonal, all other batch rows as
/// negatives, with optional per-row weights (the relatedness `M` of Eq. 9).
/// Matches the `(L_u2it + L_it2u) / 2` structure of Eq. 11.
pub fn info_nce(tape: &mut Tape, a: Var, b: Var, tau: f32, weights: Option<Var>) -> Var {
    let an = tape.l2_normalize_rows(a, 1e-12);
    let bn = tape.l2_normalize_rows(b, 1e-12);
    let logits = tape.matmul_nt(an, bn);
    let logits = tape.scale(logits, 1.0 / tau);
    let ls_ab = tape.log_softmax_rows(logits);
    let d_ab = tape.take_diag(ls_ab);
    let logits_t = tape.transpose(logits);
    let ls_ba = tape.log_softmax_rows(logits_t);
    let d_ba = tape.take_diag(ls_ba);
    let both = tape.add(d_ab, d_ba);
    let both = match weights {
        Some(w) => tape.mul(both, w),
        None => both,
    };
    let n = tape.value(both).rows() as f32;
    let s = tape.sum_all(both);
    tape.scale(s, -0.5 / n)
}

/// One-directional in-batch InfoNCE: anchors attract their row-aligned
/// target and repel the other targets. Use when only one side's rows are
/// guaranteed distinct (e.g. contrasting near-duplicate knowledge views
/// against distinct CF views).
pub fn info_nce_one_way(tape: &mut Tape, anchors: Var, targets: Var, tau: f32) -> Var {
    let an = tape.l2_normalize_rows(anchors, 1e-12);
    let tn = tape.l2_normalize_rows(targets, 1e-12);
    let logits = tape.matmul_nt(an, tn);
    let logits = tape.scale(logits, 1.0 / tau);
    let ls = tape.log_softmax_rows(logits);
    let d = tape.take_diag(ls);
    let n = tape.value(d).rows() as f32;
    let s = tape.sum_all(d);
    tape.scale(s, -1.0 / n)
}

/// LightGCN propagation: `layers` rounds of `x ← Â x`, returning the average
/// of all layer outputs including the input (He et al. 2020; `adj` must be
/// symmetric so it serves as its own transpose).
pub fn propagate_mean(tape: &mut Tape, adj: &Rc<Csr>, x0: Var, layers: usize) -> Var {
    let mut acc = x0;
    let mut x = x0;
    for _ in 0..layers {
        x = tape.spmm(adj, adj, x);
        acc = tape.add(acc, x);
    }
    tape.scale(acc, 1.0 / (layers as f32 + 1.0))
}

/// Plain-tensor version of [`propagate_mean`] for gradient-free evaluation.
pub fn propagate_mean_tensor(adj: &Csr, x0: &Tensor, layers: usize) -> Tensor {
    let mut acc = x0.clone();
    let mut x = x0.clone();
    for _ in 0..layers {
        x = adj.spmm(&x);
        acc.add_assign(&x);
    }
    acc.map(|v| v / (layers as f32 + 1.0))
}

/// A fully connected block `x @ W + b` with optional LeakyReLU, parameters
/// registered on a shared store.
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Negative slope; `None` means no activation.
    pub activation: Option<f32>,
}

impl Linear {
    /// Registers a `[d_in, d_out]` layer on `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        activation: Option<f32>,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(d_in, d_out, rng));
        let b = store.add(format!("{name}.b"), Tensor::zeros(1, d_out));
        Self { w, b, activation }
    }

    /// Differentiable forward pass.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.leaf(store, self.w);
        let b = tape.leaf(store, self.b);
        let h = tape.matmul(x, w);
        let h = tape.add_row_vec(h, b);
        match self.activation {
            Some(alpha) => tape.leaky_relu(h, alpha),
            None => h,
        }
    }

    /// Gradient-free forward pass on plain tensors.
    pub fn forward_tensor(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut h = x.matmul(store.value(self.w));
        let b = store.value(self.b);
        for r in 0..h.rows() {
            for (o, &bb) in h.row_mut(r).iter_mut().zip(b.as_slice()) {
                *o += bb;
            }
        }
        match self.activation {
            Some(alpha) => h.map(|v| if v > 0.0 { v } else { alpha * v }),
            None => h,
        }
    }
}

/// Stack of [`Linear`] layers.
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds layers `dims[0] -> dims[1] -> ... -> dims[n]`, LeakyReLU(0.1)
    /// on all but the last layer.
    pub fn new(store: &mut ParamStore, name: &str, dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        let layers = (0..dims.len() - 1)
            .map(|i| {
                let act = if i + 2 < dims.len() { Some(0.1) } else { None };
                Linear::new(store, &format!("{name}.{i}"), dims[i], dims[i + 1], act, rng)
            })
            .collect();
        Self { layers }
    }

    /// Differentiable forward pass.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, mut x: Var) -> Var {
        for l in &self.layers {
            x = l.forward(tape, store, x);
        }
        x
    }

    /// Gradient-free forward pass.
    pub fn forward_tensor(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for l in &self.layers {
            h = l.forward_tensor(store, &h);
        }
        h
    }
}

/// Sorted, deduplicated copy of an id list (for contrastive batches where a
/// duplicated node would appear as its own unseparable negative).
pub fn dedup_ids(ids: &[u32]) -> Vec<u32> {
    let mut v = ids.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Splits a stacked `[n_users + n_items, d]` node matrix (users first) into
/// separate user and item matrices — the shared epilogue of every GNN model
/// that propagates over the joint user/item graph.
pub fn split_user_item(nodes: &Tensor, n_users: usize, n_items: usize) -> (Tensor, Tensor) {
    let d = nodes.cols();
    let mut ue = Tensor::zeros(n_users, d);
    let mut ve = Tensor::zeros(n_items, d);
    for r in 0..n_users {
        ue.row_mut(r).copy_from_slice(nodes.row(r));
    }
    for r in 0..n_items {
        ve.row_mut(r).copy_from_slice(nodes.row(n_users + r));
    }
    (ue, ve)
}

/// Dense `[B, n_items]` scores as `users_emb[users] @ items_emb^T` — the
/// shared evaluation path of every dot-product model.
pub fn dot_score_all(user_emb: &Tensor, item_emb: &Tensor, users: &[u32]) -> Tensor {
    user_emb.matmul_nt_rows(users, item_emb)
}

/// Uniformly samples `n` negatives not present in `graph` row `anchor`.
pub fn sample_negatives(
    graph: &imcat_graph::Bipartite,
    anchor: u32,
    n: usize,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let cols = graph.n_cols();
    (0..n)
        .map(|_| {
            for _ in 0..64 {
                let c = rng.gen_range(0..cols) as u32;
                if !graph.forward().contains(anchor, c) {
                    return c;
                }
            }
            rng.gen_range(0..cols) as u32
        })
        .collect()
}

/// Builds the `[n_items, n_users]`-shaped *mean over interacting users*
/// aggregation CSR from the training split (Eq. 7's operator), plus its
/// transpose, both ready for `spmm`.
pub fn item_user_mean_aggregator(data: &SplitDataset) -> (Rc<Csr>, Rc<Csr>) {
    let agg = data.train.col_mean_aggregator();
    let agg_t = agg.transpose();
    (Rc::new(agg), Rc::new(agg_t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bpr_loss_decreases_with_better_separation() {
        let mut tape = Tape::new();
        let good_p = tape.constant(Tensor::from_vec(2, 1, vec![5.0, 5.0]));
        let good_n = tape.constant(Tensor::from_vec(2, 1, vec![-5.0, -5.0]));
        let bad_p = tape.constant(Tensor::from_vec(2, 1, vec![0.1, 0.1]));
        let bad_n = tape.constant(Tensor::from_vec(2, 1, vec![0.0, 0.0]));
        let good = bpr_loss(&mut tape, good_p, good_n);
        let bad = bpr_loss(&mut tape, bad_p, bad_n);
        assert!(tape.value(good).item() < tape.value(bad).item());
        assert!(tape.value(good).item() > 0.0);
    }

    #[test]
    fn info_nce_prefers_aligned_views() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = xavier_uniform(6, 8, &mut rng);
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let av2 = tape.constant(a.clone());
        let aligned = info_nce(&mut tape, av, av2, 0.2, None);
        let b = xavier_uniform(6, 8, &mut rng);
        let av3 = tape.constant(a);
        let bv = tape.constant(b);
        let misaligned = info_nce(&mut tape, av3, bv, 0.2, None);
        assert!(tape.value(aligned).item() < tape.value(misaligned).item());
    }

    #[test]
    fn one_way_infonce_prefers_aligned_views() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = xavier_uniform(6, 8, &mut rng);
        let b = xavier_uniform(6, 8, &mut rng);
        let mut tape = Tape::new();
        let a1 = tape.constant(a.clone());
        let a2 = tape.constant(a.clone());
        let aligned = info_nce_one_way(&mut tape, a1, a2, 0.5);
        let a3 = tape.constant(a);
        let bv = tape.constant(b);
        let mis = info_nce_one_way(&mut tape, a3, bv, 0.5);
        assert!(tape.value(aligned).item() < tape.value(mis).item());
    }

    #[test]
    fn dedup_ids_sorts_and_removes_duplicates() {
        assert_eq!(dedup_ids(&[3, 1, 3, 2, 1]), vec![1, 2, 3]);
        assert_eq!(dedup_ids(&[]), Vec::<u32>::new());
        assert_eq!(dedup_ids(&[7]), vec![7]);
    }

    #[test]
    fn propagate_mean_tensor_matches_tape() {
        let adj = Rc::new(Csr::from_triplets(
            3,
            3,
            &[(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.5), (2, 1, 0.5)],
        ));
        let x = Tensor::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let out = propagate_mean(&mut tape, &adj, xv, 2);
        let plain = propagate_mean_tensor(&adj, &x, 2);
        assert!(tape.value(out).approx_eq(&plain, 1e-6));
    }

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[6, 8, 3], &mut rng);
        let x = Tensor::zeros(4, 6);
        let y = mlp.forward_tensor(&store, &x);
        assert_eq!(y.shape(), (4, 3));
        let mut tape = Tape::new();
        let xv = tape.constant(x);
        let yv = mlp.forward(&mut tape, &store, xv);
        assert_eq!(tape.value(yv).shape(), (4, 3));
        assert!(tape.value(yv).approx_eq(&y, 1e-6));
    }

    #[test]
    fn dot_score_all_selects_rows() {
        let u = Tensor::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        let v = Tensor::from_vec(2, 2, vec![2., 0., 0., 3.]);
        let s = dot_score_all(&u, &v, &[2, 0]);
        assert_eq!(s.as_slice(), &[2., 3., 2., 0.]);
    }
}
