//! IMCAT hyper-parameters (paper §V-D) and the workspace configuration
//! surface: [`knobs`] is the single registry of every `IMCAT_*` runtime
//! environment variable, with typed readers and a [`knobs::dump`] the
//! network front-end serves from `/stats`.

/// The `IMCAT_*` environment-knob registry and typed accessors.
///
/// Every operational knob in the workspace is declared once in
/// [`knobs::KNOBS`] and read through `knob_usize` / `knob_u64` /
/// `knob_f32` / `knob_f64` / `knob_flag` / `knob_str`, which assert
/// registration in debug builds. The registry physically lives in
/// `imcat_obs` — the one crate below every knob reader in the dependency
/// graph — and this re-export is the library-facing entry point. The
/// README's "Environment knobs" table is tested against the registry in
/// `tests/knob_registry.rs`.
pub use imcat_obs::knobs;

/// Which sources participate in the contrastive alignment — the ablation axes
/// of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlignMode {
    /// Full U ↔ (I ⊕ T) alignment (the proposed method).
    Full,
    /// "w/o UT": drop the tag aggregation, aligning users with items only.
    NoTags,
    /// "w/o UI": drop the item embedding, aligning users with tags only.
    NoItems,
    /// "w/o UIT": no alignment at all.
    None,
}

/// How tag clusters are maintained during training (§IV-A.2: the paper
/// argues end-to-end self-supervised clustering beats the "naive solution"
/// of periodically re-running k-means on the tag embeddings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusteringMode {
    /// Learn cluster centers jointly via the Student-t KL objective (Eq. 4–6).
    EndToEnd,
    /// Re-run Lloyd k-means on the tag embeddings at every refresh; no KL
    /// loss, centers are not trainable. The paper's strawman baseline.
    PeriodicKmeans,
}

/// Configuration of the IMCAT plug-in.
#[derive(Clone, Debug)]
pub struct ImcatConfig {
    /// Number of user intents / tag clusters `K` (paper sweeps {1,2,4,8,16};
    /// must divide the embedding dimension).
    pub k_intents: usize,
    /// Scale of the item–tag BPR loss `L_VT` (α in Eq. 18).
    pub alpha: f32,
    /// Scale of the contrastive alignment loss `L_CA*` (β in Eq. 18).
    pub beta: f32,
    /// Scale of the clustering KL loss `L_KL` (γ in Eq. 18).
    pub gamma: f32,
    /// InfoNCE smoothing factor τ (paper: 1).
    pub tau: f32,
    /// Student-t degrees of freedom η (paper: 1).
    pub eta: f32,
    /// Jaccard threshold δ for the ISA module (paper sweeps {0.1..0.9},
    /// best at 0.7–0.9).
    pub delta: f32,
    /// Maximum ISA positives sampled per item per step.
    pub isa_max_pos: usize,
    /// Enables the intent-aware set-to-set alignment module (§IV-C).
    pub use_isa: bool,
    /// Enables the non-linear transformation heads (Eq. 14).
    pub use_nlt: bool,
    /// Alignment ablation mode (Table III).
    pub align: AlignMode,
    /// Epochs trained with only `L_UV + α L_VT` before clustering activates
    /// (paper: 500 of 3000; scaled default for CPU runs).
    pub pretrain_epochs: usize,
    /// Steps between hard-assignment refreshes (paper: 10 iterations).
    pub refresh_every: usize,
    /// Weight of the intent-independence regularizer (§V-D, following KGIN).
    pub independence_weight: f32,
    /// Clustering strategy (end-to-end vs periodic k-means, §IV-A.2).
    pub clustering: ClusteringMode,
    /// Item batch size for the alignment pass.
    pub align_batch: usize,
    /// Triplet batch size for the two BPR losses (paper: 1024).
    pub bpr_batch: usize,
}

impl Default for ImcatConfig {
    fn default() -> Self {
        Self {
            k_intents: 4,
            alpha: 1.0,
            beta: 0.1,
            gamma: 0.1,
            tau: 1.0,
            eta: 1.0,
            delta: 0.7,
            isa_max_pos: 1,
            use_isa: true,
            use_nlt: true,
            align: AlignMode::Full,
            pretrain_epochs: 10,
            refresh_every: 10,
            independence_weight: 0.1,
            clustering: ClusteringMode::EndToEnd,
            align_batch: 128,
            bpr_batch: 512,
        }
    }
}

impl ImcatConfig {
    /// Ablation: "w/o UIT" — removes the alignment entirely.
    pub fn without_uit(mut self) -> Self {
        self.align = AlignMode::None;
        self
    }

    /// Ablation: "w/o UT" — aligns users with items only.
    pub fn without_ut(mut self) -> Self {
        self.align = AlignMode::NoTags;
        self
    }

    /// Ablation: "w/o UI" — aligns users with tags only.
    pub fn without_ui(mut self) -> Self {
        self.align = AlignMode::NoItems;
        self
    }

    /// Ablation: "w/o NLT" — removes the non-linear projection heads.
    pub fn without_nlt(mut self) -> Self {
        self.use_nlt = false;
        self
    }

    /// Ablation: removes the set-to-set alignment (Fig. 6 baseline).
    pub fn without_isa(mut self) -> Self {
        self.use_isa = false;
        self
    }

    /// Design ablation: replace end-to-end clustering with periodic k-means
    /// (§IV-A.2's naive baseline).
    pub fn with_periodic_kmeans(mut self) -> Self {
        self.clustering = ClusteringMode::PeriodicKmeans;
        self
    }

    /// Validates the configuration against an embedding dimension.
    pub fn validate(&self, dim: usize) {
        assert!(self.k_intents >= 1, "need at least one intent");
        assert_eq!(
            dim % self.k_intents,
            0,
            "embedding dim {dim} must be divisible by K={}",
            self.k_intents
        );
        assert!(self.tau > 0.0 && self.eta > 0.0);
        assert!((0.0..=1.0).contains(&self.delta));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        ImcatConfig::default().validate(32);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_k_rejected() {
        let cfg = ImcatConfig { k_intents: 5, ..Default::default() };
        cfg.validate(32);
    }

    #[test]
    fn clustering_mode_builder() {
        let cfg = ImcatConfig::default().with_periodic_kmeans();
        assert_eq!(cfg.clustering, ClusteringMode::PeriodicKmeans);
        assert_eq!(ImcatConfig::default().clustering, ClusteringMode::EndToEnd);
    }

    #[test]
    fn ablation_builders() {
        assert_eq!(ImcatConfig::default().without_uit().align, AlignMode::None);
        assert_eq!(ImcatConfig::default().without_ut().align, AlignMode::NoTags);
        assert_eq!(ImcatConfig::default().without_ui().align, AlignMode::NoItems);
        assert!(!ImcatConfig::default().without_nlt().use_nlt);
        assert!(!ImcatConfig::default().without_isa().use_isa);
    }
}
