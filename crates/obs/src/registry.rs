//! Global sharded metric registry.
//!
//! Each recording thread owns one [`Shard`] holding atomic cells (counters
//! and [`AtomicHistogram`]s) keyed by metric name. Cells are written only by
//! the owning thread — see [`crate::sketch`] for the single-writer contract —
//! and `snapshot()` merges every shard from any thread, so metrics recorded
//! on `imcat-par` workers or concurrent serve callers are never lost.
//!
//! Shards are registered in a global list on first use and never removed:
//! when a thread exits its counts must keep contributing to totals. The hot
//! path resolves `name → cell` through a thread-local pointer-keyed cache
//! (`PtrMap`), so a steady-state `counter_add` is one hash probe plus one
//! relaxed load+store.
//!
//! Gauges are last-write-wins process globals and events are a bounded
//! process-global buffer; both are cold paths and live behind a mutex.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::sketch::{current_slot, AtomicHistogram};
use crate::{Event, Histogram, Snapshot};

/// Upper bound on buffered events so a runaway emitter cannot exhaust memory.
const MAX_EVENTS: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is on (process-wide).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turns recording on or off for the whole process.
pub fn set_enabled(on: bool) {
    if on {
        // Anchor the event clock before the first measurement.
        let _ = crate::now_seconds();
    }
    ENABLED.store(on, Relaxed);
}

/// One thread's cells. The maps are cold-path (touched once per new name per
/// thread); lookups go through the thread-local caches afterwards.
#[derive(Default)]
pub struct Shard {
    counters: Mutex<Vec<(&'static str, Arc<AtomicU64>)>>,
    hists: Mutex<Vec<(&'static str, Arc<AtomicHistogram>)>>,
}

impl Shard {
    fn counter_cell(&self, name: &'static str) -> Arc<AtomicU64> {
        let mut cells = lock(&self.counters);
        if let Some((_, c)) = cells.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let cell = Arc::new(AtomicU64::new(0));
        cells.push((name, Arc::clone(&cell)));
        cell
    }

    fn hist_cell(&self, name: &'static str) -> Arc<AtomicHistogram> {
        let mut cells = lock(&self.hists);
        if let Some((_, h)) = cells.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let cell = Arc::new(AtomicHistogram::new());
        cells.push((name, Arc::clone(&cell)));
        cell
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn shards() -> &'static Mutex<Vec<Arc<Shard>>> {
    static SHARDS: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn gauges() -> &'static Mutex<BTreeMap<&'static str, f64>> {
    static GAUGES: OnceLock<Mutex<BTreeMap<&'static str, f64>>> = OnceLock::new();
    GAUGES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn events_buf() -> &'static Mutex<Vec<Event>> {
    static EVENTS: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interned metric names for the static-handle API ([`crate::Counter`],
/// [`crate::Hist`]): id = index into this table.
fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns `name`, returning its stable id.
pub(crate) fn intern(name: &'static str) -> u32 {
    let mut table = lock(names());
    if let Some(i) = table.iter().position(|&n| n == name) {
        return i as u32;
    }
    table.push(name);
    (table.len() - 1) as u32
}

/// Open-addressing map keyed by the address of a `&'static str`. Metric
/// names are string literals, so the same call site always presents the same
/// pointer; distinct literals with equal text simply occupy two cache rows
/// that resolve (through the shard) to the same cell.
struct PtrMap<V> {
    slots: Vec<Option<(usize, V)>>,
    len: usize,
}

impl<V: Clone> PtrMap<V> {
    fn new() -> Self {
        PtrMap { slots: vec![None; 16], len: 0 }
    }

    #[inline]
    fn idx(&self, key: usize) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) & (self.slots.len() - 1)
    }

    #[inline]
    fn get(&self, key: usize) -> Option<&V> {
        let mask = self.slots.len() - 1;
        let mut i = self.idx(key);
        loop {
            match &self.slots[i] {
                Some((k, v)) if *k == key => return Some(v),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    fn insert(&mut self, key: usize, value: V) {
        if (self.len + 1) * 2 > self.slots.len() {
            let grown = vec![None; self.slots.len() * 2];
            let old = std::mem::replace(&mut self.slots, grown);
            self.len = 0;
            for (k, v) in old.into_iter().flatten() {
                self.insert_raw(k, v);
            }
        }
        self.insert_raw(key, value);
    }

    fn insert_raw(&mut self, key: usize, value: V) {
        let mask = self.slots.len() - 1;
        let mut i = self.idx(key);
        while let Some((k, _)) = &self.slots[i] {
            if *k == key {
                self.slots[i] = Some((key, value));
                return;
            }
            i = (i + 1) & mask;
        }
        self.slots[i] = Some((key, value));
        self.len += 1;
    }
}

/// Thread-local view: this thread's shard plus cell caches.
struct Local {
    shard: Arc<Shard>,
    counters: PtrMap<Arc<AtomicU64>>,
    hists: PtrMap<Arc<AtomicHistogram>>,
    counter_ids: Vec<Option<Arc<AtomicU64>>>,
    hist_ids: Vec<Option<Arc<AtomicHistogram>>>,
}

impl Local {
    fn new() -> Self {
        let shard = Arc::new(Shard::default());
        lock(shards()).push(Arc::clone(&shard));
        Local {
            shard,
            counters: PtrMap::new(),
            hists: PtrMap::new(),
            counter_ids: Vec::new(),
            hist_ids: Vec::new(),
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::new());
}

/// Registers the calling thread's shard eagerly. Worker pools call this on
/// spawn so the first hot-path record doesn't pay the registration lock.
pub fn register_thread() {
    LOCAL.with(|_| {});
}

/// Adds `v` to this thread's cell for counter `name`.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let key = name.as_ptr() as usize;
        if let Some(c) = l.counters.get(key) {
            c.store(c.load(Relaxed) + v, Relaxed);
            return;
        }
        let cell = l.shard.counter_cell(name);
        cell.store(cell.load(Relaxed) + v, Relaxed);
        l.counters.insert(key, cell);
    });
}

/// Records `seconds` into this thread's cell for histogram `name`.
#[inline]
pub fn observe(name: &'static str, seconds: f64) {
    let slot = current_slot();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let key = name.as_ptr() as usize;
        if let Some(h) = l.hists.get(key) {
            h.record(seconds, slot);
            return;
        }
        let cell = l.shard.hist_cell(name);
        cell.record(seconds, slot);
        l.hists.insert(key, cell);
    });
}

/// Counter bump through an interned id (the [`crate::Counter`] handle path).
#[inline]
pub(crate) fn counter_add_id(id: u32, name: &'static str, v: u64) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let i = id as usize;
        if let Some(Some(c)) = l.counter_ids.get(i) {
            c.store(c.load(Relaxed) + v, Relaxed);
            return;
        }
        let cell = l.shard.counter_cell(name);
        cell.store(cell.load(Relaxed) + v, Relaxed);
        if l.counter_ids.len() <= i {
            l.counter_ids.resize(i + 1, None);
        }
        l.counter_ids[i] = Some(cell);
    });
}

/// Histogram record through an interned id (the [`crate::Hist`] handle path).
#[inline]
pub(crate) fn observe_id(id: u32, name: &'static str, seconds: f64) {
    let slot = current_slot();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let i = id as usize;
        if let Some(Some(h)) = l.hist_ids.get(i) {
            h.record(seconds, slot);
            return;
        }
        let cell = l.shard.hist_cell(name);
        cell.record(seconds, slot);
        if l.hist_ids.len() <= i {
            l.hist_ids.resize(i + 1, None);
        }
        l.hist_ids[i] = Some(cell);
    });
}

/// Sets gauge `name` (process-global, last write wins).
pub fn gauge_set(name: &'static str, v: f64) {
    lock(gauges()).insert(name, v);
}

/// Appends an event to the bounded process-global buffer.
pub fn emit(event: Event) {
    let mut buf = lock(events_buf());
    if buf.len() < MAX_EVENTS {
        buf.push(event);
    }
}

/// Clones the buffered events.
pub fn events() -> Vec<Event> {
    lock(events_buf()).clone()
}

/// Merges every shard into one [`Snapshot`]. Zero-valued counters and empty
/// histograms are skipped so a freshly [`reset`] registry snapshots empty.
pub fn snapshot() -> Snapshot {
    let now_slot = current_slot();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut hists: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let mut windows: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for shard in lock(shards()).iter() {
        for (name, cell) in lock(&shard.counters).iter() {
            let v = cell.load(Relaxed);
            if v > 0 {
                *counters.entry(name).or_insert(0) += v;
            }
        }
        for (name, cell) in lock(&shard.hists).iter() {
            if cell.count() == 0 {
                continue;
            }
            cell.merge_cumulative(hists.entry(name).or_default());
            cell.merge_window(windows.entry(name).or_default(), now_slot);
        }
    }
    Snapshot {
        counters: counters.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        gauges: lock(gauges()).iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
        hists: hists.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        windows: windows
            .into_iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    }
}

/// Sliding-window quantile of one histogram, merged across shards without
/// building a full snapshot. `None` when nothing landed in the window.
pub fn window_quantile(name: &str, q: f64) -> Option<f64> {
    let now_slot = current_slot();
    let mut merged = Histogram::default();
    for shard in lock(shards()).iter() {
        for (n, cell) in lock(&shard.hists).iter() {
            if *n == name {
                cell.merge_window(&mut merged, now_slot);
            }
        }
    }
    merged.try_quantile(q)
}

/// Zeroes every cell in every shard and clears gauges and events. Cells stay
/// registered (cheap), so cached handles remain valid across resets.
pub fn reset() {
    for shard in lock(shards()).iter() {
        for (_, cell) in lock(&shard.counters).iter() {
            cell.store(0, Relaxed);
        }
        for (_, cell) in lock(&shard.hists).iter() {
            cell.clear();
        }
    }
    lock(gauges()).clear();
    lock(events_buf()).clear();
}

/// Serialises tests that assert on registry contents. The registry is
/// process-global, so concurrent test threads would otherwise contaminate
/// each other's measurements; see [`crate::exclusive`].
pub(crate) fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

pub(crate) fn lock_test() -> MutexGuard<'static, ()> {
    test_lock().lock().unwrap_or_else(|e| e.into_inner())
}
