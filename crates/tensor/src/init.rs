//! Weight initializers.
//!
//! The paper fixes Xavier initialization for all models (§V-D), so that is the
//! default everywhere; small-normal initialization is kept for cluster centers
//! and tests.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Zero-mean normal with the given standard deviation (Box–Muller).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Tensor {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

/// Uniform in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(64, 32, &mut rng);
        let a = (6.0 / 96.0_f32).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a + 1e-6));
        // Not all identical.
        assert!(t.max_abs() > 0.0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(100, 100, 0.5, &mut rng);
        let n = t.len() as f32;
        let mean = t.sum() / n;
        let var = t.as_slice().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform(10, 10, -1.0, 2.0, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-1.0..2.0).contains(&x)));
    }
}
