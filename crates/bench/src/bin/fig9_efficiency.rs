//! Fig. 9 — training efficiency vs recommendation quality: wall-clock
//! training time (to early stop) against test R@20 for the main methods on
//! two datasets. The paper's headline: N-IMCAT reaches GNN-level quality in a
//! fraction of the training time.
//!
//! Usage: `cargo run --release -p imcat-bench --bin fig9_efficiency`

use imcat_bench::{obs_finish, obs_init, preset_by_key, run_one, write_json, Env, ModelKind};

struct Point {
    model: String,
    dataset: String,
    train_seconds: f64,
    epochs: usize,
    recall: f64,
    seconds_per_epoch: f64,
}

imcat_obs::impl_to_json!(Point {
    model,
    dataset,
    train_seconds,
    epochs,
    recall,
    seconds_per_epoch
});

fn main() {
    // The efficiency figure is about where training time goes, so telemetry
    // (and its per-phase breakdown events) is always on here.
    obs_init(true);
    let env = Env::from_env();
    let models = [
        ModelKind::Neumf,
        ModelKind::LightGcn,
        ModelKind::Tgcn,
        ModelKind::Kgat,
        ModelKind::Kgin,
        ModelKind::Kgcl,
        ModelKind::NImcat,
        ModelKind::LImcat,
    ];
    let mut points = Vec::new();
    println!("Fig. 9: training time vs quality\n");
    for key in ["del", "cite"] {
        let data = env.dataset(&preset_by_key(key).unwrap());
        println!("== {} ==", data.name);
        println!("{:<10} {:>9} {:>7} {:>8} {:>9}", "model", "time(s)", "epochs", "R@20", "s/epoch");
        for kind in models {
            let icfg = env.imcat_config();
            let (r, _) = run_one(kind, &data, &env, &icfg, 1);
            println!(
                "{:<10} {:>9.2} {:>7} {:>8.2} {:>9.3}",
                r.model,
                r.train_seconds,
                r.epochs,
                r.recall * 100.0,
                r.train_seconds / r.epochs.max(1) as f64
            );
            points.push(Point {
                model: r.model.clone(),
                dataset: r.dataset.clone(),
                train_seconds: r.train_seconds,
                epochs: r.epochs,
                recall: r.recall,
                seconds_per_epoch: r.train_seconds / r.epochs.max(1) as f64,
            });
        }
        println!();
    }
    let path = write_json("fig9_efficiency", &points);
    println!("wrote {}", path.display());
    obs_finish();
}
