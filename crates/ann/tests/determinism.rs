//! Thread-count invariance: the shared k-means, the IVF index build, and the
//! probe path must all be bit-identical at `IMCAT_THREADS` 1 and 4 — the
//! same discipline every other parallel hot path in the workspace follows.

use std::sync::{Mutex, OnceLock};

use imcat_ann::{kmeans_centers, AnnConfig, IvfIndex, ProbeScratch, DEFAULT_BUILD_SEED};
use imcat_ckpt::Checkpoint;
use imcat_tensor::normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pool is process-global, so tests that reconfigure it must not overlap.
fn pool_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    imcat_par::set_threads(threads);
    let out = f();
    imcat_par::set_threads(imcat_par::default_threads());
    out
}

#[test]
fn kmeans_centroids_bit_identical_at_1_and_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let data = normal(300, 16, 1.0, &mut rng);
    let run = |threads| {
        with_threads(threads, || {
            let mut r = StdRng::seed_from_u64(42);
            kmeans_centers(&data, 12, 8, &mut r)
        })
    };
    let serial = run(1);
    let parallel = run(4);
    let a: Vec<u32> = serial.as_slice().iter().map(|x| x.to_bits()).collect();
    let b: Vec<u32> = parallel.as_slice().iter().map(|x| x.to_bits()).collect();
    assert_eq!(a, b, "k-means centroids depend on the thread count");
}

/// Builds at both thread counts and compares the *serialized* indices, which
/// covers centroids, offsets, entries, and the quantization arrays in one
/// byte-for-byte comparison.
#[test]
fn ivf_index_build_bit_identical_at_1_and_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let items = normal(400, 12, 1.0, &mut rng);
    for quantized in [false, true] {
        let cfg = AnnConfig { nlist: 24, nprobe: 6, quantized, ..AnnConfig::default() };
        let bytes = |threads| {
            with_threads(threads, || {
                let idx = IvfIndex::build(&items, &cfg, DEFAULT_BUILD_SEED);
                let mut ck = Checkpoint::new();
                idx.add_to_checkpoint(&mut ck);
                ck.to_bytes()
            })
        };
        assert_eq!(
            bytes(1),
            bytes(4),
            "serialized index differs across thread counts (quantized={quantized})"
        );
    }
}

#[test]
fn probe_results_bit_identical_at_1_and_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let items = normal(500, 8, 1.0, &mut rng);
    let queries = normal(6, 8, 1.0, &mut rng);
    let cfg = AnnConfig { nlist: 20, nprobe: 5, quantized: false, ..AnnConfig::default() };
    let mask: Vec<u32> = vec![3, 17, 250, 499];
    let run = |threads: usize| {
        with_threads(threads, || {
            let idx = IvfIndex::build(&items, &cfg, DEFAULT_BUILD_SEED);
            let mut scratch = ProbeScratch::default();
            let mut fp: Vec<(Vec<u32>, Vec<u32>, Vec<u32>)> = Vec::new();
            for q in 0..queries.rows() {
                idx.probe(queries.row(q), &items, &mask, 10, cfg.nprobe, &mut scratch);
                fp.push((
                    scratch.candidates().to_vec(),
                    scratch.scores().iter().map(|s| s.to_bits()).collect(),
                    scratch.mask().to_vec(),
                ));
            }
            fp
        })
    };
    assert_eq!(run(1), run(4), "probe output depends on the thread count");
}
