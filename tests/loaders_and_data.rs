//! Integration tests for the data path: loading HetRec-style dumps from disk,
//! applying the paper's preprocessing, and training on the result.

use std::io::Write;

use imcat::data::{build_dataset, load_dataset, FilterConfig, RawData};
use imcat::prelude::*;

/// Writes a small HetRec-style dump to a temp dir and loads it back.
#[test]
fn load_real_format_files_roundtrip() {
    let dir = std::env::temp_dir().join(format!("imcat_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ui_path = dir.join("user_item.dat");
    let it_path = dir.join("item_tag.dat");
    {
        let mut f = std::fs::File::create(&ui_path).unwrap();
        writeln!(f, "userID\titemID").unwrap();
        for u in 0..8u64 {
            for i in 0..6u64 {
                writeln!(f, "{}\t{}", u * 11, i * 101).unwrap();
            }
        }
    }
    {
        let mut f = std::fs::File::create(&it_path).unwrap();
        writeln!(f, "itemID\ttagID").unwrap();
        for i in 0..6u64 {
            for t in 0..3u64 {
                writeln!(f, "{}\t{}", i * 101, t * 7).unwrap();
            }
        }
    }
    let filter = FilterConfig { min_degree: 3, min_tag_items: 2 };
    let data = load_dataset("roundtrip", &ui_path, &it_path, filter).unwrap();
    assert_eq!(data.n_users(), 8);
    assert_eq!(data.n_items(), 6);
    assert_eq!(data.n_tags(), 3);
    assert_eq!(data.user_item.n_edges(), 48);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loaded_dataset_trains_end_to_end() {
    // Build an in-memory raw dump, index it, split it, and train briefly.
    let mut raw = RawData::default();
    for u in 0..30u64 {
        for i in 0..40u64 {
            if (u * 7 + i * 13) % 3 == 0 {
                raw.user_item.push((u, i));
            }
        }
    }
    for i in 0..40u64 {
        raw.item_tag.push((i, i % 5));
        raw.item_tag.push((i, (i + 1) % 5));
    }
    let data = build_dataset("in-memory", raw, FilterConfig { min_degree: 5, min_tag_items: 2 });
    assert!(data.n_users() > 0 && data.n_items() > 0 && data.n_tags() > 0);
    let mut rng = StdRng::seed_from_u64(0);
    let split = data.split((0.7, 0.1, 0.2), &mut rng);
    let mut model = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    let first = model.train_epoch(&mut rng).loss;
    for _ in 0..15 {
        model.train_epoch(&mut rng);
    }
    assert!(model.train_epoch(&mut rng).loss < first);
}

#[test]
fn preset_statistics_track_table1_shape() {
    // The seven presets must preserve the paper's *relative* structure:
    // HetRec-MV is by far the densest UI matrix; Yelp has the densest IT
    // matrix; Delicious has the largest tag vocabulary relative to items.
    let stats: Vec<_> =
        SynthConfig::all_presets().iter().map(|c| generate(c, 0).dataset.stats()).collect();
    let by_name = |needle: &str| {
        stats
            .iter()
            .find(|s| s.name.contains(needle))
            .unwrap_or_else(|| panic!("missing preset {needle}"))
    };
    let mv = by_name("HetRec-MV");
    for s in &stats {
        if !s.name.contains("HetRec-MV") {
            assert!(
                mv.ui_density > 2.0 * s.ui_density,
                "MV should dominate UI density: {} vs {}",
                mv.ui_density,
                s.ui_density
            );
        }
    }
    let yelp = by_name("Yelp");
    for s in &stats {
        if !s.name.contains("Yelp") {
            assert!(
                yelp.it_avg_degree > s.it_avg_degree,
                "Yelp should have the heaviest tagging: {} vs {} ({})",
                yelp.it_avg_degree,
                s.it_avg_degree,
                s.name
            );
        }
    }
    let del = by_name("HetRec-Del");
    let tag_ratio = |s: &imcat::data::DatasetStats| s.n_tags as f64 / s.n_items as f64;
    for s in &stats {
        if !s.name.contains("Del") {
            assert!(
                tag_ratio(del) > tag_ratio(s),
                "Delicious should have the richest tag vocabulary per item"
            );
        }
    }
}

#[test]
fn split_seeds_are_independent_of_generation() {
    let synth = generate(&SynthConfig::tiny(), 3);
    let mut rng_a = StdRng::seed_from_u64(100);
    let mut rng_b = StdRng::seed_from_u64(200);
    let a = synth.dataset.split((0.7, 0.1, 0.2), &mut rng_a);
    let b = synth.dataset.split((0.7, 0.1, 0.2), &mut rng_b);
    // Different split seeds shuffle items differently for at least one user.
    let differs = (0..a.n_users()).any(|u| a.train_items(u) != b.train_items(u));
    assert!(differs);
    // But the union per user is identical.
    for u in 0..a.n_users() {
        let mut ua: Vec<u32> = a.train_items(u).to_vec();
        ua.extend(&a.val[u]);
        ua.extend(&a.test[u]);
        ua.sort_unstable();
        let mut ub: Vec<u32> = b.train_items(u).to_vec();
        ub.extend(&b.val[u]);
        ub.extend(&b.test[u]);
        ub.sort_unstable();
        assert_eq!(ua, ub);
    }
}
