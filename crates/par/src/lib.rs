//! # imcat-par — a from-scratch deterministic scoped thread pool
//!
//! The build environment has no crates.io access, so — following the
//! `rand-compat` / `proptest-compat` precedent — this crate implements the
//! small slice of `rayon`-style functionality the IMCAT hot paths need, on
//! top of `std` only: spawn-once workers, a `Mutex`/`Condvar` job slot, and
//! `scope` / [`Pool::parallel_for`] / [`Pool::parallel_chunks`] entry points.
//!
//! ## Determinism guarantee
//!
//! Every API in this crate parallelizes over *disjoint output partitions*
//! whose boundaries are chosen by the caller (never by the scheduler) and
//! whose per-partition work is executed by exactly one thread. Floating-point
//! accumulation order inside a partition is therefore identical to a serial
//! run, and partition results are merged (by the caller) in partition-index
//! order. Consequently **results are bit-for-bit identical for any thread
//! count**, including 1 — `IMCAT_THREADS=1` is exact serial execution, and
//! the determinism suite at the workspace root asserts `1 == 4` bitwise.
//!
//! ## Sizing
//!
//! The global pool honors `IMCAT_THREADS` (defaulting to the machine's
//! available parallelism) and can be resized at runtime with [`set_threads`]
//! — used by the Fig. 9 thread-scaling table. Nested calls from inside a
//! worker degrade to inline serial execution (same bits, no deadlock), so
//! callers never need to care whether they are already on a pool thread.
//!
//! ## Telemetry
//!
//! Dispatches are recorded through `imcat-obs` on the submitting thread
//! (`pool.tasks` counter, `pool.queue_depth` gauge, `pool.dispatch` span).
//! The obs registry is globally sharded, so counters and spans recorded
//! inside chunk closures on worker threads land in `snapshot()` like any
//! other metric; workers register their shard eagerly on spawn. Per-worker
//! busy time still accumulates in pool-local atomics — it spans many
//! dispatches — and [`flush_obs`] folds it into the `pool.worker.busy`
//! histogram at report time.
//!
//! Request traces propagate across the dispatch boundary: when the
//! submitting thread has an active `imcat_obs::trace` handle, each executor
//! re-installs it for the duration of its chunks, so spans recorded on
//! workers attach to the submitter's in-flight trace.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

thread_local! {
    /// True on pool worker threads; nested dispatch degrades to serial.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Raw, lifetime-erased pointer to the chunk closure of an in-flight job.
///
/// Soundness: the submitting thread blocks inside [`Pool::run`] until every
/// chunk has completed, so the pointee outlives all dereferences.
struct ErasedTask(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine) and
// is kept alive by the blocked submitter for the whole time workers can see it.
unsafe impl Send for ErasedTask {}
unsafe impl Sync for ErasedTask {}

/// One submitted fan-out: a closure plus an atomic cursor over chunk indices.
struct ActiveJob {
    task: ErasedTask,
    n_chunks: usize,
    cursor: AtomicUsize,
    completed: Mutex<usize>,
    done: Condvar,
    /// The submitter's in-flight request trace, re-installed on every
    /// executor so worker-side spans attach to it.
    trace: Option<imcat_obs::trace::TraceHandle>,
}

struct PoolState {
    job: Option<Arc<ActiveJob>>,
    /// Incremented on every submit so sleeping workers can tell a fresh job
    /// from one they already drained (prevents busy-spinning on exhausted
    /// cursors).
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    /// Per-executor busy nanoseconds; the last slot belongs to the submitter.
    busy_ns: Vec<AtomicU64>,
    tasks_run: AtomicU64,
}

impl Shared {
    /// Pulls chunk indices off the job cursor until it is exhausted, then
    /// reports how many this executor ran. Returns only when the cursor is
    /// drained (other executors may still be running their last chunk).
    fn run_chunks(&self, job: &ActiveJob, slot: usize) {
        let _trace = job.trace.as_ref().map(|h| imcat_obs::trace::enter(h.clone()));
        let t0 = Instant::now();
        let mut ran = 0usize;
        loop {
            let i = job.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= job.n_chunks {
                break;
            }
            // SAFETY: see `ErasedTask` — the submitter outlives the job.
            let f = unsafe { &*job.task.0 };
            f(i);
            ran += 1;
        }
        if ran > 0 {
            self.busy_ns[slot].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.tasks_run.fetch_add(ran as u64, Ordering::Relaxed);
            let mut done = self.lock_completed(job);
            *done += ran;
            if *done == job.n_chunks {
                job.done.notify_all();
            }
        }
    }

    fn lock_completed<'a>(&self, job: &'a ActiveJob) -> std::sync::MutexGuard<'a, usize> {
        job.completed.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn worker_loop(shared: Arc<Shared>, slot: usize) {
    IN_POOL.with(|f| f.set(true));
    // Register this worker's obs shard up front so the first chunk's metric
    // records skip the registration lock.
    imcat_obs::register_thread();
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    if let Some(j) = &st.job {
                        last_epoch = st.epoch;
                        break j.clone();
                    }
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.run_chunks(&job, slot);
    }
}

/// A fixed-size thread pool executing caller-partitioned fan-outs.
///
/// Workers are spawned once at construction; each dispatch reuses them via a
/// shared job slot (one `Mutex` + `Condvar`, no channels, no spinning). The
/// submitting thread always participates in chunk execution, so a pool of
/// size `n` uses exactly `n` threads and `Pool::new(1)` spawns none at all —
/// size 1 *is* serial execution, not an emulation of it.
pub struct Pool {
    threads: usize,
    shared: Option<Arc<Shared>>,
    /// Serializes dispatches; contended submitters fall back to inline serial
    /// execution (identical bits), so this never deadlocks or queues.
    submit: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool that executes fan-outs on `threads` threads
    /// (the calling thread plus `threads - 1` workers). `0` is treated as 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return Self { threads, shared: None, submit: Mutex::new(()), workers: Vec::new() };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { job: None, epoch: 0, shutdown: false }),
            work_cv: Condvar::new(),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            tasks_run: AtomicU64::new(0),
        });
        let workers = (0..threads - 1)
            .map(|slot| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("imcat-par-{slot}"))
                    .spawn(move || worker_loop(sh, slot))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { threads, shared: Some(shared), submit: Mutex::new(()), workers }
    }

    /// Number of threads this pool executes on (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f(chunk_index)` once for every index in `0..n_chunks`,
    /// blocking until all complete. The backbone of every other entry point.
    ///
    /// Falls back to an in-order serial loop when the pool is serial, when
    /// called from a pool worker (nested dispatch), when there is at most one
    /// chunk, or when another dispatch is already in flight.
    pub fn run(&self, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        let serial = || {
            for i in 0..n_chunks {
                f(i);
            }
        };
        let Some(shared) = &self.shared else {
            return serial();
        };
        if n_chunks == 1 || IN_POOL.with(|c| c.get()) {
            return serial();
        }
        let Ok(_guard) = self.submit.try_lock() else {
            return serial();
        };
        let sp = imcat_obs::span("pool.dispatch");
        if sp.active() {
            imcat_obs::counter_add("pool.tasks", n_chunks as u64);
            imcat_obs::gauge_set("pool.queue_depth", n_chunks as f64);
        }
        // SAFETY: lifetime erasure only; this thread blocks on `done` below
        // until every chunk has run, so `f` outlives all uses.
        let task = ErasedTask(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        let job = Arc::new(ActiveJob {
            task,
            n_chunks,
            cursor: AtomicUsize::new(0),
            completed: Mutex::new(0),
            done: Condvar::new(),
            trace: imcat_obs::trace::current(),
        });
        {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(job.clone());
        }
        shared.work_cv.notify_all();
        // The caller is an executor too, on the last busy-time slot.
        shared.run_chunks(&job, self.threads - 1);
        let mut done = shared.lock_completed(&job);
        while *done < job.n_chunks {
            done = job.done.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        drop(done);
        shared.state.lock().unwrap_or_else(|e| e.into_inner()).job = None;
    }

    /// Calls `f(i)` exactly once for every `i` in `range`, potentially in
    /// parallel, blocking until all calls return. Indices are grouped into
    /// `grain`-sized chunks; within a chunk they run in ascending order on
    /// one thread.
    pub fn parallel_for(&self, range: Range<usize>, grain: usize, f: impl Fn(usize) + Sync) {
        let n = range.end.saturating_sub(range.start);
        let base = range.start;
        self.parallel_chunks(n, grain, |_, r| {
            for i in r {
                f(base + i);
            }
        });
    }

    /// Splits `0..n` into fixed `chunk`-sized ranges (the last may be short)
    /// and calls `f(chunk_index, index_range)` once per range, blocking until
    /// all return. Chunk boundaries depend only on `n` and `chunk` — never on
    /// the thread count — so per-chunk results are reproducible.
    pub fn parallel_chunks(&self, n: usize, chunk: usize, f: impl Fn(usize, Range<usize>) + Sync) {
        if n == 0 {
            return;
        }
        let chunk = chunk.max(1);
        let n_chunks = n.div_ceil(chunk);
        self.run(n_chunks, &|ci| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(n);
            f(ci, lo..hi);
        });
    }

    /// Splits `data` into fixed `chunk`-sized sub-slices and calls
    /// `f(chunk_index, sub_slice)` once per sub-slice, potentially in
    /// parallel. The sub-slices are disjoint, so this is a safe mutable
    /// fan-out over one buffer.
    pub fn parallel_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let n = data.len();
        let ptr = SendPtr(data.as_mut_ptr());
        self.parallel_chunks(n, chunk, |ci, r| {
            // SAFETY: chunk ranges are disjoint and in-bounds; exactly one
            // executor touches each range (`run` calls every index once).
            let slice = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
            f(ci, slice);
        });
    }

    /// Like [`Pool::parallel_chunks`], but collects each chunk's return value
    /// into a vector ordered by chunk index — the deterministic way to reduce
    /// across a fan-out (merge the returned partials in order).
    pub fn map_chunks<R: Send>(
        &self,
        n: usize,
        chunk: usize,
        f: impl Fn(usize, Range<usize>) -> R + Sync,
    ) -> Vec<R> {
        let chunk = chunk.max(1);
        let n_chunks = if n == 0 { 0 } else { n.div_ceil(chunk) };
        let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
        self.parallel_chunks_mut(&mut slots, 1, |ci, slot| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(n);
            slot[0] = Some(f(ci, lo..hi));
        });
        slots.into_iter().map(|s| s.expect("pool chunk did not run")).collect()
    }

    /// Runs a scope in which heterogeneous tasks can be spawned; all spawned
    /// tasks have started *and finished* by the time `scope` returns. Tasks
    /// are dispatched when the scope body returns, in spawn order (task `i`
    /// is partition `i` of the fan-out).
    pub fn scope<'scope, R>(&self, body: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope { tasks: Mutex::new(Vec::new()) };
        let out = body(&scope);
        let tasks = scope.tasks.into_inner().unwrap_or_else(|e| e.into_inner());
        if !tasks.is_empty() {
            let slots: Vec<Mutex<Option<Task<'scope>>>> =
                tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
            self.run(slots.len(), &|i| {
                let task = slots[i].lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(t) = task {
                    t();
                }
            });
        }
        out
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.state.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
            shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Handle passed to the [`Pool::scope`] body for spawning borrowed tasks.
pub struct Scope<'scope> {
    tasks: Mutex<Vec<Task<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Registers a task; it runs (possibly on another thread) before the
    /// enclosing [`Pool::scope`] call returns.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'scope) {
        self.tasks.lock().unwrap_or_else(|e| e.into_inner()).push(Box::new(f));
    }
}

/// Raw-pointer wrapper so disjoint sub-slices of one buffer can cross the
/// dispatch boundary.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor instead of field access: closures then capture the whole
    /// `Sync` wrapper rather than the bare (non-`Sync`) pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<RwLock<Arc<Pool>>> = OnceLock::new();
/// Cached thread count of the global pool so hot kernels can gate their
/// parallel path without taking the `RwLock` (0 = not yet initialized).
static THREADS_HINT: AtomicUsize = AtomicUsize::new(0);

fn global_lock() -> &'static RwLock<Arc<Pool>> {
    GLOBAL.get_or_init(|| {
        let n = default_threads();
        THREADS_HINT.store(n, Ordering::Relaxed);
        RwLock::new(Arc::new(Pool::new(n)))
    })
}

/// Thread count the global pool starts with: `IMCAT_THREADS` if set (minimum
/// 1), otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    match std::env::var("IMCAT_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// The process-wide pool used by the tensor/eval/bench hot paths.
pub fn global() -> Arc<Pool> {
    global_lock().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Replaces the global pool with one of `threads` threads. In-flight users of
/// the old pool keep their `Arc` and finish normally; determinism makes the
/// swap observable only as a speed change.
pub fn set_threads(threads: usize) {
    let threads = threads.max(1);
    let mut guard = global_lock().write().unwrap_or_else(|e| e.into_inner());
    if guard.threads() != threads {
        // The outgoing pool's workers are about to be joined; fold their
        // busy-time telemetry into this thread's registry before it is lost.
        flush_pool_obs(&guard);
        *guard = Arc::new(Pool::new(threads));
    }
    THREADS_HINT.store(threads, Ordering::Relaxed);
}

/// Thread count of the global pool.
pub fn current_threads() -> usize {
    let hint = THREADS_HINT.load(Ordering::Relaxed);
    if hint == 0 {
        global().threads()
    } else {
        hint
    }
}

/// Cheap gate for hot kernels: true when a parallel dispatch could actually
/// fan out (global pool is larger than 1 thread and we are not already on a
/// pool worker).
#[inline]
pub fn parallelism_available() -> bool {
    current_threads() > 1 && !IN_POOL.with(|c| c.get())
}

/// Folds the workers' atomic busy-time counters into the caller's `imcat-obs`
/// registry (`pool.worker.busy` histogram, seconds per worker, and the
/// `pool.tasks_run` counter) and resets them. Call once per report, from the
/// thread that owns the telemetry registry.
pub fn flush_obs() {
    flush_pool_obs(&global());
}

fn flush_pool_obs(pool: &Pool) {
    if !imcat_obs::enabled() {
        return;
    }
    if let Some(shared) = &pool.shared {
        for slot in &shared.busy_ns {
            let ns = slot.swap(0, Ordering::Relaxed);
            if ns > 0 {
                imcat_obs::observe("pool.worker.busy", ns as f64 * 1e-9);
            }
        }
        let run = shared.tasks_run.swap(0, Ordering::Relaxed);
        if run > 0 {
            imcat_obs::counter_add("pool.tasks_run", run);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.parallel_for(0..10, 3, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = Pool::new(4);
        let counts: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(0..1000, 7, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_chunks_mut_covers_disjoint_slices() {
        let pool = Pool::new(3);
        let mut data = vec![0u32; 257];
        pool.parallel_chunks_mut(&mut data, 16, |ci, slice| {
            for (off, x) in slice.iter_mut().enumerate() {
                *x = (ci * 16 + off) as u32;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let pool = Pool::new(4);
        let sums = pool.map_chunks(100, 9, |_, r| r.sum::<usize>());
        let expected: Vec<usize> =
            (0..100).collect::<Vec<_>>().chunks(9).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn scope_runs_all_spawned_tasks() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        pool.scope(|s| {
            for h in &hits {
                s.spawn(|| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_dispatch_degrades_to_serial() {
        let pool = Arc::new(Pool::new(4));
        let total = AtomicU32::new(0);
        let p2 = pool.clone();
        pool.parallel_for(0..4, 1, |_| {
            // Runs on pool threads; inner dispatch must not deadlock.
            p2.parallel_for(0..10, 2, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn zero_and_one_element_ranges() {
        let pool = Pool::new(2);
        let n = AtomicU32::new(0);
        pool.parallel_for(5..5, 4, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 0);
        pool.parallel_for(5..6, 4, |i| {
            assert_eq!(i, 5);
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 1);
        assert_eq!(pool.map_chunks(0, 8, |_, _| 1u8), Vec::<u8>::new());
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let pool = Pool::new(4);
        for round in 0..200 {
            let acc = AtomicU32::new(0);
            pool.parallel_for(0..round % 17, 2, |_| {
                acc.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(acc.load(Ordering::Relaxed) as usize, round % 17);
        }
    }
}
