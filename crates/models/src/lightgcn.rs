//! LightGCN backbone (He et al. 2020): linear propagation over the
//! symmetrically normalized user–item graph, averaging all layer outputs.
//! The paper uses it as its strongest backbone ("L-IMCAT") with 2 layers.

use std::rc::Rc;

use imcat_data::{BprSampler, SplitDataset};
use imcat_graph::joint_normalized_adjacency;
use imcat_tensor::{xavier_uniform, Adam, Csr, ParamId, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;

use crate::common::{
    bpr_loss, propagate_mean, propagate_mean_tensor, Backbone, EpochStats, RecModel, TrainConfig,
};

/// LightGCN recommender. One embedding table covers the `n_users + n_items`
/// joint node set; users occupy rows `0..n_users`.
pub struct LightGcn {
    store: ParamStore,
    adam: Adam,
    node_emb: ParamId,
    adj: Rc<Csr>,
    cfg: TrainConfig,
    sampler: BprSampler,
    n_users: usize,
    n_items: usize,
}

impl LightGcn {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let n_users = data.n_users();
        let n_items = data.n_items();
        let mut store = ParamStore::new();
        let node_emb = store.add("node_emb", xavier_uniform(n_users + n_items, cfg.dim, rng));
        let adam = Adam::new(cfg.adam(), &store);
        let adj = Rc::new(joint_normalized_adjacency(&data.train));
        let sampler = BprSampler::for_user_items(data);
        Self { store, adam, node_emb, adj, cfg, sampler, n_users, n_items }
    }

    /// Propagated `[n_users + n_items, d]` node matrix on the tape.
    fn propagate(&self, tape: &mut Tape) -> Var {
        let x0 = tape.leaf(&self.store, self.node_emb);
        propagate_mean(tape, &self.adj, x0, self.cfg.gnn_layers)
    }

    /// Gradient-free propagated node matrix.
    pub fn propagate_tensor(&self) -> Tensor {
        propagate_mean_tensor(&self.adj, self.store.value(self.node_emb), self.cfg.gnn_layers)
    }

    fn split_users_items(&self, tape: &mut Tape, nodes: Var) -> (Var, Var) {
        let user_ids: Vec<u32> = (0..self.n_users as u32).collect();
        let item_ids: Vec<u32> =
            (self.n_users as u32..(self.n_users + self.n_items) as u32).collect();
        let u = tape.gather_rows(nodes, &user_ids);
        let v = tape.gather_rows(nodes, &item_ids);
        (u, v)
    }

    fn bpr_step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let nodes = self.propagate(&mut tape);
        let u = tape.gather_rows(nodes, &batch.anchors);
        let pos_ids: Vec<u32> = batch.positives.iter().map(|&i| i + self.n_users as u32).collect();
        let neg_ids: Vec<u32> = batch.negatives.iter().map(|&i| i + self.n_users as u32).collect();
        let vp = tape.gather_rows(nodes, &pos_ids);
        let vn = tape.gather_rows(nodes, &neg_ids);
        let sp = tape.rowwise_dot(u, vp);
        let sn = tape.rowwise_dot(u, vn);
        let loss = bpr_loss(&mut tape, sp, sn);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.store);
        self.adam.step(&mut self.store);
        value
    }

    /// Resolved (propagated) user and item embedding tensors.
    pub fn resolved_embeddings(&self) -> (Tensor, Tensor) {
        let nodes = self.propagate_tensor();
        let d = self.cfg.dim;
        let mut u = Tensor::zeros(self.n_users, d);
        let mut v = Tensor::zeros(self.n_items, d);
        for r in 0..self.n_users {
            u.row_mut(r).copy_from_slice(nodes.row(r));
        }
        for r in 0..self.n_items {
            v.row_mut(r).copy_from_slice(nodes.row(self.n_users + r));
        }
        (u, v)
    }
}

impl RecModel for LightGcn {
    fn name(&self) -> String {
        "LightGCN".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.bpr_step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        Some(self.resolved_embeddings())
    }

    fn num_params(&self) -> usize {
        self.store.num_weights()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(imcat_ckpt::encode_backbone_state(&self.store, &self.adam))
    }

    fn load_state(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        imcat_ckpt::restore_backbone_state(&mut self.store, &mut self.adam, bytes)
    }
}

impl Backbone for LightGcn {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn rebuild_optimizer(&mut self) {
        self.adam = Adam::new(self.cfg.adam(), &self.store);
    }

    fn optimizer(&self) -> &Adam {
        &self.adam
    }

    fn store_and_optimizer_mut(&mut self) -> (&mut ParamStore, &mut Adam) {
        (&mut self.store, &mut self.adam)
    }

    fn embed_all(&self, tape: &mut Tape) -> (Var, Var) {
        let nodes = self.propagate(tape);
        self.split_users_items(tape, nodes)
    }

    fn score_pairs(
        &self,
        tape: &mut Tape,
        all_users: Var,
        users: &[u32],
        all_items: Var,
        items: &[u32],
    ) -> Var {
        let u = tape.gather_rows(all_users, users);
        let v = tape.gather_rows(all_items, items);
        tape.rowwise_dot(u, v)
    }

    fn opt_step(&mut self) {
        self.adam.step(&mut self.store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn loss_decreases() {
        let data = tiny_split(31);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = LightGcn::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..15 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(32);
        let mut rng = StdRng::seed_from_u64(0);
        let model = LightGcn::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 30);
    }

    #[test]
    fn tape_and_tensor_propagation_agree() {
        let data = tiny_split(33);
        let mut rng = StdRng::seed_from_u64(0);
        let model = LightGcn::new(&data, TrainConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let nodes = model.propagate(&mut tape);
        let plain = model.propagate_tensor();
        assert!(tape.value(nodes).approx_eq(&plain, 1e-5));
    }

    #[test]
    fn embed_all_splits_correctly() {
        let data = tiny_split(34);
        let mut rng = StdRng::seed_from_u64(0);
        let model = LightGcn::new(&data, TrainConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let (u, v) = model.embed_all(&mut tape);
        assert_eq!(tape.value(u).shape(), (data.n_users(), 32));
        assert_eq!(tape.value(v).shape(), (data.n_items(), 32));
        let (ur, vr) = model.resolved_embeddings();
        assert!(tape.value(u).approx_eq(&ur, 1e-5));
        assert!(tape.value(v).approx_eq(&vr, 1e-5));
    }
}
