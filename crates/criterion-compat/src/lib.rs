//! Offline drop-in replacement for the subset of the `criterion 0.5` API this
//! workspace's benches use. The build container has no crates.io access, so
//! the workspace resolves `criterion` to this path crate.
//!
//! Measurement model: each benchmark closure is warmed up briefly, then timed
//! for [`Criterion::sample_size`] samples whose iteration count is chosen so
//! one sample takes ≳1 ms. Mean, minimum, and maximum per-iteration times are
//! printed — no plots, no statistics beyond that. This keeps `cargo bench`
//! runnable (and comparable run-to-run) without any external dependency.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { samples: self.sample_size, report: None };
        f(&mut b);
        b.print(name);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string() }
    }
}

/// Group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { samples: self.c.sample_size, report: None };
        f(&mut b, input);
        b.print(&format!("{}/{}", self.name, id.label));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }
}

struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters_per_sample: u64,
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Times `f`, keeping its return value alive so the work is not
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate the per-sample iteration count on a single warmup run.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t.elapsed() / iters as u32;
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        self.report =
            Some(Report { mean: total / self.samples as u32, min, max, iters_per_sample: iters });
    }

    fn print(&self, name: &str) {
        match &self.report {
            Some(r) => println!(
                "{name:<45} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples x {} iters)",
                r.mean, r.min, r.max, self.samples, r.iters_per_sample,
            ),
            None => println!("{name:<45} (no measurement recorded)"),
        }
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
            b.iter(|| (0..n).product::<u32>())
        });
        g.finish();
    }
}
