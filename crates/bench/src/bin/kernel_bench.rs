//! Kernel microbenchmark: ns/op for the `imcat-simd` hot kernels, scalar
//! dispatch versus the runtime-selected SIMD backend, at serving-realistic
//! shapes (embedding dims 64/128, catalogs of 10k/100k items).
//!
//! Four kernels are timed, each as a sweep over an item matrix so the
//! working set matches what the batch scorer and the ANN probe loop touch:
//!
//! * `dot`           — one query row against every item row
//! * `axpy`          — one scaled item row accumulated per item
//! * `matmul_nt`     — a small user batch against every item row (ns per
//!   output element, i.e. per row-dot)
//! * `dot_i8_scaled` — the fused int8 ANN score against every item's codes
//!
//! Timing is best-of-`IMCAT_KERNEL_REPS` wall time per op, which filters
//! scheduler noise without needing a stats crate. Rows land in
//! `kernel_bench.json` via the shared experiment harness and are emitted as
//! `kernel_bench` telemetry events; the `kernel-smoke` CI job gates on the
//! d=128 `dot` / `matmul_nt` speedups when AVX2 is detected.
//!
//! Environment knobs:
//!
//! * `IMCAT_KERNEL_REPS`  — best-of repetitions per measurement (default 5)
//! * `IMCAT_KERNEL_BATCH` — user-batch rows in the matmul_nt sweep (default 4)
//!
//! Usage: `cargo run --release -p imcat-bench --bin kernel_bench`

use std::hint::black_box;
use std::time::Instant;

use imcat_bench::{logln, obs_finish, obs_init, write_json, ExpLog};
use imcat_simd::Backend;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 23;
const DIMS: [usize; 2] = [64, 128];
const COUNTS: [usize; 2] = [10_000, 100_000];

type KernelFn<'a> = Box<dyn Fn(Backend) -> f64 + 'a>;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Row {
    kernel: String,
    d: usize,
    n: usize,
    scalar_ns: f64,
    simd_ns: f64,
    speedup: f64,
    backend: String,
    avx2: bool,
}

imcat_obs::impl_to_json!(Row { kernel, d, n, scalar_ns, simd_ns, speedup, backend, avx2 });

/// Best-of-`reps` wall time per op in nanoseconds; each call to `f` must
/// perform `ops` kernel invocations.
fn best_ns_per_op(reps: usize, ops: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt * 1e9 / ops.max(1) as f64);
    }
    best
}

struct Workload {
    d: usize,
    n: usize,
    items: Vec<f32>,
    query: Vec<f32>,
    codes: Vec<i8>,
    scales: Vec<f32>,
}

impl Workload {
    fn new(d: usize, n: usize, rng: &mut StdRng) -> Self {
        let unit = |rng: &mut StdRng| (rng.gen::<f64>() * 2.0 - 1.0) as f32;
        let items: Vec<f32> = (0..n * d).map(|_| unit(rng)).collect();
        let query: Vec<f32> = (0..d).map(|_| unit(rng)).collect();
        let codes: Vec<i8> = items.iter().map(|&x| (x * 127.0) as i8).collect();
        let scales: Vec<f32> = (0..n).map(|_| 1.0 / 127.0).collect();
        Workload { d, n, items, query, codes, scales }
    }

    fn row(&self, i: usize) -> &[f32] {
        &self.items[i * self.d..(i + 1) * self.d]
    }

    /// ns per d-length dot: one query against every item row.
    fn dot_ns(&self, bk: Backend, reps: usize) -> f64 {
        best_ns_per_op(reps, self.n, || {
            let mut acc = 0.0f32;
            for i in 0..self.n {
                acc += imcat_simd::dot_with(bk, &self.query, self.row(i));
            }
            black_box(acc);
        })
    }

    /// ns per d-length axpy: every item row accumulated with alternating
    /// signs so the accumulator stays bounded across reps.
    fn axpy_ns(&self, bk: Backend, reps: usize) -> f64 {
        let mut y = vec![0.0f32; self.d];
        best_ns_per_op(reps, self.n, || {
            for i in 0..self.n {
                let s = if i % 2 == 0 { 0.25 } else { -0.25 };
                imcat_simd::axpy_with(bk, s, self.row(i), &mut y);
            }
            black_box(&y);
        })
    }

    /// ns per output element of a `batch x d` times `n x d`-transposed
    /// product — the batch-scorer shape, one row-dot per element.
    fn matmul_nt_ns(&self, bk: Backend, reps: usize, batch: usize) -> f64 {
        let users: Vec<f32> = (0..batch)
            .flat_map(|b| self.query.iter().map(move |&x| x * (1.0 + b as f32 * 0.125)))
            .collect();
        let mut out = vec![0.0f32; batch * self.n];
        best_ns_per_op(reps, batch * self.n, || {
            for b in 0..batch {
                let u = &users[b * self.d..(b + 1) * self.d];
                for i in 0..self.n {
                    out[b * self.n + i] = imcat_simd::dot_with(bk, u, self.row(i));
                }
            }
            black_box(&out);
        })
    }

    /// ns per fused int8 score: the quantized ANN scan over every item.
    fn dot_i8_ns(&self, bk: Backend, reps: usize) -> f64 {
        best_ns_per_op(reps, self.n, || {
            let mut acc = 0.0f32;
            for i in 0..self.n {
                let codes = &self.codes[i * self.d..(i + 1) * self.d];
                acc += imcat_simd::dot_i8_scaled_with(bk, codes, &self.query, self.scales[i]);
            }
            black_box(acc);
        })
    }
}

fn main() {
    obs_init(true);
    let mut log = ExpLog::new("kernel_bench");

    let reps = env_usize("IMCAT_KERNEL_REPS", 5);
    let batch = env_usize("IMCAT_KERNEL_BATCH", 4).max(1);
    let simd_bk = imcat_simd::backend();
    let avx2 = imcat_simd::avx2_detected();
    logln!(
        log,
        "kernel_bench: backend {} (avx2 detected: {avx2}), best of {reps}, matmul batch {batch}",
        simd_bk.name()
    );
    logln!(
        log,
        "{:<14} {:>4} {:>7} {:>12} {:>12} {:>8}",
        "kernel",
        "d",
        "n",
        "scalar ns",
        "simd ns",
        "speedup"
    );

    let mut rng = StdRng::seed_from_u64(SEED);
    let mut rows: Vec<Row> = Vec::new();
    for &d in &DIMS {
        for &n in &COUNTS {
            let w = Workload::new(d, n, &mut rng);
            let kernels: [(&str, KernelFn); 4] = [
                ("dot", Box::new(|bk| w.dot_ns(bk, reps))),
                ("axpy", Box::new(|bk| w.axpy_ns(bk, reps))),
                ("matmul_nt", Box::new(|bk| w.matmul_nt_ns(bk, reps, batch))),
                ("dot_i8_scaled", Box::new(|bk| w.dot_i8_ns(bk, reps))),
            ];
            for (name, run) in kernels {
                let scalar_ns = run(Backend::Scalar);
                let simd_ns = run(simd_bk);
                let row = Row {
                    kernel: name.into(),
                    d,
                    n,
                    scalar_ns,
                    simd_ns,
                    speedup: scalar_ns / simd_ns.max(1e-12),
                    backend: simd_bk.name().into(),
                    avx2,
                };
                logln!(
                    log,
                    "{:<14} {:>4} {:>7} {:>12.2} {:>12.2} {:>8.2}",
                    row.kernel,
                    row.d,
                    row.n,
                    row.scalar_ns,
                    row.simd_ns,
                    row.speedup
                );
                if imcat_obs::enabled() {
                    use imcat_obs::Json;
                    imcat_obs::emit(
                        "kernel_bench",
                        vec![
                            ("kernel", Json::Str(row.kernel.clone())),
                            ("d", Json::Num(row.d as f64)),
                            ("n", Json::Num(row.n as f64)),
                            ("scalar_ns", Json::Num(row.scalar_ns)),
                            ("simd_ns", Json::Num(row.simd_ns)),
                            ("speedup", Json::Num(row.speedup)),
                            ("backend", Json::Str(row.backend.clone())),
                            ("avx2", Json::Bool(row.avx2)),
                        ],
                    );
                    if d == 128 && n == 100_000 {
                        let gauge = match name {
                            "dot" => "kernel.dot.speedup",
                            "axpy" => "kernel.axpy.speedup",
                            "matmul_nt" => "kernel.matmul_nt.speedup",
                            _ => "kernel.dot_i8_scaled.speedup",
                        };
                        imcat_obs::gauge_set(gauge, row.speedup);
                    }
                }
                rows.push(row);
            }
        }
    }

    let path = write_json("kernel_bench", &rows);
    logln!(log, "report written to {}", path.display());
    obs_finish();
}
