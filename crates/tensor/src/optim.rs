//! Adam optimizer with lazy (touched-row-only) updates.
//!
//! The paper trains every model with Adam, learning rate and weight decay both
//! `1e-3` (§V-D). For embedding tables only a handful of rows receive gradient
//! per step; the optimizer therefore walks [`ParamStore::drain_touched`] and
//! pays cost proportional to the number of touched rows, not the table size.
//!
//! ## Staleness semantics
//!
//! A row that went untouched for `Δt` steps behaves as if it had received
//! zero gradient on every skipped step: on its next update the stored moments
//! are first decayed by `beta1^Δt` / `beta2^Δt` (tracked via a per-row
//! last-update step), then the new gradient is folded in, and bias correction
//! uses the *global* step count — exactly the moment estimates a dense Adam
//! run would hold. Weight updates (including decoupled weight decay) are only
//! applied at touched steps; that is the "lazy" part, and it is what keeps
//! untouched rows bit-identical across steps. `lazy_matches_dense_oracle`
//! below pins this contract against a dense simulation.
//!
//! ## Parallelism
//!
//! Parameters are disjoint work units, so the per-parameter drain loop fans
//! out over the `imcat-par` pool. Telemetry partials are accumulated per
//! parameter and merged in registration order, keeping the reported gradient
//! norm (and every weight bit) independent of the thread count.

use crate::store::{Param, ParamStore};
use crate::tensor::Tensor;

/// Hyper-parameters for [`Adam`].
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate (paper: 1e-3).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay (paper: 1e-3).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 1e-3 }
    }
}

/// Adam state: first/second moment buffers parallel to the parameter store.
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    /// Per-parameter, per-row global step at which the row was last updated
    /// (0 = never). Drives the `beta^Δt` decay of stale moments.
    last_step: Vec<Vec<u64>>,
    t: u64,
}

/// One parameter's slice of optimizer state, drained independently of the
/// others (possibly on a pool thread).
struct ParamUnit<'a> {
    p: &'a mut Param,
    m: &'a mut Tensor,
    v: &'a mut Tensor,
    last: &'a mut [u64],
    /// `(grad_sq_sum, nonfinite_count)` telemetry partial for this parameter.
    stat: &'a mut (f64, u64),
}

fn apply_unit(cfg: AdamConfig, t: u64, telemetry: bool, u: &mut ParamUnit<'_>) {
    let bc1 = 1.0 - cfg.beta1.powf(t as f32);
    let bc2 = 1.0 - cfg.beta2.powf(t as f32);
    let (m, v, last, stat) = (&mut *u.m, &mut *u.v, &mut *u.last, &mut *u.stat);
    u.p.drain_touched_rows(|row, value, grad| {
        if telemetry {
            for &g in grad.iter() {
                if g.is_finite() {
                    stat.0 += (g as f64) * (g as f64);
                } else {
                    stat.1 += 1;
                }
            }
        }
        let dt = t - last[row as usize];
        last[row as usize] = t;
        // `dt == 1` (row touched every step) keeps the plain single-step
        // decay; the `powf` path only runs for genuinely stale rows. A
        // never-touched row has zero moments, so its decay is a no-op.
        let (d1, d2) = if dt <= 1 {
            (cfg.beta1, cfg.beta2)
        } else {
            (cfg.beta1.powf(dt as f32), cfg.beta2.powf(dt as f32))
        };
        let mr = m.row_mut(row as usize);
        let vr = v.row_mut(row as usize);
        for ((w, &g), (mi, vi)) in value.iter_mut().zip(grad).zip(mr.iter_mut().zip(vr.iter_mut()))
        {
            *mi = d1 * *mi + (1.0 - cfg.beta1) * g;
            *vi = d2 * *vi + (1.0 - cfg.beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *w -= cfg.lr * (m_hat / (v_hat.sqrt() + cfg.eps) + cfg.weight_decay * *w);
        }
    });
}

impl Adam {
    /// Allocates moment buffers for every parameter currently in `store`.
    pub fn new(cfg: AdamConfig, store: &ParamStore) -> Self {
        let mut m = Vec::with_capacity(store.len());
        let mut v = Vec::with_capacity(store.len());
        let mut last_step = Vec::with_capacity(store.len());
        for (_, p) in store.iter() {
            let (r, c) = p.value().shape();
            m.push(Tensor::zeros(r, c));
            v.push(Tensor::zeros(r, c));
            last_step.push(vec![0u64; r]);
        }
        Self { cfg, m, v, last_step, t: 0 }
    }

    /// Current global step count.
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Learning rate accessor (for schedules).
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Overrides the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Borrows the full mutable optimizer state for checkpointing: first
    /// moments, second moments, per-row last-update steps, and the global
    /// step count, all in parameter registration order.
    pub fn export_state(&self) -> (&[Tensor], &[Tensor], &[Vec<u64>], u64) {
        (&self.m, &self.v, &self.last_step, self.t)
    }

    /// Replaces the optimizer state with one captured by [`Adam::export_state`]
    /// (e.g. restored from a checkpoint). Every buffer must match the shapes
    /// this instance was constructed with; on any mismatch the state is left
    /// untouched and an error describing the first offending parameter is
    /// returned.
    pub fn restore_state(
        &mut self,
        m: Vec<Tensor>,
        v: Vec<Tensor>,
        last_step: Vec<Vec<u64>>,
        t: u64,
    ) -> Result<(), String> {
        if m.len() != self.m.len()
            || v.len() != self.v.len()
            || last_step.len() != self.last_step.len()
        {
            return Err(format!(
                "optimizer state has {} parameters, this optimizer has {}",
                m.len(),
                self.m.len()
            ));
        }
        for (i, ((mi, vi), li)) in m.iter().zip(&v).zip(&last_step).enumerate() {
            let want = self.m[i].shape();
            if mi.shape() != want || vi.shape() != want || li.len() != want.0 {
                return Err(format!(
                    "optimizer state shape mismatch at parameter {i}: moments {:?}/{:?}, \
                     {} last-step rows, expected {:?}",
                    mi.shape(),
                    vi.shape(),
                    li.len(),
                    want
                ));
            }
        }
        self.m = m;
        self.v = v;
        self.last_step = last_step;
        self.t = t;
        Ok(())
    }

    /// Applies one Adam step to every touched row of every parameter, then
    /// clears gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        let sp = imcat_obs::span("phase.optimizer");
        let telemetry = sp.active();
        self.t += 1;
        let t = self.t;
        let cfg = self.cfg;
        let params = store.params_mut();
        debug_assert_eq!(
            params.len(),
            self.m.len(),
            "parameters registered after Adam::new are not supported"
        );
        // Gradient health is tracked here rather than per-model because every
        // model funnels its updates through this one optimizer. Partials are
        // per parameter and merged in registration order below, so the totals
        // do not depend on scheduling.
        let mut stats = vec![(0.0f64, 0u64); params.len()];
        {
            let mut units: Vec<ParamUnit<'_>> = params
                .iter_mut()
                .zip(self.m.iter_mut())
                .zip(self.v.iter_mut())
                .zip(self.last_step.iter_mut())
                .zip(stats.iter_mut())
                .map(|((((p, m), v), last), stat)| ParamUnit { p, m, v, last, stat })
                .collect();
            imcat_par::global().parallel_chunks_mut(&mut units, 1, |_, chunk| {
                for u in chunk {
                    apply_unit(cfg, t, telemetry, u);
                }
            });
        }
        if telemetry {
            let grad_sq_sum: f64 = stats.iter().map(|s| s.0).sum();
            let nonfinite: u64 = stats.iter().map(|s| s.1).sum();
            imcat_obs::counter_add("op.optimizer.count", 1);
            imcat_obs::gauge_set("grad.norm", grad_sq_sum.sqrt());
            if nonfinite > 0 {
                imcat_obs::counter_add("guard.nonfinite_grad", nonfinite);
                imcat_obs::emit(
                    "nonfinite_grad",
                    vec![
                        ("step", imcat_obs::Json::Num(self.t as f64)),
                        ("elements", imcat_obs::Json::Num(nonfinite as f64)),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ParamId;
    use crate::tape::Tape;

    /// Minimizing (w - 3)^2 should converge to w = 3.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        let cfg = AdamConfig { lr: 0.1, weight_decay: 0.0, ..AdamConfig::default() };
        let mut adam = Adam::new(cfg, &store);
        for _ in 0..500 {
            let mut tape = Tape::new();
            let wv = tape.leaf(&store, w);
            let c = tape.constant(Tensor::scalar(3.0));
            let d = tape.sub(wv, c);
            let sq = tape.mul(d, d);
            let loss = tape.sum_all(sq);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert!((store.value(w).item() - 3.0).abs() < 1e-2);
    }

    /// Rows that never receive gradient must remain exactly unchanged.
    #[test]
    fn untouched_rows_are_not_updated() {
        let mut store = ParamStore::new();
        let table = store.add("emb", Tensor::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let mut adam = Adam::new(AdamConfig::default(), &store);
        let mut tape = Tape::new();
        let rows = tape.gather(&store, table, &[1]);
        let s = tape.sum_all(rows);
        tape.backward(s, &mut store);
        adam.step(&mut store);
        // Row 0 and 2 untouched.
        assert_eq!(store.value(table).row(0), &[1., 1.]);
        assert_eq!(store.value(table).row(2), &[3., 3.]);
        // Row 1 moved.
        assert_ne!(store.value(table).row(1), &[2., 2.]);
    }

    #[test]
    fn weight_decay_shrinks_touched_weights() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(10.0));
        let cfg = AdamConfig { lr: 0.0, weight_decay: 0.0, ..Default::default() };
        // lr = 0 means only decay acts... but decay is multiplied by lr, so use
        // lr > 0 with a gradient-free touch instead.
        let cfg2 = AdamConfig { lr: 0.1, weight_decay: 0.5, ..cfg };
        let mut adam = Adam::new(cfg2, &store);
        let mut tape = Tape::new();
        let wv = tape.leaf(&store, w);
        let loss = tape.scale(wv, 0.0); // zero gradient, still touches the row
        let loss = tape.sum_all(loss);
        tape.backward(loss, &mut store);
        adam.step(&mut store);
        assert!(store.value(w).item() < 10.0);
    }

    /// Touches row `r` of `table` with gradient 1.0 on every element.
    fn touch(store: &mut ParamStore, table: ParamId, r: u32) {
        let mut tape = Tape::new();
        let rows = tape.gather(store, table, &[r]);
        let s = tape.sum_all(rows);
        tape.backward(s, store);
    }

    /// Dense-Adam oracle on a sparse touch pattern: moments evolve every step
    /// (zero gradient when untouched), weight updates only land at touched
    /// steps. The lazy `beta^Δt` decay must reproduce this to fp accuracy.
    #[test]
    fn lazy_matches_dense_oracle() {
        let cfg = AdamConfig { lr: 0.05, weight_decay: 0.0, ..AdamConfig::default() };
        let touched_steps = [1u64, 10]; // stale for 9 steps between updates
        let total_steps = 12u64;

        // Lazy run: row 1 of a 2-row table updated only at `touched_steps`;
        // row 0 touched every step so the global step count keeps advancing.
        let mut store = ParamStore::new();
        let table = store.add("emb", Tensor::from_vec(2, 1, vec![0.5, 0.5]));
        let mut adam = Adam::new(cfg, &store);
        for step in 1..=total_steps {
            touch(&mut store, table, 0);
            if touched_steps.contains(&step) {
                touch(&mut store, table, 1);
            }
            adam.step(&mut store);
        }
        let lazy_w = store.value(table).get(1, 0);

        // Dense oracle for row 1: g = 1 at touched steps, 0 otherwise.
        let (mut m, mut v, mut w) = (0.0f32, 0.0f32, 0.5f32);
        for step in 1..=total_steps {
            let g = if touched_steps.contains(&step) { 1.0f32 } else { 0.0 };
            m = cfg.beta1 * m + (1.0 - cfg.beta1) * g;
            v = cfg.beta2 * v + (1.0 - cfg.beta2) * g * g;
            if g != 0.0 {
                let m_hat = m / (1.0 - cfg.beta1.powf(step as f32));
                let v_hat = v / (1.0 - cfg.beta2.powf(step as f32));
                w -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
            }
        }
        assert!(
            (lazy_w - w).abs() < 1e-6,
            "lazy Adam diverged from dense oracle: lazy={lazy_w}, dense={w}"
        );
    }

    /// Regression for the over-correction bug: a row whose second update
    /// arrives after a long stale gap must not reuse its un-decayed stale
    /// moments. With decay, the second update's direction is driven by the
    /// fresh gradient; the old code's larger stale `m̂/√v̂` ratio produced a
    /// visibly bigger step. Assert the decayed semantics exactly via Δt.
    #[test]
    fn stale_rows_decay_their_moments() {
        let cfg = AdamConfig { lr: 0.1, weight_decay: 0.0, ..AdamConfig::default() };
        let gap = 20u64;
        let mut store = ParamStore::new();
        let table = store.add("emb", Tensor::from_vec(2, 1, vec![0.0, 0.0]));
        let mut adam = Adam::new(cfg, &store);
        // Step 1 touches both rows; steps 2..=gap touch only row 0.
        touch(&mut store, table, 0);
        touch(&mut store, table, 1);
        adam.step(&mut store);
        for _ in 1..gap {
            touch(&mut store, table, 0);
            adam.step(&mut store);
        }
        // Step gap+1 touches row 1 again.
        let before = store.value(table).get(1, 0);
        touch(&mut store, table, 0);
        touch(&mut store, table, 1);
        adam.step(&mut store);
        let applied = before - store.value(table).get(1, 0);

        // Expected update from first principles.
        let t = (gap + 1) as f32;
        let m1 = (1.0 - cfg.beta1) * 1.0f32; // after step 1
        let v1 = (1.0 - cfg.beta2) * 1.0f32;
        let m = cfg.beta1.powf(gap as f32) * m1 + (1.0 - cfg.beta1);
        let v = cfg.beta2.powf(gap as f32) * v1 + (1.0 - cfg.beta2);
        let m_hat = m / (1.0 - cfg.beta1.powf(t));
        let v_hat = v / (1.0 - cfg.beta2.powf(t));
        let expected = cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
        assert!(
            (applied - expected).abs() < 1e-6,
            "stale-row update {applied} != decayed expectation {expected}"
        );
    }
}
