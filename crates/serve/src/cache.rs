//! Bounded LRU cache of hot users' top-K lists.
//!
//! Hand-rolled (the container has no crates.io access): a `HashMap` from key
//! to slab slot plus an intrusive doubly-linked list over the slab, so both
//! lookup and eviction are O(1). Capacity 0 disables caching entirely.

use std::collections::HashMap;

use crate::engine::Recommendation;

/// Cache key: one `(user, k)` request shape.
pub type CacheKey = (u32, usize);

const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    value: Vec<Recommendation>,
    prev: usize,
    next: usize,
}

/// Bounded least-recently-used cache of recommendation lists with hit/miss
/// accounting.
pub struct LruCache {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node>,
    /// Slab slots vacated by [`LruCache::remove_user`], reused before the
    /// slab grows.
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` lists (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of cached lists.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached lists.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit. Records
    /// one hit or miss.
    pub fn get(&mut self, key: CacheKey) -> Option<&[Recommendation]> {
        match self.map.get(&key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(&self.slab[slot].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks membership without promoting or counting.
    pub fn contains(&self, key: CacheKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// when full. No-op at capacity 0.
    pub fn put(&mut self, key: CacheKey, value: Vec<Recommendation>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        let slot = if let Some(slot) = self.free.pop() {
            // Reuse a slot vacated by per-user invalidation.
            self.slab[slot].key = key;
            self.slab[slot].value = value;
            slot
        } else if self.map.len() >= self.capacity {
            // Reuse the LRU slot.
            let victim = self.tail;
            self.detach(victim);
            self.map.remove(&self.slab[victim].key);
            self.slab[victim].key = key;
            self.slab[victim].value = value;
            victim
        } else {
            self.slab.push(Node { key, value, prev: NIL, next: NIL });
            self.slab.len() - 1
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Drops every entry (hit/miss counters are preserved — they describe
    /// the engine's lifetime, not one artifact generation).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Drops every cached list belonging to `user` (all `k` cutoffs),
    /// leaving other users' entries hot. O(len) scan — invalidation is per
    /// ingested interaction, which is far rarer than lookups. Returns the
    /// number of entries removed.
    pub fn remove_user(&mut self, user: u32) -> usize {
        let keys: Vec<CacheKey> = self.map.keys().filter(|k| k.0 == user).copied().collect();
        for key in &keys {
            let slot = self.map.remove(key).expect("key just listed");
            self.detach(slot);
            self.slab[slot].value = Vec::new();
            self.free.push(slot);
        }
        keys.len()
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: u32) -> Vec<Recommendation> {
        vec![Recommendation { item: n, score: n as f32 }]
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = LruCache::new(4);
        assert!(c.get((1, 10)).is_none());
        c.put((1, 10), recs(1));
        assert_eq!(c.get((1, 10)).unwrap()[0].item, 1);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put((1, 10), recs(1));
        c.put((2, 10), recs(2));
        assert!(c.get((1, 10)).is_some()); // 1 is now MRU; 2 is LRU.
        c.put((3, 10), recs(3));
        assert!(c.contains((1, 10)));
        assert!(!c.contains((2, 10)), "LRU entry survived eviction");
        assert!(c.contains((3, 10)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn same_user_different_k_are_distinct_entries() {
        let mut c = LruCache::new(4);
        c.put((7, 5), recs(5));
        c.put((7, 10), recs(10));
        assert_eq!(c.get((7, 5)).unwrap()[0].item, 5);
        assert_eq!(c.get((7, 10)).unwrap()[0].item, 10);
    }

    #[test]
    fn replacing_a_key_updates_value_in_place() {
        let mut c = LruCache::new(2);
        c.put((1, 10), recs(1));
        c.put((1, 10), recs(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((1, 10)).unwrap()[0].item, 9);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put((1, 10), recs(1));
        assert!(c.get((1, 10)).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn clear_preserves_counters() {
        let mut c = LruCache::new(2);
        c.put((1, 10), recs(1));
        let _ = c.get((1, 10));
        let _ = c.get((2, 10));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        c.put((1, 10), recs(4));
        assert_eq!(c.get((1, 10)).unwrap()[0].item, 4);
    }

    #[test]
    fn remove_user_drops_all_cutoffs_and_reuses_slots() {
        let mut c = LruCache::new(4);
        c.put((1, 5), recs(1));
        c.put((1, 10), recs(2));
        c.put((2, 5), recs(3));
        assert_eq!(c.remove_user(1), 2);
        assert!(!c.contains((1, 5)));
        assert!(!c.contains((1, 10)));
        assert!(c.contains((2, 5)), "other user's entry was invalidated");
        assert_eq!(c.len(), 1);
        // Freed slots are reusable and the list stays consistent.
        c.put((3, 5), recs(4));
        c.put((4, 5), recs(5));
        c.put((5, 5), recs(6));
        assert_eq!(c.len(), 4);
        assert_eq!(c.get((2, 5)).unwrap()[0].item, 3);
        assert_eq!(c.remove_user(9), 0);
    }

    #[test]
    fn heavy_churn_with_removal_keeps_map_and_list_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.put((i % 13, (i % 3) as usize), recs(i));
            let _ = c.get((i % 7, (i % 3) as usize));
            if i % 11 == 0 {
                c.remove_user(i % 13);
            }
            assert!(c.len() <= 8);
        }
    }

    #[test]
    fn heavy_churn_keeps_map_and_list_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.put((i % 13, (i % 3) as usize), recs(i));
            let _ = c.get((i % 7, (i % 3) as usize));
            assert!(c.len() <= 8);
        }
    }
}
