//! Minimal JSON value type, writer, and parser.
//!
//! The workspace cannot depend on `serde`/`serde_json` (offline build), so
//! report serialization and the JSONL telemetry sink go through this module.
//! Numbers are `f64` — every value the harness emits (counts, seconds,
//! metrics) fits losslessly below 2^53.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Multi-line rendering with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_string(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }

    /// Parses one JSON document; trailing whitespace is permitted.
    ///
    /// Hostile inputs are rejected rather than absorbed: trailing content,
    /// lone UTF-16 surrogate escapes, and nesting deeper than
    /// `MAX_PARSE_DEPTH` (which would otherwise overflow the parser's
    /// recursion) are all errors.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; null is the conventional fallback.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Maximum array/object nesting depth the parser accepts. The parser is
/// recursive, so unbounded nesting would let a tiny input (`[[[[…`) overflow
/// the stack; 256 is far beyond anything the telemetry sink emits.
pub const MAX_PARSE_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.descend()?;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'{') => {
                self.descend()?;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            Err(format!("nesting deeper than {MAX_PARSE_DEPTH} at byte {}", self.pos))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits starting at `pos` (just past the `\u`).
    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    /// Decodes a `\uXXXX` escape, consuming a second `\uXXXX` when the first
    /// is a UTF-16 high surrogate. Lone or out-of-order surrogates are
    /// errors: pushing U+FFFD silently would make the writer/parser pair
    /// non-roundtripping.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let at = self.pos;
        let code = self.hex4()?;
        match code {
            0xD800..=0xDBFF => {
                if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                    return Err(format!("lone high surrogate \\u{code:04x} at byte {at}"));
                }
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&low) {
                    return Err(format!("invalid low surrogate \\u{low:04x} at byte {at}"));
                }
                let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                char::from_u32(scalar).ok_or_else(|| format!("bad surrogate pair at byte {at}"))
            }
            0xDC00..=0xDFFF => Err(format!("lone low surrogate \\u{code:04x} at byte {at}")),
            _ => char::from_u32(code).ok_or_else(|| format!("bad \\u escape at byte {at}")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Conversion into a [`Json`] value; the offline stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    /// Converts `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
num_to_json!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```ignore
/// impl_to_json!(Point { model, dataset, train_seconds });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("a \"quoted\"\nline".into())),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Null])),
            ("ok", Json::Bool(true)),
            ("nested", Json::obj(vec![("k", Json::Num(-3.25e-4))])),
        ]);
        for text in [v.render(), v.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn struct_macro_and_parser_agree() {
        struct P {
            name: String,
            value: f64,
            count: usize,
        }
        impl_to_json!(P { name, value, count });
        let p = P { name: "x".into(), value: 1.5, count: 3 };
        let parsed = Json::parse(&p.to_json().render()).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(parsed.get("value").unwrap().as_f64(), Some(1.5));
        assert_eq!(parsed.get("count").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn unicode_escapes_decode_surrogate_pairs() {
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        assert_eq!(Json::parse("\"\\u00E9\"").unwrap(), Json::Str("é".into()));
        // Astral plane via a UTF-16 surrogate pair.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        // Lone, reversed, or truncated surrogates are rejected.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dx""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
        assert!(Json::parse(r#""\u12""#).is_err());
    }

    #[test]
    fn parse_rejects_hostile_nesting() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let n = MAX_PARSE_DEPTH + 1;
        let too_deep = format!("{}1{}", "[".repeat(n), "]".repeat(n));
        assert!(Json::parse(&too_deep).is_err());
        // A bomb that never closes must not overflow the stack either.
        assert!(Json::parse(&"[".repeat(100_000)).is_err());
    }
}
