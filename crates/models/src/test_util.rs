//! Test support: tiny datasets and smoke-level quality checks shared by the
//! per-model unit tests (a full evaluation stack lives in `imcat-eval`).

use imcat_data::{generate, SplitDataset, SynthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::RecModel;

/// A deterministic tiny split for unit tests.
pub fn tiny_split(seed: u64) -> SplitDataset {
    let data = generate(&SynthConfig::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    data.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

/// A mid-size split (~3x tiny) for mechanisms that degenerate on very small
/// graphs (graph-contrastive SSL needs enough nodes for in-batch negatives
/// to be informative).
pub fn small_split(seed: u64) -> SplitDataset {
    let data = generate(&SynthConfig::tiny().scaled(3.0), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    data.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

/// Recall@n over all test users, masking training items — a minimal local
/// reimplementation used only to smoke-test models.
pub fn quick_recall(model: &dyn RecModel, data: &SplitDataset, n: usize) -> f64 {
    let users = data.test_users();
    let scores = model.score_users(&users);
    let mut total = 0.0;
    for (row, &u) in users.iter().enumerate() {
        let mut s: Vec<(usize, f32)> = scores
            .row(row)
            .iter()
            .copied()
            .enumerate()
            .filter(|&(j, _)| !data.train_items(u as usize).contains(&(j as u32)))
            .collect();
        s.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<usize> = s.iter().take(n).map(|&(j, _)| j).collect();
        let test = &data.test[u as usize];
        let hits = test.iter().filter(|&&t| top.contains(&(t as usize))).count();
        total += hits as f64 / test.len() as f64;
    }
    total / users.len() as f64
}

/// Asserts that `epochs` of training raise Recall@20 above the untrained
/// starting point (and above near-random levels).
pub fn training_improves_recall(mut model: impl RecModel, data: &SplitDataset, epochs: usize) {
    let before = quick_recall(&model, data, 20);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..epochs {
        model.train_epoch(&mut rng);
    }
    let after = quick_recall(&model, data, 20);
    assert!(
        after > before + 0.02,
        "{}: training did not improve recall ({before:.4} -> {after:.4})",
        model.name()
    );
}
