//! CFA baseline (Zuo et al. 2016): a sparse autoencoder over tag-based user
//! profiles whose latent code drives collaborative filtering.
//!
//! The defining mechanism preserved here: user representations come from an
//! autoencoder compressing the tag profile (reconstruction objective), and
//! recommendation is scored in the latent space against learned item
//! embeddings with a ranking loss.

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{Tape, Tensor};
use rand::rngs::StdRng;

use crate::baselines::profiles::{select_rows, user_tag_profiles};
use crate::common::{bpr_loss, EmbeddingCore, EpochStats, Linear, RecModel, TrainConfig};

/// Tag-profile autoencoder CF.
pub struct Cfa {
    core: EmbeddingCore,
    cfg: TrainConfig,
    sampler: BprSampler,
    profiles: Tensor,
    encoder: Linear,
    decoder: Linear,
    /// Weight of the reconstruction loss.
    pub recon_weight: f32,
}

impl Cfa {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let mut core = EmbeddingCore::new(data.n_users(), data.n_items(), &cfg, rng);
        let n_tags = data.n_tags();
        let encoder = Linear::new(&mut core.store, "cfa.enc", n_tags, cfg.dim, Some(0.1), rng);
        let decoder = Linear::new(&mut core.store, "cfa.dec", cfg.dim, n_tags, None, rng);
        core.rebuild_optimizer(&cfg);
        let sampler = BprSampler::for_user_items(data);
        let profiles = user_tag_profiles(data);
        Self { core, cfg, sampler, profiles, encoder, decoder, recon_weight: 0.5 }
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let p = tape.constant(select_rows(&self.profiles, &batch.anchors));
        let latent = self.encoder.forward(&mut tape, &self.core.store, p);
        // Ranking in latent space.
        let vp = tape.gather(&self.core.store, self.core.item_emb, &batch.positives);
        let vn = tape.gather(&self.core.store, self.core.item_emb, &batch.negatives);
        let sp = tape.rowwise_dot(latent, vp);
        let sn = tape.rowwise_dot(latent, vn);
        let rank = bpr_loss(&mut tape, sp, sn);
        // Autoencoder reconstruction.
        let recon = self.decoder.forward(&mut tape, &self.core.store, latent);
        let diff = tape.sub(recon, p);
        let sq = tape.mul(diff, diff);
        let mse = tape.mean_all(sq);
        let mse_w = tape.scale(mse, self.recon_weight);
        let loss = tape.add(rank, mse_w);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.core.store);
        self.core.adam.step(&mut self.core.store);
        value
    }
}

impl RecModel for Cfa {
    fn name(&self) -> String {
        "CFA".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        let latent = self.encoder.forward_tensor(&self.core.store, &self.profiles);
        Some((latent, self.core.store.value(self.core.item_emb).clone()))
    }

    fn num_params(&self) -> usize {
        self.core.store.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn loss_decreases() {
        let data = tiny_split(51);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Cfa::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..20 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(52);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Cfa::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 40);
    }
}
