//! Property tests for the error-bounded int8 score path.
//!
//! The contract under test: [`IvfIndex::probe`] on a quantized index may
//! certify its top-K from int8 scores and skip the exact re-rank, but the
//! final ranked answer — selected through the evaluator's own
//! `top_n_masked_with` — must be bit-identical to what the forced-re-rank
//! path ([`IvfIndex::probe_rerank`]) returns: same ids, same exact f32
//! score bits, same duplicate-score tie order. Arbitrary embeddings, masks,
//! and cutoffs; adversarial near-tie and exact-duplicate-row cases
//! included.

use imcat_ann::{AnnConfig, IvfIndex, ProbeScratch};
use imcat_eval::{top_n_masked_with, TopKScratch};
use imcat_tensor::Tensor;
use proptest::prelude::*;

/// Ranks a probe result through the evaluator's selection path, resolving
/// compact candidate indices back to `(item id, score bits)`.
fn ranked(scratch: &ProbeScratch, k: usize, top: &mut TopKScratch) -> Vec<(u32, u32)> {
    top_n_masked_with(scratch.scores(), scratch.mask(), k, top)
        .iter()
        .map(|&ci| (scratch.candidates()[ci as usize], scratch.scores()[ci as usize].to_bits()))
        .collect()
}

/// Builds a quantized index over `items` and asserts that probe-with-skip
/// and probe-with-re-rank agree bit-for-bit on the final top-`k` for
/// `query` under `mask`, at every `nprobe`. Returns whether any probe
/// certified a skip, so callers can assert coverage.
fn assert_skip_parity(items: &Tensor, query: &[f32], mask: &[u32], k: usize, seed: u64) -> bool {
    let cfg = AnnConfig {
        nlist: 1 + (seed % 5) as usize,
        nprobe: 0,
        quantized: true,
        ..AnnConfig::default()
    };
    let idx = IvfIndex::build(items, &cfg, seed);
    let mut fast = ProbeScratch::default();
    let mut slow = ProbeScratch::default();
    let mut top = TopKScratch::default();
    let mut any_skip = false;
    for nprobe in 1..=idx.nlist() {
        idx.probe(query, items, mask, k, nprobe, &mut fast);
        idx.probe_rerank(query, items, mask, k, nprobe, &mut slow);
        assert!(!slow.certified_skip(), "probe_rerank must never certify");
        any_skip |= fast.certified_skip();
        let got = ranked(&fast, k, &mut top);
        let want = ranked(&slow, k, &mut top);
        assert_eq!(
            got,
            want,
            "top-{k} diverged (nprobe {nprobe}, certified {})",
            fast.certified_skip()
        );
    }
    any_skip
}

fn mixed_items(gen: &mut Gen, n: usize, d: usize) -> Tensor {
    Tensor::from_vec(
        n,
        d,
        (0..n * d)
            .map(|_| {
                let mag = 10f64.powi(gen.below(4) as i32 - 2);
                ((gen.unit_f64() * 2.0 - 1.0) * mag) as f32
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Arbitrary embeddings, masks, and cutoffs: certified skip decisions
    /// never change the exact top-K.
    #[test]
    fn certified_skip_never_changes_topk(seed in 0u64..1_000_000) {
        let mut gen = Gen::new(seed);
        let n = 4 + gen.below(60) as usize;
        let d = 1 + gen.below(9) as usize;
        let items = mixed_items(&mut gen, n, d);
        let query: Vec<f32> =
            (0..d).map(|_| (gen.unit_f64() * 2.0 - 1.0) as f32).collect();
        let mut mask: Vec<u32> = (0..n as u32).filter(|_| gen.below(5) == 0).collect();
        mask.sort_unstable();
        let k = 1 + gen.below(12) as usize;
        assert_skip_parity(&items, &query, &mask, k, seed);
    }

    /// Duplicate rows share exact scores, so any top-K that straddles the
    /// duplicates has a genuine tie — certification must refuse to decide
    /// it, and the fallback must preserve the canonical (id-ascending) tie
    /// order. Also plants near-ties one quantization step apart.
    #[test]
    fn duplicate_rows_keep_tie_order(seed in 0u64..1_000_000) {
        let mut gen = Gen::new(seed);
        let n = 8 + gen.below(24) as usize;
        let d = 1 + gen.below(6) as usize;
        let mut items = mixed_items(&mut gen, n, d);
        // Duplicate a handful of rows verbatim.
        for _ in 0..3 {
            let src = gen.below(n as u64) as usize;
            let dst = gen.below(n as u64) as usize;
            let row: Vec<f32> = items.row(src).to_vec();
            items.row_mut(dst).copy_from_slice(&row);
        }
        let query: Vec<f32> =
            (0..d).map(|_| (gen.unit_f64() * 2.0 - 1.0) as f32).collect();
        let k = 2 + gen.below(8) as usize;
        assert_skip_parity(&items, &query, &[], k, seed);
    }

    /// Well-separated same-direction items (descending magnitudes) must
    /// certify at least one skip across the nprobe sweep when probed with
    /// the aligned query — the bound is tight enough to be useful, not just
    /// safe.
    #[test]
    fn separated_items_do_certify(seed in 0u64..1_000_000) {
        let mut gen = Gen::new(seed);
        let n = 12 + gen.below(20) as usize;
        let d = 2 + gen.below(6) as usize;
        let dir: Vec<f32> =
            (0..d).map(|_| (gen.unit_f64() + 0.1) as f32).collect();
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            // Geometric separation: successive scores differ by 2x, far
            // beyond any int8 quantization error.
            let m = 2f32.powi(-(i as i32));
            data.extend(dir.iter().map(|&x| x * m));
        }
        let items = Tensor::from_vec(n, d, data);
        let any_skip = assert_skip_parity(&items, &dir, &[], 3, seed);
        prop_assert!(any_skip, "no probe certified on well-separated items");
    }
}
