//! Sharded-merge exactness: a [`ShardedEngine`] must be **bit-identical**
//! to one unsharded [`Engine`] — same items, same order, same score bits —
//! at every shard count and every `IMCAT_THREADS` setting, and it must
//! reject malformed requests with the same typed errors instead of ever
//! panicking.

use std::sync::{Mutex, OnceLock};

use imcat_ckpt::Artifact;
use imcat_data::{generate, SynthConfig};
use imcat_models::{Bprmf, RecModel, TrainConfig};
use imcat_net::ShardedEngine;
use imcat_serve::{AnnConfig, Engine, Recommendation, ServeConfig, ServeError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pool is process-global, so tests that reconfigure it must not
/// overlap.
fn pool_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    imcat_par::set_threads(threads);
    let out = f();
    imcat_par::set_threads(imcat_par::default_threads());
    out
}

/// One trained artifact shared by every test (60 users x 90 items).
fn artifact() -> &'static Artifact {
    static ART: OnceLock<Artifact> = OnceLock::new();
    ART.get_or_init(|| {
        let synth = generate(&SynthConfig::tiny(), 31);
        let mut rng = StdRng::seed_from_u64(31 ^ 0x5eed);
        let data = synth.dataset.split((0.7, 0.1, 0.2), &mut rng);
        let mut rng = StdRng::seed_from_u64(17);
        let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        for _ in 0..3 {
            model.train_epoch(&mut rng);
        }
        model.export_artifact(&data).expect("bprmf exports an artifact")
    })
}

fn assert_bit_identical(got: &[Recommendation], want: &[Recommendation], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length diverged");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.item, w.item, "{ctx}: item diverged");
        assert_eq!(g.score.to_bits(), w.score.to_bits(), "{ctx}: score bits diverged");
    }
}

/// The acceptance gate: every user, several cutoffs (including one past the
/// catalog size), 1/2/4 shards x 1/4 threads, all against one unsharded
/// reference — ties and score bits included.
#[test]
fn sharded_merge_bit_identical_at_1_2_4_shards_and_1_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let art = artifact();
    let cfg = ServeConfig::default();
    let n_users = art.n_users() as u32;
    let ks = [1usize, 7, art.n_items() + 5];

    let mut reference = Engine::new(art.clone(), cfg.clone()).unwrap();
    let mut expected = Vec::new();
    for u in 0..n_users {
        for &k in &ks {
            expected.push(reference.recommend(u, k).unwrap());
        }
    }

    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let got = with_threads(threads, || {
                let mut sharded = ShardedEngine::new(art, &cfg, shards).unwrap();
                let mut out = Vec::new();
                for u in 0..n_users {
                    for &k in &ks {
                        out.push(sharded.recommend(u, k).unwrap());
                    }
                }
                out
            });
            for (g, w) in got.iter().zip(&expected) {
                assert_bit_identical(g, w, &format!("shards={shards} threads={threads}"));
            }
        }
    }
}

/// With per-shard IVF lists probed exhaustively (`nprobe == nlist`), the
/// sharded ANN path must still reproduce the unsharded *brute-force*
/// answer bit-for-bit: the probe is exact, the merge is exact.
#[test]
fn sharded_exhaustive_ann_probe_matches_unsharded_brute_force() {
    let _guard = pool_lock().lock().unwrap();
    let art = artifact();
    let brute = ServeConfig::default();
    let ann = ServeConfig {
        ann: Some(AnnConfig { nlist: 4, nprobe: 4, quantized: false, ..AnnConfig::default() }),
        ..Default::default()
    };
    let mut reference = Engine::new(art.clone(), brute).unwrap();
    for shards in [2usize, 4] {
        let mut sharded = ShardedEngine::new(art, &ann, shards).unwrap();
        for u in 0..art.n_users() as u32 {
            let got = sharded.recommend(u, 10).unwrap();
            let want = reference.recommend(u, 10).unwrap();
            assert_bit_identical(&got, &want, &format!("ann shards={shards} user={u}"));
        }
    }
}

/// The graph backend under the same gate: per-shard HNSW graphs probed at
/// exhaustive width (`ef_search >= n`) reproduce the unsharded brute-force
/// answer bit-for-bit at every shard count and thread count, and the
/// front-end surfaces one "hnsw" descriptor per shard.
#[test]
fn sharded_exhaustive_hnsw_probe_matches_unsharded_brute_force() {
    let _guard = pool_lock().lock().unwrap();
    let art = artifact();
    let ann = ServeConfig {
        ann: Some(AnnConfig {
            kind: imcat_serve::AnnKind::Hnsw,
            ef_search: 4096,
            ..AnnConfig::default()
        }),
        ..Default::default()
    };
    let mut reference = Engine::new(art.clone(), ServeConfig::default()).unwrap();
    for shards in [2usize, 4] {
        for threads in [1usize, 4] {
            with_threads(threads, || {
                let mut sharded = ShardedEngine::new(art, &ann, shards).unwrap();
                for d in sharded.ann_descriptors() {
                    assert_eq!(d.expect("descriptor per shard").kind, "hnsw");
                }
                for u in 0..art.n_users() as u32 {
                    let got = sharded.recommend(u, 10).unwrap();
                    let want = reference.recommend(u, 10).unwrap();
                    assert_bit_identical(
                        &got,
                        &want,
                        &format!("hnsw shards={shards} threads={threads} user={u}"),
                    );
                }
            });
        }
    }
}

/// Malformed requests are typed rejections on the sharded path too, and a
/// poisoned tick leaves the valid slots untouched.
#[test]
fn sharded_rejects_malformed_requests_without_panicking() {
    let _guard = pool_lock().lock().unwrap();
    let art = artifact();
    let cfg = ServeConfig::default();
    let n = art.n_users() as u32;
    let mut sharded = ShardedEngine::new(art, &cfg, 3).unwrap();
    assert_eq!(sharded.recommend(n, 5), Err(ServeError::UserOutOfRange { user: n, n_users: n }));
    assert_eq!(
        sharded.recommend(u32::MAX, 5),
        Err(ServeError::UserOutOfRange { user: u32::MAX, n_users: n })
    );
    assert_eq!(sharded.recommend(0, 0), Err(ServeError::ZeroK));

    let tick = sharded.recommend_batch(&[(0, 5), (n, 5), (1, 0), (2, 5)]);
    assert_eq!(tick[1], Err(ServeError::UserOutOfRange { user: n, n_users: n }));
    assert_eq!(tick[2], Err(ServeError::ZeroK));
    let mut reference = Engine::new(art.clone(), cfg).unwrap();
    assert_bit_identical(tick[0].as_ref().unwrap(), &reference.recommend(0, 5).unwrap(), "slot 0");
    assert_bit_identical(tick[3].as_ref().unwrap(), &reference.recommend(2, 5).unwrap(), "slot 3");
}

/// Shard counts outside `[1, n_items]` are input errors, not panics.
#[test]
fn invalid_shard_counts_are_errors() {
    let art = artifact();
    let cfg = ServeConfig::default();
    assert!(ShardedEngine::new(art, &cfg, 0).is_err());
    assert!(ShardedEngine::new(art, &cfg, art.n_items() + 1).is_err());
    // One shard per item is legal, if absurd.
    assert!(ShardedEngine::new(art, &cfg, art.n_items()).is_ok());
}

proptest! {
    /// Arbitrary `(user, k)` mixes — stale ids past the user range and
    /// zero cutoffs included — never panic, and every slot (answers *and*
    /// rejections) matches the unsharded engine exactly.
    #[test]
    fn batched_requests_never_panic_and_match_unsharded(
        requests in proptest::collection::vec((0u32..150, 0usize..40), 0..48),
        shards in 1usize..5,
    ) {
        let _guard = pool_lock().lock().unwrap();
        let art = artifact();
        let cfg = ServeConfig::default();
        let mut sharded = ShardedEngine::new(art, &cfg, shards).unwrap();
        let mut single = Engine::new(art.clone(), cfg).unwrap();
        let tick = sharded.recommend_batch(&requests);
        prop_assert_eq!(tick.len(), requests.len());
        for (out, &(u, k)) in tick.iter().zip(&requests) {
            match (out, single.recommend(u, k)) {
                (Ok(got), Ok(want)) => {
                    prop_assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        prop_assert_eq!(g.item, w.item);
                        prop_assert_eq!(g.score.to_bits(), w.score.to_bits());
                    }
                }
                (Err(got), Err(want)) => prop_assert_eq!(*got, want),
                _ => prop_assert!(false, "sharded and unsharded disagree on request validity"),
            }
        }
    }
}
