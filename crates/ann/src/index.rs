//! The mutable-index trait behind which every ANN backend serves.
//!
//! `imcat-serve` used to talk to [`IvfIndex`] concretely, with a hand-rolled
//! brute-force branch next to it. This module extracts the surface both
//! share — probe, streamed insert, section persistence, staleness check —
//! into [`AnnIndex`], selected by [`AnnConfig::kind`]: the engine holds a
//! `Box<dyn AnnIndex>` and neither knows nor cares whether it is IVF-Flat,
//! the trivial [`BruteIndex`] fallback, or the graph-based
//! [`crate::hnsw::HnswIndex`].
//! Construction and decode stay on [`AnnConfig`] ([`AnnConfig::build_index`]
//! / [`AnnConfig::load_index`]) because they pick the concrete type.
//!
//! Every implementation keeps the workspace contracts: exact f32 scores in
//! the probe output (approximation may only cost recall), bit-determinism at
//! any `IMCAT_THREADS`, and dense append-only ids for [`AnnIndex::insert`].

use std::io;

use imcat_ckpt::{Checkpoint, Decoder, Encoder};
use imcat_tensor::Tensor;

use crate::ivf::{AnnConfig, IvfIndex, ProbeScratch};

/// Section holding the [`BruteIndex`] identity (so a brute "index" round-
/// trips through the same container machinery as a real one).
pub const SEC_ANN_BRUTE: &str = "ann.brute";

/// Format version inside [`SEC_ANN_BRUTE`].
const BRUTE_VERSION: u32 = 1;

/// Which concrete index an [`AnnConfig`] builds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AnnKind {
    /// IVF-Flat with exact re-rank ([`IvfIndex`]) — the default.
    #[default]
    Ivf,
    /// Exhaustive scan ([`BruteIndex`]): every item is a candidate, every
    /// score exact. The reference the approximate backends are verified
    /// against, and the fallback for catalogs too small to partition.
    Brute,
    /// Hierarchical navigable small-world graph
    /// ([`crate::hnsw::HnswIndex`]): greedy multi-layer graph descent with a
    /// beam search at the base layer, then the same exact f32 re-rank as the
    /// other backends. Wins the recall/QPS frontier at high recall targets.
    Hnsw,
}

impl AnnKind {
    /// Parses a backend name as used by `IMCAT_ANN_KIND` and bench flags
    /// (`"ivf"`, `"brute"`, `"hnsw"`, case-insensitive). `None` for anything
    /// else.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "ivf" => Some(AnnKind::Ivf),
            "brute" => Some(AnnKind::Brute),
            "hnsw" => Some(AnnKind::Hnsw),
            _ => None,
        }
    }

    /// The lowercase name [`AnnKind::parse`] accepts, for logs and `/stats`.
    pub fn name(&self) -> &'static str {
        match self {
            AnnKind::Ivf => "ivf",
            AnnKind::Brute => "brute",
            AnnKind::Hnsw => "hnsw",
        }
    }
}

/// One frozen-geometry retrieval index over a dense item catalog.
///
/// A probe leaves a compact ascending-id candidate set with **exact** f32
/// scores and a remapped mask in the scratch, exactly like
/// [`IvfIndex::probe`] always has; `insert` appends the next dense id
/// without retraining; `save_sections` serializes into named `ann.*`
/// sections; `matches` is the staleness check deciding whether a persisted
/// index can be reused for a config/catalog/seed triple.
pub trait AnnIndex: Send {
    /// Which backend this is.
    fn kind(&self) -> AnnKind;

    /// Catalog size currently covered by the index.
    fn n_items(&self) -> usize;

    /// Embedding dimension the index was built over.
    fn dim(&self) -> usize;

    /// Probes for the top-`k` candidates of `query`, leaving ascending
    /// candidate ids, exact scores, and the remapped `mask` in `scratch`.
    fn probe(
        &self,
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
        k: usize,
        nprobe: usize,
        scratch: &mut ProbeScratch,
    );

    /// Appends item `id` (which must equal the current catalog size — ids
    /// stay dense) with `embedding`, without retraining.
    fn insert(&mut self, id: u32, embedding: &[f32]) -> io::Result<()>;

    /// Serializes the index into named `ann.*` sections of `ck`.
    fn save_sections(&self, ck: &mut Checkpoint);

    /// True when this index is exactly what a fresh build would produce for
    /// `(cfg, n_items, dim, seed)` — the reuse check on load.
    fn matches(&self, cfg: &AnnConfig, n_items: usize, dim: usize, seed: u64) -> bool;

    /// Downcast to the concrete IVF index, for callers that need IVF-only
    /// surface (forced re-rank probes, build-seed inspection). `None` for
    /// every other backend.
    fn as_ivf(&self) -> Option<&IvfIndex> {
        None
    }
}

impl AnnIndex for IvfIndex {
    fn kind(&self) -> AnnKind {
        AnnKind::Ivf
    }

    fn n_items(&self) -> usize {
        self.n_items()
    }

    fn dim(&self) -> usize {
        self.dim()
    }

    fn probe(
        &self,
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
        k: usize,
        nprobe: usize,
        scratch: &mut ProbeScratch,
    ) {
        IvfIndex::probe(self, query, items, mask, k, nprobe, scratch);
    }

    fn insert(&mut self, id: u32, embedding: &[f32]) -> io::Result<()> {
        IvfIndex::insert(self, id, embedding)
    }

    fn save_sections(&self, ck: &mut Checkpoint) {
        self.add_to_checkpoint(ck);
    }

    fn matches(&self, cfg: &AnnConfig, n_items: usize, dim: usize, seed: u64) -> bool {
        cfg.kind == AnnKind::Ivf && IvfIndex::matches(self, cfg, n_items, dim, seed)
    }

    fn as_ivf(&self) -> Option<&IvfIndex> {
        Some(self)
    }
}

/// The exhaustive-scan "index": no structure at all, every probe scans the
/// whole catalog with exact scores. Trivial by design — it exists so the
/// brute-force fallback is an [`AnnIndex`] implementation instead of a
/// special case inside the engine, and so tests can diff any approximate
/// backend against it through the same trait calls.
#[derive(Clone, Copy, Debug)]
pub struct BruteIndex {
    dim: usize,
    n_items: usize,
    seed: u64,
}

impl BruteIndex {
    /// "Builds" the index: records the catalog shape. An empty catalog is
    /// fine — probes simply return an empty candidate set.
    pub fn build(items: &Tensor, seed: u64) -> Self {
        let (n_items, dim) = items.shape();
        Self { dim, n_items, seed }
    }

    /// Decodes the [`SEC_ANN_BRUTE`] identity section (generation-resolved).
    /// `Ok(None)` when the container carries none.
    pub fn from_checkpoint(ck: &Checkpoint) -> io::Result<Option<Self>> {
        let Some(bytes) = ck.resolve(SEC_ANN_BRUTE) else {
            return Ok(None);
        };
        let mut d = Decoder::new(bytes);
        let version = d.u32()?;
        if version != BRUTE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported brute index version {version}"),
            ));
        }
        let seed = d.u64()?;
        let dim = d.u64()? as usize;
        let n_items = d.u64()? as usize;
        d.finish()?;
        if dim == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "zero-dim brute index"));
        }
        Ok(Some(Self { dim, n_items, seed }))
    }
}

impl AnnIndex for BruteIndex {
    fn kind(&self) -> AnnKind {
        AnnKind::Brute
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn probe(
        &self,
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
        _k: usize,
        _nprobe: usize,
        scratch: &mut ProbeScratch,
    ) {
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        // Brute force is exhaustive over the *live* catalog: items
        // registered after the build are scanned too (the matrix may run
        // ahead of `n_items` during streaming, never behind).
        assert!(
            items.rows() >= self.n_items && items.cols() == self.dim,
            "item matrix {:?} smaller than index ({}, {})",
            items.shape(),
            self.n_items,
            self.dim
        );
        scratch.set_brute(query, items, mask);
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ann.probes", 1);
            imcat_obs::observe("ann.candidates", items.rows() as f64);
        }
    }

    fn insert(&mut self, id: u32, embedding: &[f32]) -> io::Result<()> {
        if embedding.len() != self.dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("insert embedding dim {} != index dim {}", embedding.len(), self.dim),
            ));
        }
        if id as usize != self.n_items {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ids are dense: insert expected id {} got {id}", self.n_items),
            ));
        }
        if embedding.iter().any(|x| !x.is_finite()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "insert embedding contains nonfinite values",
            ));
        }
        self.n_items += 1;
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ann.inserts", 1);
        }
        Ok(())
    }

    fn save_sections(&self, ck: &mut Checkpoint) {
        let mut e = Encoder::new();
        e.put_u32(BRUTE_VERSION);
        e.put_u64(self.seed);
        e.put_u64(self.dim as u64);
        e.put_u64(self.n_items as u64);
        ck.insert(SEC_ANN_BRUTE, e.into_bytes());
    }

    fn matches(&self, cfg: &AnnConfig, n_items: usize, dim: usize, seed: u64) -> bool {
        cfg.kind == AnnKind::Brute
            && self.n_items == n_items
            && self.dim == dim
            && self.seed == seed
    }
}

impl AnnConfig {
    /// Builds the concrete index this configuration selects. Deterministic:
    /// the same `(items, cfg, seed)` produces a bit-identical index at any
    /// `IMCAT_THREADS` setting.
    pub fn build_index(&self, items: &Tensor, seed: u64) -> Box<dyn AnnIndex> {
        match self.kind {
            AnnKind::Ivf => Box::new(IvfIndex::build(items, self, seed)),
            AnnKind::Brute => Box::new(BruteIndex::build(items, seed)),
            AnnKind::Hnsw => Box::new(crate::hnsw::HnswIndex::build(items, self, seed)),
        }
    }

    /// Decodes whichever index sections the container holds for this
    /// configuration's kind (generation-resolved). `Ok(None)` when the
    /// container carries no index of that kind.
    pub fn load_index(&self, ck: &Checkpoint) -> io::Result<Option<Box<dyn AnnIndex>>> {
        match self.kind {
            AnnKind::Ivf => {
                Ok(IvfIndex::from_checkpoint(ck)?.map(|i| Box::new(i) as Box<dyn AnnIndex>))
            }
            AnnKind::Brute => {
                Ok(BruteIndex::from_checkpoint(ck)?.map(|i| Box::new(i) as Box<dyn AnnIndex>))
            }
            AnnKind::Hnsw => Ok(crate::hnsw::HnswIndex::from_checkpoint(ck)?
                .map(|i| Box::new(i) as Box<dyn AnnIndex>)),
        }
    }
}
