//! Design-choice ablations called out in DESIGN.md beyond the paper's
//! Table III:
//!
//! 1. **Clustering strategy** (§IV-A.2): end-to-end Student-t/KL clustering
//!    vs the naive periodic k-means re-clustering.
//! 2. **Relatedness weighting** (Eq. 9): with vs without the `M` weights
//!    (approximated by a single-intent run where `M` is constant 1).
//! 3. **ISA positive budget**: 1 vs 3 sampled set-to-set positives.
//!
//! Usage: `cargo run --release -p imcat-bench --bin ablation_design`

use imcat_bench::{logln, preset_by_key, run_trials, write_json, Env, ExpLog, ModelKind};
use imcat_core::ImcatConfig;

struct Row {
    variant: String,
    dataset: String,
    recall: f64,
    ndcg: f64,
}
imcat_obs::impl_to_json!(Row { variant, dataset, recall, ndcg });

fn main() {
    let env = Env::from_env();
    let variants: Vec<(&str, ImcatConfig)> = vec![
        ("end-to-end clustering", env.imcat_config()),
        ("periodic k-means", env.imcat_config().with_periodic_kmeans()),
        ("isa_max_pos = 3", ImcatConfig { isa_max_pos: 3, ..env.imcat_config() }),
        ("no independence reg", ImcatConfig { independence_weight: 0.0, ..env.imcat_config() }),
        ("tau = 0.2", ImcatConfig { tau: 0.2, ..env.imcat_config() }),
    ];
    let mut log = ExpLog::new("ablation_design");
    let mut rows = Vec::new();
    logln!(log, "Design ablations for L-IMCAT (R@20 / N@20, %)\n");
    for key in ["del", "cite"] {
        let data = env.dataset(&preset_by_key(key).unwrap());
        logln!(log, "== {} ==", data.name);
        for (name, icfg) in &variants {
            let (results, _) = run_trials(ModelKind::LImcat, &data, &env, icfg);
            let recall = imcat_bench::mean_of(&results, |r| r.recall);
            let ndcg = imcat_bench::mean_of(&results, |r| r.ndcg);
            logln!(log, "{name:<24} {:>8.2} {:>8.2}", recall * 100.0, ndcg * 100.0);
            rows.push(Row { variant: name.to_string(), dataset: data.name.clone(), recall, ndcg });
        }
        logln!(log);
    }
    let path = write_json("ablation_design", &rows);
    logln!(log, "wrote {}", path.display());
}
