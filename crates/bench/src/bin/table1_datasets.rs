//! Table I — dataset statistics for the seven (synthetic) presets.
//!
//! Usage: `cargo run --release -p imcat-bench --bin table1_datasets`
//! Environment: `IMCAT_SCALE` scales every preset.

use imcat_bench::{all_preset_keys, logln, preset_by_key, write_json, Env, ExpLog};

struct Row {
    dataset: String,
    users: usize,
    items: usize,
    tags: usize,
    ui: usize,
    ui_density_pct: f64,
    ui_avg_degree: f64,
    it: usize,
    it_density_pct: f64,
    it_avg_degree: f64,
}
imcat_obs::impl_to_json!(Row {
    dataset,
    users,
    items,
    tags,
    ui,
    ui_density_pct,
    ui_avg_degree,
    it,
    it_density_pct,
    it_avg_degree
});

fn main() {
    let env = Env::from_env();
    let mut log = ExpLog::new("table1_datasets");
    logln!(log, "Table I: dataset statistics (synthetic presets, scale {}):\n", env.scale);
    logln!(
        log,
        "{:<14} {:>7} {:>7} {:>6} {:>8} {:>9} {:>8} {:>8} {:>9} {:>8}",
        "dataset",
        "#User",
        "#Item",
        "#Tag",
        "#UI",
        "UI-dens%",
        "UI-deg",
        "#IT",
        "IT-dens%",
        "IT-deg"
    );
    let mut rows = Vec::new();
    for key in all_preset_keys() {
        let preset = preset_by_key(key).unwrap();
        let data = env.dataset(&preset);
        let n_ui = data.train.n_edges()
            + data.val.iter().map(Vec::len).sum::<usize>()
            + data.test.iter().map(Vec::len).sum::<usize>();
        let ui_density = n_ui as f64 / (data.n_users() * data.n_items()) as f64;
        let ui_deg = n_ui as f64 / data.n_users() as f64;
        let row = Row {
            dataset: data.name.clone(),
            users: data.n_users(),
            items: data.n_items(),
            tags: data.n_tags(),
            ui: n_ui,
            ui_density_pct: ui_density * 100.0,
            ui_avg_degree: ui_deg,
            it: data.item_tag.n_edges(),
            it_density_pct: data.item_tag.density() * 100.0,
            it_avg_degree: data.item_tag.avg_row_degree(),
        };
        logln!(
            log,
            "{:<14} {:>7} {:>7} {:>6} {:>8} {:>9.2} {:>8.2} {:>8} {:>9.2} {:>8.2}",
            key,
            row.users,
            row.items,
            row.tags,
            row.ui,
            row.ui_density_pct,
            row.ui_avg_degree,
            row.it,
            row.it_density_pct,
            row.it_avg_degree
        );
        rows.push(row);
    }
    let path = write_json("table1_datasets", &rows);
    logln!(log, "\nwrote {}", path.display());
}
