//! SGL baseline (Wu et al. 2021): self-supervised graph learning for
//! recommendation — LightGCN plus node self-discrimination between two
//! edge-dropout views of the interaction graph.

use std::rc::Rc;

use imcat_data::{BprSampler, SplitDataset};
use imcat_graph::{joint_normalized_adjacency, Bipartite};
use imcat_tensor::{xavier_uniform, Adam, Csr, ParamId, ParamStore, Tape, Tensor};
use rand::rngs::StdRng;

use crate::common::{
    bpr_loss, dedup_ids, info_nce, propagate_mean, propagate_mean_tensor, split_user_item,
    EpochStats, RecModel, TrainConfig,
};

/// Self-supervised graph learning recommender.
pub struct Sgl {
    store: ParamStore,
    adam: Adam,
    node_emb: ParamId,
    adj: Rc<Csr>,
    view1: Rc<Csr>,
    view2: Rc<Csr>,
    train_graph: Bipartite,
    cfg: TrainConfig,
    sampler: BprSampler,
    n_users: usize,
    n_items: usize,
    /// Edge dropout probability for the augmented views.
    pub drop_rate: f32,
    /// Weight of the self-supervised loss. The SGL paper grid-searches
    /// λ ∈ [0.005, 0.5] per dataset; on this crate's small, dense synthetic
    /// graphs the sweep lands at the low end (see EXPERIMENTS.md).
    pub ssl_weight: f32,
    /// InfoNCE temperature.
    pub tau: f32,
}

impl Sgl {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let n_users = data.n_users();
        let n_items = data.n_items();
        let mut store = ParamStore::new();
        let node_emb = store.add("node_emb", xavier_uniform(n_users + n_items, cfg.dim, rng));
        let adam = Adam::new(cfg.adam(), &store);
        let adj = Rc::new(joint_normalized_adjacency(&data.train));
        let mut model = Self {
            store,
            adam,
            node_emb,
            adj: Rc::clone(&adj),
            view1: Rc::clone(&adj),
            view2: adj,
            train_graph: data.train.clone(),
            cfg,
            sampler: BprSampler::for_user_items(data),
            n_users,
            n_items,
            drop_rate: 0.1,
            ssl_weight: 0.005,
            tau: 1.0,
        };
        model.refresh_views(rng);
        model
    }

    /// Rebuilds the two augmented graph views (once per epoch).
    pub fn refresh_views(&mut self, rng: &mut StdRng) {
        let v1 = Bipartite::new(self.train_graph.forward().drop_edges(self.drop_rate, rng));
        let v2 = Bipartite::new(self.train_graph.forward().drop_edges(self.drop_rate, rng));
        self.view1 = Rc::new(joint_normalized_adjacency(&v1));
        self.view2 = Rc::new(joint_normalized_adjacency(&v2));
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let x0 = tape.leaf(&self.store, self.node_emb);
        let nodes = propagate_mean(&mut tape, &self.adj, x0, self.cfg.gnn_layers);
        let pos: Vec<u32> = batch.positives.iter().map(|&v| v + self.n_users as u32).collect();
        let neg: Vec<u32> = batch.negatives.iter().map(|&v| v + self.n_users as u32).collect();
        let u = tape.gather_rows(nodes, &batch.anchors);
        let vp = tape.gather_rows(nodes, &pos);
        let vn = tape.gather_rows(nodes, &neg);
        let sp = tape.rowwise_dot(u, vp);
        let sn = tape.rowwise_dot(u, vn);
        let cf = bpr_loss(&mut tape, sp, sn);
        // SSL: node self-discrimination between the two views, for the batch
        // users and positive items. Duplicates are removed — a duplicated
        // node would appear as its own (unseparable) negative.
        let uniq_users = dedup_ids(&batch.anchors);
        let uniq_items = dedup_ids(&pos);
        let n1 = propagate_mean(&mut tape, &self.view1, x0, self.cfg.gnn_layers);
        let n2 = propagate_mean(&mut tape, &self.view2, x0, self.cfg.gnn_layers);
        let u1 = tape.gather_rows(n1, &uniq_users);
        let u2 = tape.gather_rows(n2, &uniq_users);
        let i1 = tape.gather_rows(n1, &uniq_items);
        let i2 = tape.gather_rows(n2, &uniq_items);
        let ssl_u = info_nce(&mut tape, u1, u2, self.tau, None);
        let ssl_i = info_nce(&mut tape, i1, i2, self.tau, None);
        let ssl = tape.add(ssl_u, ssl_i);
        let ssl = tape.scale(ssl, self.ssl_weight);
        let loss = tape.add(cf, ssl);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.store);
        self.adam.step(&mut self.store);
        value
    }
}

impl RecModel for Sgl {
    fn name(&self) -> String {
        "SGL".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        self.refresh_views(rng);
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        let nodes =
            propagate_mean_tensor(&self.adj, self.store.value(self.node_emb), self.cfg.gnn_layers);
        Some(split_user_item(&nodes, self.n_users, self.n_items))
    }

    fn num_params(&self) -> usize {
        self.store.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{small_split, tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn views_differ_from_base_graph() {
        let data = tiny_split(131);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Sgl::new(&data, TrainConfig::default(), &mut rng);
        assert!(model.view1.nnz() < model.adj.nnz());
        assert!(model.view2.nnz() < model.adj.nnz());
        assert_ne!(model.view1.nnz(), 0);
    }

    #[test]
    fn loss_decreases() {
        let data = tiny_split(132);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sgl::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..15 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        // SSL self-discrimination needs enough distinct nodes per batch to be
        // informative, so this smoke test runs at 3x the tiny scale.
        let data = small_split(133);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Sgl::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 60);
    }
}
