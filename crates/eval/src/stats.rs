//! Statistics for experiment reporting: mean/std summaries and the paired
//! t-test used in the paper's Table II ("statistical significance for
//! p ≤ 0.01 compared to the best baseline, paired t-test").

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Result of a paired t-test.
#[derive(Clone, Copy, Debug)]
pub struct TTest {
    /// The t statistic (positive when `a` beats `b` on average).
    pub t: f64,
    /// Degrees of freedom.
    pub df: usize,
    /// Two-tailed p-value.
    pub p: f64,
}

/// Paired two-tailed t-test between samples `a` and `b` (same length).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> TTest {
    assert_eq!(a.len(), b.len(), "paired t-test needs equal-length samples");
    assert!(a.len() >= 2, "need at least two pairs");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let m = mean(&diffs);
    let s = std_dev(&diffs);
    let n = diffs.len() as f64;
    let df = diffs.len() - 1;
    if s == 0.0 {
        // All differences identical: degenerate but well-defined outcomes.
        let p = if m == 0.0 { 1.0 } else { 0.0 };
        return TTest { t: if m == 0.0 { 0.0 } else { f64::INFINITY * m.signum() }, df, p };
    }
    let t = m / (s / n.sqrt());
    TTest { t, df, p: two_tailed_p(t, df as f64) }
}

/// Two-tailed p-value of a t statistic via the regularized incomplete beta
/// function: `p = I_{df/(df+t²)}(df/2, 1/2)`.
pub fn two_tailed_p(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    incomplete_beta(0.5 * df, 0.5, x).clamp(0.0, 1.0)
}

/// Regularized incomplete beta `I_x(a, b)` (Numerical Recipes continued
/// fraction).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)`.
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138_089_935).abs() < 1e-6);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(0.5) = sqrt(π).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let v1 = incomplete_beta(2.0, 3.0, 0.3);
        let v2 = 1.0 - incomplete_beta(3.0, 2.0, 0.7);
        assert!((v1 - v2).abs() < 1e-10);
        // I_0.5(a,a) = 0.5.
        assert!((incomplete_beta(4.0, 4.0, 0.5) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn t_test_p_values_match_tables() {
        // t = 2.262 at df = 9 is the classic two-tailed 0.05 critical value.
        let p = two_tailed_p(2.262, 9.0);
        assert!((p - 0.05).abs() < 2e-3, "p = {p}");
        // Large |t| → tiny p.
        assert!(two_tailed_p(10.0, 9.0) < 1e-4);
        // t = 0 → p = 1.
        assert!((two_tailed_p(0.0, 9.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paired_test_detects_consistent_improvement() {
        let a = [0.52, 0.55, 0.51, 0.58, 0.54, 0.56];
        let b = [0.48, 0.50, 0.47, 0.52, 0.49, 0.51];
        let r = paired_t_test(&a, &b);
        assert!(r.t > 0.0);
        assert!(r.p < 0.01, "p = {}", r.p);
    }

    #[test]
    fn paired_test_identical_samples() {
        let a = [0.5, 0.6, 0.7];
        let r = paired_t_test(&a, &a);
        assert_eq!(r.t, 0.0);
        assert_eq!(r.p, 1.0);
    }

    #[test]
    fn paired_test_noise_is_insignificant() {
        let a = [0.50, 0.52, 0.48, 0.51, 0.49];
        let b = [0.51, 0.49, 0.50, 0.50, 0.50];
        let r = paired_t_test(&a, &b);
        assert!(r.p > 0.1, "noise flagged significant: p = {}", r.p);
    }
}
