//! NeuMF backbone (He et al. 2017): a GMF branch plus an MLP branch over
//! user/item embeddings, fused into one relevance score.
//!
//! Simplification vs. the original: the two branches share one embedding
//! table per side (the "shared-embedding" NeuMF variant) so the total
//! parameter budget matches the other backbones, as the paper requires for
//! fair comparison (§IV-A.1). The defining mechanism — non-linear feature
//! interaction through an MLP fused with a generalized inner product — is
//! preserved.

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{xavier_uniform, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;

use crate::common::{bpr_loss, Backbone, EmbeddingCore, EpochStats, Mlp, RecModel, TrainConfig};

/// Neural collaborative filtering with GMF + MLP fusion, trained with BPR.
pub struct Neumf {
    core: EmbeddingCore,
    cfg: TrainConfig,
    sampler: BprSampler,
    gmf_w: imcat_tensor::ParamId,
    mlp: Mlp,
    n_items: usize,
}

impl Neumf {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let mut core = EmbeddingCore::new(data.n_users(), data.n_items(), &cfg, rng);
        let d = cfg.dim;
        let gmf_w = core.store.add("gmf_w", xavier_uniform(d, 1, rng));
        let mlp = Mlp::new(&mut core.store, "neumf_mlp", &[2 * d, d, 1], rng);
        core.rebuild_optimizer(&cfg);
        let sampler = BprSampler::for_user_items(data);
        Self { core, cfg, sampler, gmf_w, mlp, n_items: data.n_items() }
    }

    /// Differentiable fused score for already-gathered embedding rows.
    fn fuse(&self, tape: &mut Tape, u: Var, v: Var) -> Var {
        let prod = tape.mul(u, v);
        let w = tape.leaf(&self.core.store, self.gmf_w);
        let gmf = tape.matmul(prod, w);
        let cat = tape.concat_cols(&[u, v]);
        let mlp = self.mlp.forward(tape, &self.core.store, cat);
        tape.add(gmf, mlp)
    }

    fn bpr_step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let u = tape.gather(&self.core.store, self.core.user_emb, &batch.anchors);
        let vp = tape.gather(&self.core.store, self.core.item_emb, &batch.positives);
        let vn = tape.gather(&self.core.store, self.core.item_emb, &batch.negatives);
        let sp = self.fuse(&mut tape, u, vp);
        let sn = self.fuse(&mut tape, u, vn);
        let loss = bpr_loss(&mut tape, sp, sn);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.core.store);
        self.core.adam.step(&mut self.core.store);
        value
    }
}

impl RecModel for Neumf {
    fn name(&self) -> String {
        "NeuMF".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.bpr_step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn score_users(&self, users: &[u32]) -> Tensor {
        let ue = self.core.store.value(self.core.user_emb);
        let ve = self.core.store.value(self.core.item_emb);
        let d = self.core.dim;
        let mut out = Tensor::zeros(users.len(), self.n_items);
        // Batched per user: [n_items, 2d] through the MLP, GMF as a matvec.
        let gmf_w = self.core.store.value(self.gmf_w);
        for (row, &u) in users.iter().enumerate() {
            let urow = ue.row(u as usize);
            let mut cat = Tensor::zeros(self.n_items, 2 * d);
            let mut prod = Tensor::zeros(self.n_items, d);
            for j in 0..self.n_items {
                let vrow = ve.row(j);
                cat.row_mut(j)[..d].copy_from_slice(urow);
                cat.row_mut(j)[d..].copy_from_slice(vrow);
                for (p, (&a, &b)) in prod.row_mut(j).iter_mut().zip(urow.iter().zip(vrow)) {
                    *p = a * b;
                }
            }
            let gmf = prod.matmul(gmf_w);
            let mlp = self.mlp.forward_tensor(&self.core.store, &cat);
            for j in 0..self.n_items {
                out.set(row, j, gmf.get(j, 0) + mlp.get(j, 0));
            }
        }
        out
    }

    fn num_params(&self) -> usize {
        self.core.store.num_weights()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.core.save_state())
    }

    fn load_state(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.core.load_state(bytes)
    }
}

impl Backbone for Neumf {
    fn dim(&self) -> usize {
        self.core.dim
    }

    fn store(&self) -> &ParamStore {
        &self.core.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.core.store
    }

    fn rebuild_optimizer(&mut self) {
        self.core.rebuild_optimizer(&self.cfg);
    }

    fn optimizer(&self) -> &imcat_tensor::Adam {
        &self.core.adam
    }

    fn store_and_optimizer_mut(&mut self) -> (&mut ParamStore, &mut imcat_tensor::Adam) {
        (&mut self.core.store, &mut self.core.adam)
    }

    fn embed_all(&self, tape: &mut Tape) -> (Var, Var) {
        let u = tape.leaf(&self.core.store, self.core.user_emb);
        let v = tape.leaf(&self.core.store, self.core.item_emb);
        (u, v)
    }

    fn score_pairs(
        &self,
        tape: &mut Tape,
        all_users: Var,
        users: &[u32],
        all_items: Var,
        items: &[u32],
    ) -> Var {
        let u = tape.gather_rows(all_users, users);
        let v = tape.gather_rows(all_items, items);
        self.fuse(tape, u, v)
    }

    fn opt_step(&mut self) {
        self.core.adam.step(&mut self.core.store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn loss_decreases() {
        let data = tiny_split(21);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Neumf::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..20 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(22);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Neumf::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 40);
    }

    #[test]
    fn eval_scores_match_tape_scores() {
        let data = tiny_split(23);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Neumf::new(&data, TrainConfig::default(), &mut rng);
        let dense = model.score_users(&[2]);
        let mut tape = Tape::new();
        let (au, ai) = model.embed_all(&mut tape);
        let items: Vec<u32> = (0..data.n_items() as u32).collect();
        let users = vec![2u32; items.len()];
        let s = model.score_pairs(&mut tape, au, &users, ai, &items);
        for j in 0..data.n_items() {
            assert!(
                (dense.get(0, j) - tape.value(s).get(j, 0)).abs() < 1e-4,
                "item {j}: {} vs {}",
                dense.get(0, j),
                tape.value(s).get(j, 0)
            );
        }
    }
}
