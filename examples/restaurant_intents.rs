//! The paper's motivating scenario (Fig. 1): restaurant recommendation where
//! users act on distinct *intents* — taste, service, ambiance — and tags
//! cluster by intent ("yummy", "amazing dessert" ≈ taste; "friendly waiter"
//! ≈ service). IMCAT's self-supervised tag clustering should recover these
//! clusters, and the relatedness matrix `M` should explain which intents
//! drive each restaurant.
//!
//! ```sh
//! cargo run --release --example restaurant_intents
//! ```

use imcat::prelude::*;

/// Named tag vocabulary grouped by ground-truth intent.
const INTENTS: [(&str, &[&str]); 3] = [
    (
        "taste",
        &[
            "delicious",
            "yummy",
            "amazing-dessert",
            "great-coffee",
            "fresh",
            "tasty-soup",
            "crispy",
            "rich-flavor",
        ],
    ),
    (
        "service",
        &[
            "friendly-waiter",
            "feels-like-home",
            "fast-service",
            "attentive",
            "kind-staff",
            "no-wait",
            "helpful",
            "welcoming",
        ],
    ),
    (
        "ambiance",
        &[
            "cozy",
            "romantic",
            "great-view",
            "quiet",
            "live-music",
            "stylish",
            "candle-light",
            "garden-seating",
        ],
    ),
];

fn main() {
    // Generate a dataset with exactly three ground-truth intents so the tag
    // ids map onto the named vocabulary above (24 tags, 8 per intent).
    let cfg = SynthConfig {
        name: "restaurants".into(),
        n_tags: 24,
        k_true: 3,
        tag_noise: 0.05,
        ..SynthConfig::tiny().scaled(3.0)
    };
    let synth = generate(&cfg, 7);
    let truth = &synth.truth;
    let names: Vec<String> = (0..cfg.n_tags)
        .map(|t| {
            let intent = truth.tag_intent[t];
            let (label, words) = INTENTS[intent];
            let nth = truth.tag_intent[..t].iter().filter(|&&i| i == intent).count();
            format!("{}#{}", words[nth % words.len()], label)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(7);
    let split = synth.dataset.split((0.7, 0.1, 0.2), &mut rng);

    // Train B-IMCAT with K = 3 intents (d = 33 is not divisible by 3, so use
    // a dim of 30 via a custom TrainConfig).
    let tcfg = TrainConfig { dim: 30, ..TrainConfig::default() };
    let backbone = Bprmf::new(&split, tcfg, &mut rng);
    let mut model = Imcat::new(
        backbone,
        &split,
        ImcatConfig { k_intents: 3, pretrain_epochs: 25, gamma: 0.5, ..Default::default() },
        &mut rng,
    );
    for _ in 0..150 {
        model.train_epoch(&mut rng);
    }

    // Inspect the learned tag clusters.
    let assignment = model.cluster_assignment().expect("clustering is active");
    println!("learned tag clusters:");
    for k in 0..3 {
        let members: Vec<&str> =
            (0..cfg.n_tags).filter(|&t| assignment[t] == k).map(|t| names[t].as_str()).collect();
        println!("  cluster {k}: {members:?}");
    }

    // Measure cluster purity against the ground-truth intents: for each
    // learned cluster take its majority true intent and count agreements.
    let mut correct = 0usize;
    for k in 0..3 {
        let mut counts = [0usize; 3];
        for t in 0..cfg.n_tags {
            if assignment[t] == k {
                counts[truth.tag_intent[t]] += 1;
            }
        }
        correct += counts.iter().max().unwrap();
    }
    let purity = correct as f64 / cfg.n_tags as f64;
    println!("\ncluster purity vs ground-truth intents: {purity:.2}");

    // Show the intent relatedness of a few restaurants (Eq. 9's M rows).
    let m = model.relatedness().expect("relatedness available");
    println!("\nintent relatedness of the first 5 restaurants (rows of M):");
    for j in 0..5 {
        let row: Vec<String> = m.row(j).iter().map(|v| format!("{v:.2}")).collect();
        let mix: Vec<String> = truth.item_mix[j].iter().map(|v| format!("{v:.2}")).collect();
        println!("  restaurant {j}: M = {row:?}   (true intent mix = {mix:?})");
    }

    // Explain one recommendation: which intent drives it, and which tags
    // ground that intent (the paper's interpretability motivation).
    let user = 0u32;
    let scores = model.score_users(&[user]);
    let top = imcat::eval::top_n_masked(scores.row(0), split.train_items(0), 1);
    if let Some(&item) = top.first() {
        if let Some(e) = model.explain(user, item) {
            println!("\nwhy restaurant {item} for user {user}? (total score {:.3})", e.total);
            for c in &e.contributions {
                let tag_names: Vec<&str> =
                    c.supporting_tags.iter().map(|&t| names[t as usize].as_str()).collect();
                println!(
                    "  intent {} ({}): score {:+.3}, relatedness {:.2}, evidence {:?}",
                    c.intent,
                    INTENTS[c.intent.min(2)].0,
                    c.score,
                    c.item_relatedness,
                    tag_names
                );
            }
        }
    }

    // Final quality check.
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let test = evaluate(&mut score_fn, &split, &EvalSpec::at(20));
    println!("\ntest Recall@20 = {:.4}", test.recall);
}
