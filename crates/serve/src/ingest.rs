//! Streamed mutation events: the serve-time interaction log.
//!
//! Every mutation the engine accepts after its generation base —
//! registering a cold user or item, appending one user→item interaction —
//! is recorded as a [`StreamEvent`] in arrival order. The log is the
//! *canonical* record of the generation's stream: the background rebuild
//! ([`crate::rebuild::rebuild_artifact`]) is a pure function of
//! `(base artifact, log)`, so replaying the log offline is bit-identical to
//! the rebuild the live engine swaps in — the property the streaming tests
//! assert at 1 and 4 threads.

use imcat_tensor::Tensor;

/// One streamed user→item interaction (the user consumed/clicked/rated the
/// item at serve time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interaction {
    /// User id (registered: either trained into the artifact or
    /// [`crate::Engine::register_user`]ed).
    pub user: u32,
    /// Item id (in the live catalog).
    pub item: u32,
}

/// One entry of the generation's mutation log, in arrival order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// A cold user joined; their id is the user count at that point.
    RegisterUser,
    /// A cold item joined the catalog; its id is the item count at that
    /// point.
    RegisterItem,
    /// One interaction was appended (mask update + fold-in evidence).
    Interaction(Interaction),
}

/// Returns `t` with `row` appended (an `O(n·d)` copy — registration is rare
/// relative to requests, and the tensor API is deliberately immutable in
/// shape).
pub(crate) fn append_row(t: &Tensor, row: &[f32]) -> Tensor {
    let (n, d) = t.shape();
    debug_assert_eq!(row.len(), d);
    let mut v = Vec::with_capacity((n + 1) * d);
    v.extend_from_slice(t.as_slice());
    v.extend_from_slice(row);
    Tensor::from_vec(n + 1, d, v)
}

/// Inserts `item` into a sorted, deduplicated mask. Returns whether the
/// mask changed (false when the item was already present).
pub(crate) fn mask_insert(mask: &mut Vec<u32>, item: u32) -> bool {
    match mask.binary_search(&item) {
        Ok(_) => false,
        Err(pos) => {
            mask.insert(pos, item);
            true
        }
    }
}
