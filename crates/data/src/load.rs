//! Loaders for real tag-enhanced datasets.
//!
//! Reads HetRec-style whitespace/tab-separated dumps: one file of
//! `user item [weight]` interactions and one of `item tag` assignments
//! (header lines are skipped automatically). Arbitrary ids are re-indexed to
//! a contiguous range, then the paper's preprocessing is applied (§V-A):
//! iterative 10-core filtering of users and items, and removal of tags
//! assigned to fewer than five items.

use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

use imcat_tensor::Csr;

use crate::dataset::Dataset;

/// Preprocessing thresholds from §V-A of the paper.
#[derive(Clone, Copy, Debug)]
pub struct FilterConfig {
    /// Minimum interactions per user and per item (paper: 10).
    pub min_degree: usize,
    /// Minimum items per tag (paper: 5).
    pub min_tag_items: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self { min_degree: 10, min_tag_items: 5 }
    }
}

/// Raw edge lists before indexing.
#[derive(Clone, Debug, Default)]
pub struct RawData {
    /// `(user, item)` pairs with original ids.
    pub user_item: Vec<(u64, u64)>,
    /// `(item, tag)` pairs with original ids.
    pub item_tag: Vec<(u64, u64)>,
}

/// Parses a pair file; ignores malformed and header lines.
pub fn parse_pairs(reader: impl BufRead) -> std::io::Result<Vec<(u64, u64)>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let mut fields = line.split_whitespace();
        let (Some(a), Some(b)) = (fields.next(), fields.next()) else { continue };
        if let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) {
            out.push((a, b));
        }
    }
    Ok(out)
}

/// Loads `user_item_path` and `item_tag_path`, applies [`FilterConfig`], and
/// returns an indexed dataset.
pub fn load_dataset(
    name: &str,
    user_item_path: impl AsRef<Path>,
    item_tag_path: impl AsRef<Path>,
    filter: FilterConfig,
) -> std::io::Result<Dataset> {
    let ui = parse_pairs(std::io::BufReader::new(std::fs::File::open(user_item_path)?))?;
    let it = parse_pairs(std::io::BufReader::new(std::fs::File::open(item_tag_path)?))?;
    Ok(build_dataset(name, RawData { user_item: ui, item_tag: it }, filter))
}

/// Writes a dataset as two whitespace-separated dump files (`user item` and
/// `item tag` pairs with a header line), the same shape [`load_dataset`]
/// reads. Useful for exporting synthetic datasets to other tooling.
pub fn save_dataset(
    dataset: &crate::dataset::Dataset,
    user_item_path: impl AsRef<Path>,
    item_tag_path: impl AsRef<Path>,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut ui = std::io::BufWriter::new(std::fs::File::create(user_item_path)?);
    writeln!(ui, "userID\titemID")?;
    for (u, i, _) in dataset.user_item.forward().iter() {
        writeln!(ui, "{u}\t{i}")?;
    }
    let mut it = std::io::BufWriter::new(std::fs::File::create(item_tag_path)?);
    writeln!(it, "itemID\ttagID")?;
    for (i, t, _) in dataset.item_tag.forward().iter() {
        writeln!(it, "{i}\t{t}")?;
    }
    Ok(())
}

/// Indexes and filters raw edge lists into a [`Dataset`].
pub fn build_dataset(name: &str, raw: RawData, filter: FilterConfig) -> Dataset {
    let mut ui: Vec<(u64, u64)> = raw.user_item;
    ui.sort_unstable();
    ui.dedup();
    let mut it: Vec<(u64, u64)> = raw.item_tag;
    it.sort_unstable();
    it.dedup();

    // Iterative k-core on the user-item graph.
    loop {
        let mut udeg: HashMap<u64, usize> = HashMap::new();
        let mut ideg: HashMap<u64, usize> = HashMap::new();
        for &(u, i) in &ui {
            *udeg.entry(u).or_default() += 1;
            *ideg.entry(i).or_default() += 1;
        }
        let before = ui.len();
        ui.retain(|&(u, i)| udeg[&u] >= filter.min_degree && ideg[&i] >= filter.min_degree);
        if ui.len() == before {
            break;
        }
    }

    // Keep tags on surviving items with enough coverage.
    let surviving_items: std::collections::HashSet<u64> = ui.iter().map(|&(_, i)| i).collect();
    it.retain(|&(i, _)| surviving_items.contains(&i));
    let mut tag_items: HashMap<u64, usize> = HashMap::new();
    for &(_, t) in &it {
        *tag_items.entry(t).or_default() += 1;
    }
    it.retain(|&(_, t)| tag_items[&t] >= filter.min_tag_items);

    // Contiguous indexing.
    let mut user_ids: Vec<u64> = ui.iter().map(|&(u, _)| u).collect();
    user_ids.sort_unstable();
    user_ids.dedup();
    let mut item_ids: Vec<u64> = surviving_items.iter().copied().collect();
    item_ids.sort_unstable();
    let mut tag_ids: Vec<u64> = it.iter().map(|&(_, t)| t).collect();
    tag_ids.sort_unstable();
    tag_ids.dedup();

    let uidx: HashMap<u64, u32> =
        user_ids.iter().enumerate().map(|(k, &v)| (v, k as u32)).collect();
    let iidx: HashMap<u64, u32> =
        item_ids.iter().enumerate().map(|(k, &v)| (v, k as u32)).collect();
    let tidx: HashMap<u64, u32> = tag_ids.iter().enumerate().map(|(k, &v)| (v, k as u32)).collect();

    let ui_triplets: Vec<(u32, u32, f32)> =
        ui.iter().map(|&(u, i)| (uidx[&u], iidx[&i], 1.0)).collect();
    let it_triplets: Vec<(u32, u32, f32)> =
        it.iter().map(|&(i, t)| (iidx[&i], tidx[&t], 1.0)).collect();

    let user_item = Csr::from_triplets(user_ids.len(), item_ids.len(), &ui_triplets);
    let item_tag = Csr::from_triplets(item_ids.len(), tag_ids.len(), &it_triplets);
    Dataset::new(name, user_item, item_tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_pairs_skips_headers_and_garbage() {
        let input = "userID\titemID\n1 10\n2\t20\nbroken line here\n3 30 999\n";
        let pairs = parse_pairs(Cursor::new(input)).unwrap();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn build_dataset_indexes_contiguously() {
        let raw = RawData {
            user_item: (0..4).flat_map(|u| (0..4).map(move |i| (u * 100, i * 7))).collect(),
            item_tag: (0..4).flat_map(|i| (0..5).map(move |t| (i * 7, t))).collect(),
        };
        let filter = FilterConfig { min_degree: 2, min_tag_items: 2 };
        let d = build_dataset("t", raw, filter);
        assert_eq!(d.n_users(), 4);
        assert_eq!(d.n_items(), 4);
        assert_eq!(d.n_tags(), 5);
        assert_eq!(d.user_item.n_edges(), 16);
    }

    #[test]
    fn kcore_filter_removes_sparse_entities() {
        // User 9 has a single interaction and must be dropped; dropping it
        // leaves item 99 with zero interactions, which must cascade.
        let mut ui: Vec<(u64, u64)> = (0..5).flat_map(|u| (0..5).map(move |i| (u, i))).collect();
        ui.push((9, 99));
        let raw = RawData { user_item: ui, item_tag: (0..5).map(|i| (i, 0)).collect() };
        let filter = FilterConfig { min_degree: 3, min_tag_items: 1 };
        let d = build_dataset("t", raw, filter);
        assert_eq!(d.n_users(), 5);
        assert_eq!(d.n_items(), 5);
    }

    #[test]
    fn rare_tags_removed() {
        let raw = RawData {
            user_item: (0..3).flat_map(|u| (0..3).map(move |i| (u, i))).collect(),
            item_tag: vec![(0, 0), (1, 0), (2, 0), (0, 77)], // tag 77 appears once
        };
        let filter = FilterConfig { min_degree: 2, min_tag_items: 2 };
        let d = build_dataset("t", raw, filter);
        assert_eq!(d.n_tags(), 1);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let raw = RawData {
            user_item: (0..4).flat_map(|u| (0..4).map(move |i| (u, i))).collect(),
            item_tag: (0..4).flat_map(|i| (0..2).map(move |t| (i, t))).collect(),
        };
        let filter = FilterConfig { min_degree: 1, min_tag_items: 1 };
        let d = build_dataset("rt", raw, filter);
        let dir = std::env::temp_dir();
        let ui = dir.join(format!("imcat_ui_{}.tsv", std::process::id()));
        let it = dir.join(format!("imcat_it_{}.tsv", std::process::id()));
        save_dataset(&d, &ui, &it).unwrap();
        let loaded = load_dataset("rt2", &ui, &it, filter).unwrap();
        assert_eq!(loaded.n_users(), d.n_users());
        assert_eq!(loaded.n_items(), d.n_items());
        assert_eq!(loaded.user_item.n_edges(), d.user_item.n_edges());
        assert_eq!(loaded.item_tag.n_edges(), d.item_tag.n_edges());
        std::fs::remove_file(ui).ok();
        std::fs::remove_file(it).ok();
    }

    #[test]
    fn duplicate_edges_collapse() {
        let raw = RawData {
            user_item: vec![(0, 0), (0, 0), (0, 1), (1, 0), (1, 1)],
            item_tag: vec![(0, 0), (0, 0), (1, 0)],
        };
        let filter = FilterConfig { min_degree: 1, min_tag_items: 1 };
        let d = build_dataset("t", raw, filter);
        assert_eq!(d.user_item.n_edges(), 4);
        assert_eq!(d.item_tag.n_edges(), 2);
    }
}
