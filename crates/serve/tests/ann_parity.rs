//! ANN serving contract: with `nprobe == nlist` the IVF path is
//! bit-identical to brute force (tie order included); with partial probes
//! every returned score is still an exact dot product; fallbacks cover cold
//! and fully-masked users; config swaps invalidate the cache exactly like
//! reloads; and a corrupted persisted index can never poison the engine.

use std::sync::{Mutex, OnceLock};

use imcat_ann::ivf::SEC_ANN_LISTS;
use imcat_ann::DEFAULT_BUILD_SEED;
use imcat_ckpt::Checkpoint;
use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_models::{Bprmf, RecModel, TrainConfig};
use imcat_serve::{AnnConfig, AnnKind, Engine, Interaction, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_split(seed: u64) -> SplitDataset {
    let synth = generate(&SynthConfig::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    synth.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

/// The pool is process-global, so tests that reconfigure it must not overlap.
fn pool_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    imcat_par::set_threads(threads);
    let out = f();
    imcat_par::set_threads(imcat_par::default_threads());
    out
}

fn trained_bprmf(data: &SplitDataset) -> Bprmf {
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = Bprmf::new(data, TrainConfig::default(), &mut rng);
    for _ in 0..3 {
        model.train_epoch(&mut rng);
    }
    model
}

fn ann_cfg(nlist: usize, nprobe: usize) -> ServeConfig {
    ServeConfig {
        cache_capacity: 0,
        ann: Some(AnnConfig { nlist, nprobe, quantized: false, ..AnnConfig::default() }),
        ..Default::default()
    }
}

/// Acceptance criterion: probing *every* list must reproduce brute force
/// bit-identically — same items, same order (ties included), same score
/// bits — because the compact candidate arrays then equal the full ones.
#[test]
fn nprobe_equals_nlist_is_bit_identical_to_brute_force() {
    let data = tiny_split(31);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let nlist = 12;
    let mut brute =
        Engine::new(artifact.clone(), ServeConfig { cache_capacity: 0, ..Default::default() })
            .unwrap();
    let mut ivf = Engine::new(artifact, ann_cfg(nlist, nlist)).unwrap();
    for u in 0..data.n_users() as u32 {
        for k in [1, 7, 20] {
            let b = brute.recommend(u, k).unwrap();
            let a = ivf.recommend(u, k).unwrap();
            assert_eq!(a.len(), b.len(), "user {u} k {k}: list lengths differ");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.item, y.item, "user {u} k {k}: item order differs");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "user {u} k {k}: score bits differ"
                );
            }
        }
    }
}

/// With ties injected deliberately, full-probe IVF must preserve brute
/// force's tie order exactly.
#[test]
fn tie_order_survives_full_probe() {
    let data = tiny_split(32);
    let model = trained_bprmf(&data);
    let mut artifact = model.export_artifact(&data).unwrap();
    // Make several items exact duplicates so their scores tie bitwise for
    // every user.
    let dup = artifact.item_emb.row(5).to_vec();
    for j in [9usize, 23, 41] {
        artifact.item_emb.row_mut(j).copy_from_slice(&dup);
    }
    let mut brute =
        Engine::new(artifact.clone(), ServeConfig { cache_capacity: 0, ..Default::default() })
            .unwrap();
    let mut ivf = Engine::new(artifact, ann_cfg(8, 8)).unwrap();
    for u in 0..data.n_users() as u32 {
        assert_eq!(
            ivf.recommend(u, 30).unwrap(),
            brute.recommend(u, 30).unwrap(),
            "user {u}: tie order diverged"
        );
    }
}

/// Partial probes trade recall, never correctness: every returned item's
/// score must still be the exact dot product, the list must be sorted, and
/// recall against brute force should be high on this easy catalog.
#[test]
fn partial_probe_scores_are_exact_and_recall_is_high() {
    let data = tiny_split(33);
    // Train well past the other tests' 3 epochs: recall under partial probes
    // depends on the embeddings actually having cluster structure.
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
    for _ in 0..25 {
        model.train_epoch(&mut rng);
    }
    let artifact = model.export_artifact(&data).unwrap();
    let mut brute =
        Engine::new(artifact.clone(), ServeConfig { cache_capacity: 0, ..Default::default() })
            .unwrap();
    let mut ivf = Engine::new(artifact, ann_cfg(8, 4)).unwrap();
    let k = 10;
    let mut hits = 0usize;
    let mut total = 0usize;
    for u in 0..data.n_users() as u32 {
        let exact = brute.recommend(u, k).unwrap();
        let approx = ivf.recommend(u, k).unwrap();
        let scores = model.score_users(&[u]);
        for w in approx.windows(2) {
            assert!(w[0].score >= w[1].score, "user {u}: ANN list not sorted");
        }
        for r in &approx {
            assert_eq!(
                r.score.to_bits(),
                scores.row(0)[r.item as usize].to_bits(),
                "user {u}: ANN returned a non-exact score"
            );
        }
        let truth: Vec<u32> = exact.iter().map(|r| r.item).collect();
        hits += approx.iter().filter(|r| truth.contains(&r.item)).count();
        total += truth.len();
    }
    // The tiny 60x90 catalog is a worst case for IVF (per-user top-10s
    // scatter across lists that hold ~11 items each); the production-scale
    // recall bar lives in ann_bench / the ann-smoke CI job. Here we only
    // require that half the lists recover well over half the true top-10.
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.6, "recall@10 {recall:.3} unexpectedly low at nprobe=nlist/2");
}

/// Batched requests must stay bit-identical to the single-request path when
/// ANN is active (both go through the same probe-or-fallback computation).
#[test]
fn batch_matches_single_under_ann() {
    let data = tiny_split(34);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let mut batched = Engine::new(
        artifact.clone(),
        ServeConfig {
            ann: Some(AnnConfig { nlist: 10, nprobe: 3, quantized: false, ..AnnConfig::default() }),
            ..Default::default()
        },
    )
    .unwrap();
    let mut single = Engine::new(artifact, ann_cfg(10, 3)).unwrap();
    let n = data.n_users() as u32;
    let requests: Vec<(u32, usize)> =
        (0..40u32).map(|i| (i % n, if i % 3 == 0 { 5 } else { 15 })).collect();
    let tick = batched.recommend_batch(&requests);
    for (out, &(u, k)) in tick.iter().zip(&requests) {
        assert_eq!(
            out.as_ref().unwrap(),
            &single.recommend(u, k).unwrap(),
            "batch ({u}, {k}) diverged"
        );
    }
    assert_eq!(batched.stats().served, requests.len() as u64);
}

/// Regression: a list cached under one retrieval configuration must not
/// survive an ANN config swap — `set_ann` clears the cache like `reload`.
#[test]
fn set_ann_invalidates_cached_lists() {
    let data = tiny_split(35);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let mut engine = Engine::new(artifact, ServeConfig::default()).unwrap();
    let brute_list = engine.recommend(2, 10).unwrap();
    assert!(engine.cached_lists() > 0, "list should be cached");

    // Swap in a deliberately lossy config (probe 1 list of many).
    engine.set_ann(Some(AnnConfig {
        nlist: 16,
        nprobe: 1,
        quantized: false,
        ..AnnConfig::default()
    }));
    assert_eq!(engine.cached_lists(), 0, "set_ann must drop every cached list");
    let ann_list = engine.recommend(2, 10).unwrap();
    // Whatever it returns must be freshly computed under the new config: an
    // uncached engine with the same config agrees exactly.
    let mut fresh = Engine::new(
        engine.artifact().clone(),
        ServeConfig {
            cache_capacity: 0,
            ann: Some(AnnConfig { nlist: 16, nprobe: 1, quantized: false, ..AnnConfig::default() }),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        ann_list,
        fresh.recommend(2, 10).unwrap(),
        "stale cached list served after config swap"
    );

    // Swapping back off restores brute-force answers.
    engine.set_ann(None);
    assert_eq!(engine.cached_lists(), 0);
    assert_eq!(engine.recommend(2, 10).unwrap(), brute_list);
}

/// Cold users (all-zero embedding) and fully-masked users take the brute
/// fallback and still produce correct (deterministic / empty) answers.
#[test]
fn cold_and_fully_masked_users_fall_back() {
    let data = tiny_split(36);
    let model = trained_bprmf(&data);
    let mut artifact = model.export_artifact(&data).unwrap();
    for x in artifact.user_emb.row_mut(0) {
        *x = 0.0;
    }
    let n_items = artifact.n_items() as u32;
    artifact.masks[1] = (0..n_items).collect();
    let mut brute =
        Engine::new(artifact.clone(), ServeConfig { cache_capacity: 0, ..Default::default() })
            .unwrap();
    let mut ivf = Engine::new(artifact, ann_cfg(8, 2)).unwrap();
    // Cold user: identical to brute force (the fallback *is* brute force).
    assert_eq!(ivf.recommend(0, 10).unwrap(), brute.recommend(0, 10).unwrap());
    // Fully-masked user: empty list, no panic.
    assert_eq!(ivf.recommend(1, 10).unwrap(), vec![]);
}

/// `Engine::load` persists the lazily built index into the artifact file
/// (atomically, alongside the artifact sections) and reuses it on the next
/// load; a corrupted index section is rejected and rebuilt without ever
/// poisoning the served answers.
#[test]
fn lazy_persistence_and_corrupt_index_recovery() {
    let data = tiny_split(37);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let dir = std::env::temp_dir().join(format!("imcat-ann-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.artifact");
    artifact.save(&path).unwrap();
    let cfg = ann_cfg(8, 8);

    // First load builds and persists the index.
    let before = Checkpoint::load(&path).unwrap();
    assert!(before.get(SEC_ANN_LISTS).is_none());
    let mut e1 = Engine::load(&path, cfg.clone()).unwrap();
    let after = Checkpoint::load(&path).unwrap();
    assert!(after.get(SEC_ANN_LISTS).is_some(), "index sections not persisted");
    let expected: Vec<_> =
        (0..data.n_users() as u32).map(|u| e1.recommend(u, 10).unwrap()).collect();

    // Second load reuses the persisted index byte-for-byte.
    let bytes_once = std::fs::read(&path).unwrap();
    let mut e2 = Engine::load(&path, cfg.clone()).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), bytes_once, "reload rewrote a fresh index");
    for (u, want) in expected.iter().enumerate() {
        assert_eq!(&e2.recommend(u as u32, 10).unwrap(), want, "persisted index changed answers");
    }

    // Corrupt the index payload semantically (duplicate id): load must
    // reject it, rebuild, and serve the exact same answers.
    let mut ck = Checkpoint::load(&path).unwrap();
    let mut dec = imcat_ckpt::Decoder::new(ck.get(SEC_ANN_LISTS).unwrap());
    let offsets = dec.u32s().unwrap();
    let mut entries = dec.u32s().unwrap();
    entries[1] = entries[0];
    let mut enc = imcat_ckpt::Encoder::new();
    enc.put_u32s(&offsets);
    enc.put_u32s(&entries);
    ck.insert(SEC_ANN_LISTS, enc.into_bytes());
    ck.save(&path).unwrap();
    let mut e3 = Engine::load(&path, cfg).unwrap();
    for (u, want) in expected.iter().enumerate() {
        assert_eq!(&e3.recommend(u as u32, 10).unwrap(), want, "corrupt index poisoned serving");
    }
    std::fs::remove_file(&path).ok();
}

/// Quantized storage may only shrink the candidate pool — the final
/// ordering and scores come from the exact f32 re-rank. At full probe on
/// this catalog the shortlist comfortably covers the true top-K, so the
/// answers must match the non-quantized engine exactly.
#[test]
fn quantized_rerank_returns_exact_scores() {
    let data = tiny_split(38);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let mut exact = Engine::new(artifact.clone(), ann_cfg(8, 8)).unwrap();
    let mut quant = Engine::new(
        artifact,
        ServeConfig {
            cache_capacity: 0,
            ann: Some(AnnConfig { nlist: 8, nprobe: 8, quantized: true, ..AnnConfig::default() }),
            ..Default::default()
        },
    )
    .unwrap();
    let scores_of = |m: &Bprmf, u: u32| m.score_users(&[u]);
    for u in 0..data.n_users() as u32 {
        let q = quant.recommend(u, 10).unwrap();
        let s = scores_of(&model, u);
        for r in &q {
            assert_eq!(
                r.score.to_bits(),
                s.row(0)[r.item as usize].to_bits(),
                "user {u}: quantized path returned a non-exact score"
            );
        }
        assert_eq!(q, exact.recommend(u, 10).unwrap(), "user {u}: quantized top-K diverged");
    }
}

/// The certified int8 skip path: on a catalog engineered so approximate
/// scores are separated far beyond the quantization error bounds, the probe
/// must actually take the skip (proving the bound is usable, not just
/// safe), and both the direct probe result and the full engine answer must
/// stay bit-identical to the forced re-rank / brute-force paths.
#[test]
fn certified_skip_is_taken_and_bit_identical_to_rerank() {
    let data = tiny_split(41);
    let model = trained_bprmf(&data);
    let mut artifact = model.export_artifact(&data).unwrap();
    // Same-direction items with geometrically decaying magnitudes: every
    // user's score gaps dwarf any int8 quantization error, so top-K
    // certification succeeds deterministically.
    let d = artifact.item_emb.cols();
    let dir: Vec<f32> = (0..d).map(|j| 0.3 + 0.1 * (j % 5) as f32).collect();
    for i in 0..artifact.n_items() {
        let m = 1.3f32.powi(-(i as i32));
        for (slot, &x) in artifact.item_emb.row_mut(i).iter_mut().zip(&dir) {
            *slot = x * m;
        }
    }
    for u in 0..artifact.n_users() {
        let m = 0.5 + (u % 7) as f32 * 0.25;
        for (slot, &x) in artifact.user_emb.row_mut(u).iter_mut().zip(&dir) {
            *slot = x * m;
        }
    }
    let mut brute =
        Engine::new(artifact.clone(), ServeConfig { cache_capacity: 0, ..Default::default() })
            .unwrap();
    let mut quant = Engine::new(
        artifact.clone(),
        ServeConfig {
            cache_capacity: 0,
            ann: Some(AnnConfig { nlist: 6, nprobe: 6, quantized: true, ..AnnConfig::default() }),
            ..Default::default()
        },
    )
    .unwrap();
    // Engine answers: quantized (with skips enabled) == brute, bitwise.
    for u in 0..data.n_users() as u32 {
        let q = quant.recommend(u, 5).unwrap();
        let b = brute.recommend(u, 5).unwrap();
        assert_eq!(q.len(), b.len(), "user {u}: lengths differ");
        for (x, y) in q.iter().zip(&b) {
            assert_eq!(x.item, y.item, "user {u}: item order differs");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "user {u}: score bits differ");
        }
    }
    // Direct probe: skips actually fire, and skip == forced re-rank through
    // the evaluator's selection.
    let idx = quant.ann_index().unwrap();
    let mut fast = imcat_serve::ProbeScratch::default();
    let mut slow = imcat_serve::ProbeScratch::default();
    let mut top = imcat_eval::TopKScratch::default();
    let mut skips = 0usize;
    for u in 0..data.n_users() {
        let u_row = artifact.user_emb.row(u);
        let mask = &artifact.masks[u];
        idx.probe(u_row, &artifact.item_emb, mask, 5, 6, &mut fast);
        idx.probe_rerank(u_row, &artifact.item_emb, mask, 5, 6, &mut slow);
        assert!(!slow.certified_skip());
        skips += fast.certified_skip() as usize;
        let rank = |s: &imcat_serve::ProbeScratch, top: &mut imcat_eval::TopKScratch| {
            imcat_eval::top_n_masked_with(s.scores(), s.mask(), 5, top)
                .iter()
                .map(|&ci| (s.candidates()[ci as usize], s.scores()[ci as usize].to_bits()))
                .collect::<Vec<_>>()
        };
        let got = rank(&fast, &mut top);
        let want = rank(&slow, &mut top);
        assert_eq!(got, want, "user {u}: skip path diverged from re-rank");
    }
    assert!(skips > 0, "no probe certified a skip on an engineered-easy catalog");
}

/// ANN serving is thread-count invariant: the whole pipeline (k-means,
/// list build, probe, exact re-rank) is bit-identical at 1 and 4 threads.
#[test]
fn ann_serving_bit_identical_across_thread_counts() {
    let _guard = pool_lock().lock().unwrap();
    let data = tiny_split(39);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let fingerprint = |threads: usize| {
        with_threads(threads, || {
            let mut engine = Engine::new(artifact.clone(), ann_cfg(10, 3)).unwrap();
            let mut fp: Vec<(u32, u32)> = Vec::new();
            for u in 0..data.n_users() as u32 {
                for r in engine.recommend(u, 10).unwrap() {
                    fp.push((r.item, r.score.to_bits()));
                }
            }
            fp
        })
    };
    assert_eq!(fingerprint(1), fingerprint(4), "ANN serving depends on thread count");
}

fn hnsw_cfg(ef_search: usize) -> ServeConfig {
    ServeConfig {
        cache_capacity: 0,
        ann: Some(AnnConfig { kind: AnnKind::Hnsw, ef_search, ..AnnConfig::default() }),
        ..Default::default()
    }
}

/// Acceptance criterion for the graph backend: at `ef_search >= n` the
/// HNSW path must reproduce brute force bit-identically — same items, same
/// order (ties included), same score bits — for every user and cutoff.
#[test]
fn hnsw_exhaustive_ef_is_bit_identical_to_brute_force() {
    let data = tiny_split(51);
    let model = trained_bprmf(&data);
    let mut artifact = model.export_artifact(&data).unwrap();
    // Inject exact duplicates so the comparison covers tie order too.
    let dup = artifact.item_emb.row(5).to_vec();
    for j in [9usize, 23, 41] {
        artifact.item_emb.row_mut(j).copy_from_slice(&dup);
    }
    let mut brute =
        Engine::new(artifact.clone(), ServeConfig { cache_capacity: 0, ..Default::default() })
            .unwrap();
    let mut hnsw = Engine::new(artifact, hnsw_cfg(4096)).unwrap();
    for u in 0..data.n_users() as u32 {
        for k in [1, 7, 30] {
            let b = brute.recommend(u, k).unwrap();
            let a = hnsw.recommend(u, k).unwrap();
            assert_eq!(a.len(), b.len(), "user {u} k {k}: list lengths differ");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.item, y.item, "user {u} k {k}: item order differs");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "user {u} k {k}: score bits differ"
                );
            }
        }
    }
}

/// Lossy graph traversal trades recall, never correctness: every returned
/// score is the exact dot product, lists stay sorted, and recall against
/// brute force is high on this easy catalog.
#[test]
fn hnsw_partial_ef_scores_are_exact_and_recall_is_high() {
    let data = tiny_split(52);
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
    for _ in 0..25 {
        model.train_epoch(&mut rng);
    }
    let artifact = model.export_artifact(&data).unwrap();
    let mut brute =
        Engine::new(artifact.clone(), ServeConfig { cache_capacity: 0, ..Default::default() })
            .unwrap();
    let mut hnsw = Engine::new(artifact, hnsw_cfg(32)).unwrap();
    let k = 10;
    let mut hits = 0usize;
    let mut total = 0usize;
    for u in 0..data.n_users() as u32 {
        let exact = brute.recommend(u, k).unwrap();
        let approx = hnsw.recommend(u, k).unwrap();
        let scores = model.score_users(&[u]);
        for w in approx.windows(2) {
            assert!(w[0].score >= w[1].score, "user {u}: HNSW list not sorted");
        }
        for r in &approx {
            assert_eq!(
                r.score.to_bits(),
                scores.row(0)[r.item as usize].to_bits(),
                "user {u}: HNSW returned a non-exact score"
            );
        }
        let truth: Vec<u32> = exact.iter().map(|r| r.item).collect();
        hits += approx.iter().filter(|r| truth.contains(&r.item)).count();
        total += truth.len();
    }
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.6, "recall@10 {recall:.3} unexpectedly low at ef_search=32");
}

/// Cold users (all-zero embedding) and fully-masked users take the brute
/// fallback on the graph backend too.
#[test]
fn hnsw_cold_and_fully_masked_users_fall_back() {
    let data = tiny_split(53);
    let model = trained_bprmf(&data);
    let mut artifact = model.export_artifact(&data).unwrap();
    for x in artifact.user_emb.row_mut(0) {
        *x = 0.0;
    }
    let n_items = artifact.n_items() as u32;
    artifact.masks[1] = (0..n_items).collect();
    let mut brute =
        Engine::new(artifact.clone(), ServeConfig { cache_capacity: 0, ..Default::default() })
            .unwrap();
    let mut hnsw = Engine::new(artifact, hnsw_cfg(16)).unwrap();
    assert_eq!(hnsw.recommend(0, 10).unwrap(), brute.recommend(0, 10).unwrap());
    assert_eq!(hnsw.recommend(1, 10).unwrap(), vec![]);
}

/// Streaming contract: a cold item folded mid-stream is inserted into the
/// *live* graph (no rebuild), grows the backend's catalog, and at
/// exhaustive width the extended graph still matches brute force bitwise.
#[test]
fn hnsw_cold_items_enter_the_live_graph() {
    let data = tiny_split(54);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let n_before = artifact.n_items();
    let mut engine = Engine::new(artifact, hnsw_cfg(4096)).unwrap();
    let cold = engine.register_item();
    assert_eq!(cold as usize, n_before);
    // The unfolded item is registered but unreachable; probes must not see
    // it yet and requests must keep working.
    assert_eq!(engine.ann_backend().unwrap().n_items(), n_before);
    engine.recommend(0, 10).unwrap();
    // Warm evidence, then fold: the item gets a nonzero row and a live
    // graph insert.
    for u in 0..4u32 {
        engine.ingest(Interaction { user: u, item: cold }).unwrap();
    }
    engine.fold_pending();
    assert_eq!(engine.ann_backend().unwrap().n_items(), n_before + 1, "fold skipped the insert");
    let desc = engine.ann_descriptor().unwrap();
    assert_eq!(desc.kind, "hnsw");
    assert_eq!(desc.n_items, n_before + 1);
    // Post-fold parity: brute force over the grown artifact agrees bitwise.
    let mut brute = Engine::new(
        engine.artifact().clone(),
        ServeConfig { cache_capacity: 0, ..Default::default() },
    )
    .unwrap();
    for u in 0..engine.n_users() as u32 {
        assert_eq!(
            engine.recommend(u, 10).unwrap(),
            brute.recommend(u, 10).unwrap(),
            "user {u}: grown graph diverged from brute force"
        );
    }
}

/// HNSW serving is thread-count invariant end to end (build, traversal,
/// exact re-rank) at a lossy width.
#[test]
fn hnsw_serving_bit_identical_across_thread_counts() {
    let _guard = pool_lock().lock().unwrap();
    let data = tiny_split(55);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let fingerprint = |threads: usize| {
        with_threads(threads, || {
            let mut engine = Engine::new(artifact.clone(), hnsw_cfg(24)).unwrap();
            let mut fp: Vec<(u32, u32)> = Vec::new();
            for u in 0..data.n_users() as u32 {
                for r in engine.recommend(u, 10).unwrap() {
                    fp.push((r.item, r.score.to_bits()));
                }
            }
            fp
        })
    };
    assert_eq!(fingerprint(1), fingerprint(4), "HNSW serving depends on thread count");
}

/// The descriptor reports the active backend and its resolved parameters.
#[test]
fn ann_descriptor_reports_resolved_parameters() {
    let data = tiny_split(56);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let n = artifact.n_items();

    let plain = Engine::new(artifact.clone(), ServeConfig::default()).unwrap();
    assert!(plain.ann_descriptor().is_none(), "no ANN state must mean no descriptor");

    let ivf = Engine::new(artifact.clone(), ann_cfg(8, 3)).unwrap();
    let d = ivf.ann_descriptor().unwrap();
    assert_eq!((d.kind, d.n_items, d.nlist, d.nprobe), ("ivf", n, 8, 3));
    assert_eq!((d.m, d.ef_construction, d.ef_search), (0, 0, 0));

    let hnsw = Engine::new(artifact, hnsw_cfg(0)).unwrap();
    let d = hnsw.ann_descriptor().unwrap();
    let cfg = AnnConfig { kind: AnnKind::Hnsw, ..AnnConfig::default() };
    assert_eq!((d.kind, d.n_items), ("hnsw", n));
    assert_eq!(d.m, cfg.resolved_m(n));
    assert_eq!(d.ef_construction, cfg.resolved_ef_construction(n));
    assert_eq!(d.ef_search, cfg.resolved_ef_search(n));
    assert_eq!((d.nlist, d.nprobe), (0, 0));
}

/// The build itself is deterministic: two engines over the same artifact
/// serve identical lists under lossy configs (no hidden RNG, no
/// time-dependent state). Uses the fixed default build seed.
#[test]
fn engine_index_builds_are_reproducible() {
    let data = tiny_split(40);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();
    let idx_a = Engine::new(artifact.clone(), ann_cfg(12, 2)).unwrap();
    let idx_b = Engine::new(artifact, ann_cfg(12, 2)).unwrap();
    let a = idx_a.ann_index().unwrap();
    let b = idx_b.ann_index().unwrap();
    assert_eq!(a.seed(), DEFAULT_BUILD_SEED);
    let ser = |i: &imcat_serve::IvfIndex| {
        let mut ck = Checkpoint::new();
        i.add_to_checkpoint(&mut ck);
        ck.to_bytes()
    };
    assert_eq!(ser(a), ser(b), "two builds over the same artifact differ");
}
