//! Compressed sparse row matrices.
//!
//! `Csr` is the storage used for interaction graphs (user–item, item–tag),
//! aggregation operators (mean over a neighborhood, Eq. 7/8 of the paper),
//! and LightGCN's normalized adjacency. The autodiff tape multiplies these
//! against dense tensors via [`Csr::spmm`], whose backward pass uses the
//! stored transpose.

use crate::tensor::Tensor;

/// A sparse `rows x cols` matrix in CSR format with `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from COO triplets. Duplicate coordinates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            assert!((r as usize) < rows, "row {r} out of bounds for {rows}");
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; triplets.len()];
        let mut values = vec![0f32; triplets.len()];
        let mut cursor = indptr.clone();
        for &(r, c, v) in triplets {
            assert!((c as usize) < cols, "col {c} out of bounds for {cols}");
            let pos = cursor[r as usize];
            indices[pos] = c;
            values[pos] = v;
            cursor[r as usize] += 1;
        }
        let mut out = Self { rows, cols, indptr, indices, values };
        out.sort_and_dedup();
        out
    }

    /// Builds a binary adjacency CSR from per-row neighbor lists.
    pub fn from_adjacency(rows: usize, cols: usize, neighbors: &[Vec<u32>]) -> Self {
        assert_eq!(neighbors.len(), rows);
        let nnz: usize = neighbors.iter().map(Vec::len).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        indptr.push(0);
        for ns in neighbors {
            for &c in ns {
                assert!((c as usize) < cols, "col {c} out of bounds for {cols}");
                indices.push(c);
            }
            indptr.push(indices.len());
        }
        let values = vec![1.0; indices.len()];
        let mut out = Self { rows, cols, indptr, indices, values };
        out.sort_and_dedup();
        out
    }

    fn sort_and_dedup(&mut self) {
        let mut new_indptr = Vec::with_capacity(self.rows + 1);
        let mut new_indices = Vec::with_capacity(self.indices.len());
        let mut new_values = Vec::with_capacity(self.values.len());
        new_indptr.push(0);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..self.rows {
            scratch.clear();
            for k in self.indptr[r]..self.indptr[r + 1] {
                scratch.push((self.indices[k], self.values[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                new_indices.push(c);
                new_values.push(v);
                i = j;
            }
            new_indptr.push(new_indices.len());
        }
        self.indptr = new_indptr;
        self.indices = new_indices;
        self.values = new_values;
    }

    /// An empty `rows x cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self { rows, cols, indptr: vec![0; rows + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices of row `r` (sorted ascending).
    #[inline]
    pub fn row_indices(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`Csr::row_indices`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f32] {
        &self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Number of entries stored in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Iterates `(row, col, value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_indices(r).iter().zip(self.row_values(r)).map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// True when `(r, c)` is stored.
    pub fn contains(&self, r: u32, c: u32) -> bool {
        self.row_indices(r as usize).binary_search(&c).is_ok()
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cursor = indptr.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for r in 0..self.rows {
            for (k, &c) in self.row_indices(r).iter().enumerate() {
                let v = self.row_values(r)[k];
                let pos = cursor[c as usize];
                indices[pos] = r as u32;
                values[pos] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Returns a copy whose rows each sum to one (rows with no entries stay zero).
    ///
    /// This is the mean-aggregation operator used for Eq. 7/8: multiplying it
    /// against an embedding matrix averages the embeddings of each row's
    /// neighbors.
    pub fn row_normalized(&self) -> Csr {
        let mut out = self.clone();
        for r in 0..self.rows {
            let lo = out.indptr[r];
            let hi = out.indptr[r + 1];
            let s: f32 = out.values[lo..hi].iter().sum();
            if s > 0.0 {
                for v in &mut out.values[lo..hi] {
                    *v /= s;
                }
            }
        }
        out
    }

    /// Scales entry `(r, c)` by `d_r^{-1/2} d_c^{-1/2}` given per-row and
    /// per-column degree vectors (LightGCN's symmetric normalization).
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
    pub fn sym_normalized(&self, row_deg: &[f32], col_deg: &[f32]) -> Csr {
        assert_eq!(row_deg.len(), self.rows);
        assert_eq!(col_deg.len(), self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            let dr = row_deg[r].max(1.0).sqrt();
            let lo = out.indptr[r];
            let hi = out.indptr[r + 1];
            for k in lo..hi {
                let dc = col_deg[out.indices[k] as usize].max(1.0).sqrt();
                out.values[k] /= dr * dc;
            }
        }
        out
    }

    /// Sparse-dense product `self @ x` (`[r,c] x [c,n] -> [r,n]`).
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm inner dimension mismatch: {}x{} vs {:?}",
            self.rows,
            self.cols,
            x.shape()
        );
        let n = x.cols();
        let _sp = crate::obs_spmm(self.nnz(), n);
        let mut out = Tensor::zeros(self.rows, n);
        if n == 0 {
            return out;
        }
        // Output rows depend on disjoint CSR rows, so the row-blocked fan-out
        // is bit-identical to a serial row loop for any thread count.
        let body = |r: usize, o_row: &mut [f32]| {
            for (k, &c) in self.row_indices(r).iter().enumerate() {
                let v = self.row_values(r)[k];
                let x_row = x.row(c as usize);
                for (o, &xv) in o_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        };
        crate::tensor::run_row_blocked(self.rows, n, self.nnz() * n, out.as_mut_slice(), &body);
        out
    }

    /// Extracts the given rows into a new `[rows.len(), cols]` matrix
    /// (row `i` of the result is row `rows[i]` of `self`; duplicates allowed).
    ///
    /// Used to restrict aggregation operators to a mini-batch so SpMM cost
    /// scales with the batch, not the full entity set.
    pub fn select_rows(&self, rows: &[u32]) -> Csr {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let nnz: usize = rows.iter().map(|&r| self.row_nnz(r as usize)).sum();
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for &r in rows {
            indices.extend_from_slice(self.row_indices(r as usize));
            values.extend_from_slice(self.row_values(r as usize));
            indptr.push(indices.len());
        }
        Csr { rows: rows.len(), cols: self.cols, indptr, indices, values }
    }

    /// Sparse-sparse product `self @ other` (`[r,c] x [c,n] -> [r,n]`).
    ///
    /// Used to build derived incidences such as the user→tag profile matrix
    /// `Y @ Y'` consumed by the CFA/DSPR baselines.
    pub fn matmul_csr(&self, other: &Csr) -> Csr {
        assert_eq!(
            self.cols, other.rows,
            "matmul_csr inner dimension mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut triplets: Vec<(u32, u32, f32)> = Vec::new();
        let mut acc: Vec<f32> = vec![0.0; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        for r in 0..self.rows {
            for (k, &mid) in self.row_indices(r).iter().enumerate() {
                let v = self.row_values(r)[k];
                let m = mid as usize;
                for (k2, &c) in other.row_indices(m).iter().enumerate() {
                    if acc[c as usize] == 0.0 {
                        touched.push(c);
                    }
                    acc[c as usize] += v * other.row_values(m)[k2];
                }
            }
            for &c in &touched {
                triplets.push((r as u32, c, acc[c as usize]));
                acc[c as usize] = 0.0;
            }
            touched.clear();
        }
        Csr::from_triplets(self.rows, other.cols, &triplets)
    }

    /// Dense row sums as a vector of length `rows`.
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows).map(|r| self.row_values(r).iter().sum()).collect()
    }

    /// Per-row entry counts (degrees for binary matrices).
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// Keeps each stored entry with probability `1 - drop_prob`, preserving
    /// values. Used for SGL/KGCL edge-dropout graph views.
    pub fn drop_edges(&self, drop_prob: f32, rng: &mut impl rand::Rng) -> Csr {
        let triplets: Vec<(u32, u32, f32)> =
            self.iter().filter(|_| rng.gen::<f32>() >= drop_prob).collect();
        Csr::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 1, 4.0), (2, 0, 3.0)])
    }

    #[test]
    fn triplets_sorted_and_indexed() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_indices(0), &[0, 2]);
        assert_eq!(m.row_indices(1), &[] as &[u32]);
        assert_eq!(m.row_indices(2), &[0, 1]);
        assert_eq!(m.row_values(2), &[3.0, 4.0]);
        assert!(m.contains(0, 2));
        assert!(!m.contains(1, 1));
    }

    #[test]
    fn duplicates_are_summed() {
        let m = Csr::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row_values(0), &[3.5]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert!(t.contains(2, 0));
        assert!(t.contains(1, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let x = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let y = m.spmm(&x);
        // dense: [[1,0,2],[0,0,0],[3,4,0]] @ x
        assert_eq!(y.as_slice(), &[11., 14., 0., 0., 15., 22.]);
    }

    #[test]
    fn row_normalized_sums_to_one() {
        let m = sample().row_normalized();
        let s0: f32 = m.row_values(0).iter().sum();
        let s2: f32 = m.row_values(2).iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!((s2 - 1.0).abs() < 1e-6);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn sym_normalized_values() {
        let m = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]);
        let n = m.sym_normalized(&[2.0, 1.0], &[2.0, 1.0]);
        // (0,0): 1/sqrt(2*2)=0.5 ; (0,1): 1/sqrt(2*1)≈0.7071 ; (1,0): same
        assert!((n.row_values(0)[0] - 0.5).abs() < 1e-6);
        assert!((n.row_values(0)[1] - 0.70710677).abs() < 1e-6);
        assert!((n.row_values(1)[0] - 0.70710677).abs() < 1e-6);
    }

    #[test]
    fn adjacency_builder() {
        let m = Csr::from_adjacency(2, 4, &[vec![3, 1], vec![]]);
        assert_eq!(m.row_indices(0), &[1, 3]);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_values(0), &[1.0, 1.0]);
    }

    #[test]
    fn drop_edges_extremes() {
        let m = sample();
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        let kept = m.drop_edges(0.0, &mut rng);
        assert_eq!(kept.nnz(), m.nnz());
        let none = m.drop_edges(1.1, &mut rng);
        assert_eq!(none.nnz(), 0);
    }

    #[test]
    fn select_rows_picks_and_repeats() {
        let m = sample();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row_indices(0), &[0, 1]);
        assert_eq!(s.row_indices(1), &[0, 2]);
        assert_eq!(s.row_indices(2), &[0, 1]);
        assert_eq!(s.row_values(1), &[1.0, 2.0]);
        // Multiplication agrees with gathering rows of the full product.
        let x = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let full = m.spmm(&x);
        let sub = s.spmm(&x);
        assert_eq!(sub.row(0), full.row(2));
        assert_eq!(sub.row(1), full.row(0));
    }

    #[test]
    fn matmul_csr_matches_dense() {
        let a = sample();
        let b = Csr::from_triplets(3, 2, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0)]);
        let c = a.matmul_csr(&b);
        // dense a = [[1,0,2],[0,0,0],[3,4,0]]; dense b = [[1,0],[0,2],[-1,0]]
        // product  = [[-1,0],[0,0],[3,8]]
        let dense = c.spmm(&Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]));
        assert_eq!(dense.as_slice(), &[-1., 0., 0., 0., 3., 8.]);
    }

    #[test]
    fn matmul_csr_identity() {
        let a = sample();
        let eye = Csr::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        assert_eq!(a.matmul_csr(&eye), a);
    }

    #[test]
    fn degrees_and_row_sums() {
        let m = sample();
        assert_eq!(m.degrees(), vec![2, 0, 2]);
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
    }
}
