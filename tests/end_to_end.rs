//! Cross-crate integration tests: the full pipeline from data generation
//! through training to evaluation, exercised through the public facade.

use imcat::prelude::*;

fn tiny_split(seed: u64) -> SplitDataset {
    let synth = generate(&SynthConfig::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    synth.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

#[test]
fn full_pipeline_l_imcat() {
    let split = tiny_split(1);
    let mut rng = StdRng::seed_from_u64(1);
    let backbone = LightGcn::new(&split, TrainConfig::default(), &mut rng);
    let mut model = Imcat::new(
        backbone,
        &split,
        ImcatConfig { pretrain_epochs: 2, ..Default::default() },
        &mut rng,
    );
    let report = trainer::train(
        &mut model,
        &split,
        &TrainerConfig { max_epochs: 25, eval_every: 5, patience: 2, ..Default::default() },
    );
    assert_eq!(report.model, "L-IMCAT");
    assert!(report.best_val_recall > 0.1, "implausibly low: {}", report.best_val_recall);
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let m = evaluate(&mut score_fn, &split, &EvalSpec::at(20));
    assert!(m.recall > 0.1);
    assert!(m.ndcg > 0.0);
    assert_eq!(m.evaluated_users, split.test_users().len());
}

#[test]
fn training_is_deterministic_given_seeds() {
    let run = || {
        let split = tiny_split(2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Bprmf::new(&split, TrainConfig::default(), &mut rng);
        for _ in 0..5 {
            model.train_epoch(&mut rng);
        }
        model.score_users(&[0, 1, 2])
    };
    let a = run();
    let b = run();
    assert!(a.approx_eq(&b, 0.0), "identical seeds must reproduce identical models");
}

#[test]
fn imcat_beats_its_backbone_when_tags_matter() {
    // With strongly intent-driven data and a weak backbone, the alignment
    // signal should produce a visible improvement.
    let split = tiny_split(14);
    let cfg = TrainerConfig { max_epochs: 60, eval_every: 10, patience: 6, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(15);
    let mut plain = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    let base = trainer::train(&mut plain, &split, &cfg);
    let mut rng = StdRng::seed_from_u64(15);
    let backbone = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    let mut wrapped = Imcat::new(
        backbone,
        &split,
        ImcatConfig { pretrain_epochs: 5, ..Default::default() },
        &mut rng,
    );
    let plus = trainer::train(&mut wrapped, &split, &cfg);
    assert!(
        plus.best_val_recall >= base.best_val_recall * 0.95,
        "B-IMCAT ({:.4}) fell well below BPRMF ({:.4})",
        plus.best_val_recall,
        base.best_val_recall
    );
}

#[test]
fn ablations_preserve_training_stability() {
    let split = tiny_split(6);
    for cfg in [
        ImcatConfig { pretrain_epochs: 1, ..Default::default() }.without_uit(),
        ImcatConfig { pretrain_epochs: 1, ..Default::default() }.without_ut(),
        ImcatConfig { pretrain_epochs: 1, ..Default::default() }.without_ui(),
        ImcatConfig { pretrain_epochs: 1, ..Default::default() }.without_nlt(),
        ImcatConfig { pretrain_epochs: 1, ..Default::default() }.without_isa(),
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let backbone = Bprmf::new(&split, TrainConfig::default(), &mut rng);
        let mut model = Imcat::new(backbone, &split, cfg, &mut rng);
        for _ in 0..4 {
            let stats = model.train_epoch(&mut rng);
            assert!(stats.loss.is_finite());
        }
        let scores = model.score_users(&[0]);
        assert!(scores.as_slice().iter().all(|x| x.is_finite()));
    }
}

#[test]
fn group_and_cold_analyses_compose() {
    let split = tiny_split(8);
    let mut rng = StdRng::seed_from_u64(9);
    let mut model = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    for _ in 0..10 {
        model.train_epoch(&mut rng);
    }
    let groups = item_popularity_groups(&split, 5);
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let contrib = group_recall_contribution(&mut score_fn, &split, 20, &groups, 5);
    let overall = evaluate(&mut score_fn, &split, &EvalSpec::at(20));
    let sum: f64 = contrib.iter().sum();
    assert!((sum - overall.recall).abs() < 1e-9);
    let cold = cold_start_users(&split, 10);
    let cold_m = evaluate_user_subset(&mut score_fn, &split, 20, &cold).aggregate();
    assert!(cold_m.evaluated_users == cold.len());
}

#[test]
fn paired_t_test_on_model_comparison() {
    let split = tiny_split(20);
    let mut rng = StdRng::seed_from_u64(21);
    let mut good = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    for _ in 0..120 {
        good.train_epoch(&mut rng);
    }
    let untrained = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    let mut sf_good = |users: &[u32]| good.score_users(users);
    let mut sf_bad = |users: &[u32]| untrained.score_users(users);
    let pg = evaluate_per_user(&mut sf_good, &split, &EvalSpec::at(20));
    let pb = evaluate_per_user(&mut sf_bad, &split, &EvalSpec::at(20));
    let t = paired_t_test(&pg.recall, &pb.recall);
    assert!(t.t > 0.0, "trained model should win: t = {}", t.t);
    assert!(t.p < 0.05, "difference should be significant: p = {}", t.p);
}

#[test]
fn checkpoint_roundtrip_preserves_scores() {
    let split = tiny_split(12);
    let mut rng = StdRng::seed_from_u64(13);
    let backbone = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    let mut model = Imcat::new(
        backbone,
        &split,
        ImcatConfig { pretrain_epochs: 1, ..Default::default() },
        &mut rng,
    );
    for _ in 0..5 {
        model.train_epoch(&mut rng);
    }
    let before = model.score_users(&[0, 1, 2]);
    let path = std::env::temp_dir().join(format!("imcat_ckpt_{}.bin", std::process::id()));
    model.save_checkpoint(&path).unwrap();

    // A freshly initialized model scores differently; loading the checkpoint
    // must restore the exact trained scores.
    let mut rng2 = StdRng::seed_from_u64(99);
    let backbone2 = Bprmf::new(&split, TrainConfig::default(), &mut rng2);
    let mut fresh = Imcat::new(
        backbone2,
        &split,
        ImcatConfig { pretrain_epochs: 1, ..Default::default() },
        &mut rng2,
    );
    assert!(!fresh.score_users(&[0, 1, 2]).approx_eq(&before, 1e-6));
    fresh.load_checkpoint(&path).unwrap();
    assert!(fresh.score_users(&[0, 1, 2]).approx_eq(&before, 1e-6));
    std::fs::remove_file(&path).ok();
}
