//! ANN frontier benchmark: recall@{10,50} versus QPS for IVF retrieval
//! (swept over `nprobe`) and HNSW retrieval (swept over `ef_search`), next
//! to the brute-force baseline — the combined brute-vs-IVF-vs-HNSW
//! recall/QPS frontier.
//!
//! The binary trains BPR-MF on the largest synthetic catalog
//! (`SynthConfig::citeulike`, scaled by `IMCAT_SCALE`) with best-epoch
//! artifact export, computes the exact brute-force top-50 for every user as
//! ground truth, then replays a pre-drawn Zipf request stream through
//! `imcat-serve` engines: one brute-force baseline, one IVF engine per
//! swept `nprobe` (plus one int8-quantized run at the default probe width),
//! and one HNSW engine per swept `ef_search`. Every engine serves with the
//! result cache off so the table measures retrieval, not caching. The
//! persisted index sections are reused across a sweep (probe width is a
//! query-time knob), so each backend builds exactly once.
//!
//! Because both approximate paths re-rank candidates with exact f32 dot
//! products, recall is the *only* quality axis — returned scores and
//! orderings are always brute-force-correct. The HNSW rows additionally
//! prove it: `score_mismatches` counts users whose probe candidate scores
//! differ *bitwise* from the exact dot product (gated to zero by the
//! `ann-smoke` CI job). Each frontier row reports the scanned candidate
//! fraction, recall@10/@50 against the exact top-K, QPS, and the speedup
//! over brute force; rows are also emitted as `ann_frontier` telemetry
//! events (consumed by the `ann-smoke` CI job), written to
//! `ann_frontier.json` next to the `ann_bench.json` report, and the
//! measured default-probe recalls land in the `ann.recall_at10` /
//! `ann.recall_at50` (IVF) and `ann.hnsw.recall_at10` /
//! `ann.hnsw.recall_at50` (HNSW) gauges. The quantized row additionally
//! reports the certified-skip rate of the error-bounded int8 path and
//! cross-checks the skip-enabled probe against the forced re-rank per user
//! (the `skip_mismatches` count, gated to zero by the `kernel-smoke` CI
//! job).
//!
//! Environment knobs:
//!
//! * `IMCAT_ANN_REQUESTS` — replay stream length (default 2000)
//! * `IMCAT_ANN_K`        — serving cutoff in the replay (default 10)
//! * `IMCAT_ANN_ZIPF`     — Zipf exponent of the user stream (default 1.1)
//! * `IMCAT_ANN_NLIST`    — inverted-list count (default 0 = auto)
//!
//! Usage: `cargo run --release -p imcat-bench --bin ann_bench`

use std::path::PathBuf;
use std::time::Instant;

use imcat_bench::ModelKind;
use imcat_bench::{logln, obs_finish, obs_init, write_json, Env, ExpLog};
use imcat_core::train;
use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_serve::{AnnConfig, AnnKind, Engine, ProbeScratch, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 7;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Normalized Zipf CDF over `n` ranks (same stream shape as serve_bench).
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for r in 0..n {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for v in &mut cdf {
        *v /= acc;
    }
    cdf
}

fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> u32 {
    let x: f64 = rng.gen();
    cdf.partition_point(|&p| p < x).min(cdf.len() - 1) as u32
}

struct Row {
    mode: String,
    nprobe: usize,
    nlist: usize,
    ef_search: usize,
    frac_scanned: f64,
    recall_at10: f64,
    recall_at50: f64,
    qps: f64,
    speedup: f64,
    mean_us: f64,
    is_default: bool,
    skip_rate: f64,
    skip_mismatches: usize,
    score_mismatches: usize,
}

imcat_obs::impl_to_json!(Row {
    mode,
    nprobe,
    nlist,
    ef_search,
    frac_scanned,
    recall_at10,
    recall_at50,
    qps,
    speedup,
    mean_us,
    is_default,
    skip_rate,
    skip_mismatches,
    score_mismatches
});

/// Emits one frontier row as an `ann_frontier` telemetry event (consumed
/// by the `ann-smoke` CI gate).
fn emit_frontier(row: &Row) {
    if !imcat_obs::enabled() {
        return;
    }
    use imcat_obs::Json;
    imcat_obs::emit(
        "ann_frontier",
        vec![
            ("mode", Json::Str(row.mode.clone())),
            ("nprobe", Json::Num(row.nprobe as f64)),
            ("nlist", Json::Num(row.nlist as f64)),
            ("ef_search", Json::Num(row.ef_search as f64)),
            ("frac_scanned", Json::Num(row.frac_scanned)),
            ("recall_at10", Json::Num(row.recall_at10)),
            ("recall_at50", Json::Num(row.recall_at50)),
            ("qps", Json::Num(row.qps)),
            ("speedup", Json::Num(row.speedup)),
            ("is_default", Json::Bool(row.is_default)),
            ("skip_rate", Json::Num(row.skip_rate)),
            ("skip_mismatches", Json::Num(row.skip_mismatches as f64)),
            ("score_mismatches", Json::Num(row.score_mismatches as f64)),
        ],
    );
}

/// Replays the stream uncached and returns (qps, mean latency in µs).
fn replay(engine: &mut Engine, stream: &[(u32, usize)]) -> (f64, f64) {
    let t0 = Instant::now();
    for &(u, k) in stream {
        let recs = engine.recommend(u, k).expect("in-range request must be served");
        debug_assert!(recs.len() <= k);
    }
    let wall = t0.elapsed().as_secs_f64();
    (stream.len() as f64 / wall.max(1e-9), engine.stats().mean_seconds * 1e6)
}

/// Mean recall@`k` of the serving *system* (probe + fallback) against the
/// exact per-user top-`k` lists, measured with `k`-cutoff requests — the
/// same operating point a real client of that cutoff would see.
fn recall_at(engine: &mut Engine, truth: &[Vec<u32>], k: usize) -> f64 {
    let mut recall = 0.0f64;
    let mut counted = 0usize;
    for (u, exact) in truth.iter().enumerate() {
        let exact = &exact[..exact.len().min(k)];
        if exact.is_empty() {
            continue;
        }
        let got: Vec<u32> = engine
            .recommend(u as u32, k)
            .expect("in-range request")
            .iter()
            .map(|r| r.item)
            .collect();
        let hit = exact.iter().filter(|i| got.contains(i)).count();
        recall += hit as f64 / exact.len() as f64;
        counted += 1;
    }
    recall / counted.max(1) as f64
}

/// Mean fraction of the catalog scanned per probe (direct index probes,
/// mask-free — the candidate pool before any re-rank). Uses the forced
/// re-rank path so "scanned" keeps its historical meaning: a certified skip
/// would report only the k winners, not the scanned pool.
fn scan_fraction(engine: &Engine, nprobe: usize) -> f64 {
    let idx = engine.ann_index().expect("ann engine");
    let art = engine.artifact();
    let items = &art.item_emb;
    let mut scratch = ProbeScratch::default();
    let mut total = 0usize;
    for u in 0..art.user_emb.rows() {
        idx.probe_rerank(art.user_emb.row(u), items, &[], 10, nprobe, &mut scratch);
        total += scratch.candidates().len();
    }
    total as f64 / (art.user_emb.rows() * items.rows()) as f64
}

/// Certified int8 skip rate and (should-be-zero) top-K mismatches of the
/// skip-enabled probe against the forced re-rank, per user with their real
/// training masks — the acceptance evidence behind the "bit-identical
/// returned top-K" claim, consumed by the `kernel-smoke` CI job.
fn skip_stats(engine: &Engine, nprobe: usize, k: usize) -> (f64, usize) {
    let idx = engine.ann_index().expect("ann engine");
    let art = engine.artifact();
    let items = &art.item_emb;
    let mut fast = ProbeScratch::default();
    let mut slow = ProbeScratch::default();
    let mut top = imcat_eval::TopKScratch::default();
    let mut skips = 0usize;
    let mut mismatches = 0usize;
    let n_users = art.user_emb.rows();
    let ranked = |s: &ProbeScratch, top: &mut imcat_eval::TopKScratch| -> Vec<(u32, u32)> {
        imcat_eval::top_n_masked_with(s.scores(), s.mask(), k, top)
            .iter()
            .map(|&ci| (s.candidates()[ci as usize], s.scores()[ci as usize].to_bits()))
            .collect()
    };
    for u in 0..n_users {
        let q = art.user_emb.row(u);
        let mask = &art.masks[u];
        idx.probe(q, items, mask, k, nprobe, &mut fast);
        idx.probe_rerank(q, items, mask, k, nprobe, &mut slow);
        skips += fast.certified_skip() as usize;
        if ranked(&fast, &mut top) != ranked(&slow, &mut top) {
            mismatches += 1;
        }
    }
    (skips as f64 / n_users.max(1) as f64, mismatches)
}

/// Mean fraction of the catalog surfaced as candidates per probe through
/// the kind-agnostic [`imcat_serve::AnnIndex`] trait (direct probes,
/// mask-free — the candidate pool before selection). The graph analogue of
/// `scan_fraction` for backends without a forced re-rank entry point.
fn candidate_fraction(engine: &Engine, width: usize) -> f64 {
    let idx = engine.ann_backend().expect("ann engine");
    let art = engine.artifact();
    let items = &art.item_emb;
    let mut scratch = ProbeScratch::default();
    let mut total = 0usize;
    for u in 0..art.user_emb.rows() {
        idx.probe(art.user_emb.row(u), items, &[], 10, width, &mut scratch);
        total += scratch.candidates().len();
    }
    total as f64 / (art.user_emb.rows() * items.rows()) as f64
}

/// Counts users whose probe candidate scores differ **bitwise** from the
/// exact f32 dot product of their embedding with the candidate item — the
/// acceptance evidence behind the "exact re-rank, recall is the only
/// quality axis" claim for graph retrieval, gated to zero by the
/// `ann-smoke` CI job. Probes run with each user's real training mask at
/// the serving width, i.e. the exact operating point of the replay.
fn exact_score_mismatches(engine: &Engine, width: usize, k: usize) -> usize {
    let idx = engine.ann_backend().expect("ann engine");
    let art = engine.artifact();
    let items = &art.item_emb;
    let mut scratch = ProbeScratch::default();
    let mut bad_users = 0usize;
    for u in 0..art.user_emb.rows() {
        let q = art.user_emb.row(u);
        idx.probe(q, items, &art.masks[u], k, width, &mut scratch);
        let mismatch =
            scratch.candidates().iter().zip(scratch.scores()).any(|(&id, &s)| {
                s.to_bits() != imcat_simd::dot(q, items.row(id as usize)).to_bits()
            });
        bad_users += mismatch as usize;
    }
    bad_users
}

fn main() {
    obs_init(true);
    let mut log = ExpLog::new("ann_bench");
    let env = Env::from_env();

    let n_requests = env_usize("IMCAT_ANN_REQUESTS", 2000);
    let k = env_usize("IMCAT_ANN_K", 10);
    let zipf_s = env_f64("IMCAT_ANN_ZIPF", 1.1);
    let nlist_knob = env_usize("IMCAT_ANN_NLIST", 0);

    let data: SplitDataset = {
        let cfg = SynthConfig::citeulike().scaled(env.scale);
        let d = generate(&cfg, 11);
        let mut rng = StdRng::seed_from_u64(12);
        d.dataset.split((0.7, 0.1, 0.2), &mut rng)
    };
    logln!(
        log,
        "ann_bench: {} users x {} items, {} requests, k={k}, zipf s={zipf_s}",
        data.n_users(),
        data.n_items(),
        n_requests
    );

    // Train and export the artifact through the trainer's best-epoch hook.
    let art_dir = PathBuf::from("target/experiments/ann_artifacts");
    std::fs::create_dir_all(&art_dir).expect("cannot create artifact dir");
    let artifact_path = art_dir.join("bprmf.artifact");
    let kind = ModelKind::Bprmf;
    let mut model = kind.build(&data, &env.train_config(), &env.imcat_config(), SEED);
    let base = env.trainer_config(SEED);
    let tcfg = imcat_core::TrainerConfig {
        artifact_path: Some(artifact_path.clone()),
        eval_every: base.eval_every.min(base.max_epochs).max(1),
        ..base
    };
    let report = train(model.as_mut(), &data, &tcfg);
    logln!(
        log,
        "bprmf: trained {} epochs, best val R@20 {:.4}",
        report.epochs_run,
        report.best_val_recall
    );

    // Pre-draw one request stream served identically by every engine.
    let cdf = zipf_cdf(data.n_users(), zipf_s);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x21f);
    let stream: Vec<(u32, usize)> =
        (0..n_requests).map(|_| (sample_zipf(&cdf, &mut rng), k)).collect();

    let uncached = ServeConfig { cache_capacity: 0, ..Default::default() };

    // Brute-force baseline + exact per-user top-50 ground truth.
    let mut brute = Engine::load(&artifact_path, uncached.clone()).expect("artifact must load");
    let truth: Vec<Vec<u32>> = (0..data.n_users() as u32)
        .map(|u| brute.recommend(u, 50).expect("in-range request").iter().map(|r| r.item).collect())
        .collect();
    let (brute_qps, brute_mean) = replay(&mut brute, &stream);

    let base_ann =
        AnnConfig { nlist: nlist_knob, nprobe: 0, quantized: false, ..AnnConfig::default() };
    let nlist = base_ann.resolved_nlist(data.n_items());
    let default_nprobe = base_ann.resolved_nprobe(data.n_items());

    // Sweep nprobe: powers of two up to nlist, plus the default and nlist.
    let mut sweep: Vec<usize> = Vec::new();
    let mut p = 1usize;
    while p < nlist {
        sweep.push(p);
        p *= 2;
    }
    sweep.push(nlist);
    if !sweep.contains(&default_nprobe) {
        sweep.push(default_nprobe);
        sweep.sort_unstable();
    }

    let mut rows: Vec<Row> = vec![Row {
        mode: "brute".into(),
        nprobe: 0,
        nlist: 0,
        ef_search: 0,
        frac_scanned: 1.0,
        recall_at10: 1.0,
        recall_at50: 1.0,
        qps: brute_qps,
        speedup: 1.0,
        mean_us: brute_mean,
        is_default: false,
        skip_rate: 0.0,
        skip_mismatches: 0,
        score_mismatches: 0,
    }];
    emit_frontier(&rows[0]);
    logln!(
        log,
        "{:<7} {:>6} {:>6} {:>7} {:>8} {:>8} {:>9} {:>8}",
        "mode",
        "nlist",
        "nprobe",
        "scan%",
        "R@10",
        "R@50",
        "qps",
        "speedup"
    );
    logln!(
        log,
        "{:<7} {:>6} {:>6} {:>7.1} {:>8.4} {:>8.4} {:>9.0} {:>8.2}",
        "brute",
        "-",
        "-",
        100.0,
        1.0,
        1.0,
        brute_qps,
        1.0
    );

    let mut quantized_runs: Vec<(usize, bool)> = sweep.iter().map(|&np| (np, false)).collect();
    quantized_runs.push((default_nprobe, true));
    for (nprobe, quantized) in quantized_runs {
        let cfg = ServeConfig {
            ann: Some(AnnConfig { nlist: nlist_knob, nprobe, quantized, ..AnnConfig::default() }),
            ..uncached.clone()
        };
        let mut engine = Engine::load(&artifact_path, cfg).expect("artifact must load");
        let frac = scan_fraction(&engine, nprobe);
        let (skip_rate, skip_mismatches) =
            if quantized { skip_stats(&engine, nprobe, k) } else { (0.0, 0) };
        let r10 = recall_at(&mut engine, &truth, 10);
        let r50 = recall_at(&mut engine, &truth, 50);
        // Fresh engine for timing so recall probing doesn't pollute stats.
        let mut timed = Engine::load(
            &artifact_path,
            ServeConfig {
                ann: Some(AnnConfig {
                    nlist: nlist_knob,
                    nprobe,
                    quantized,
                    ..AnnConfig::default()
                }),
                ..uncached.clone()
            },
        )
        .expect("artifact must load");
        let (qps, mean_us) = replay(&mut timed, &stream);
        let is_default = nprobe == default_nprobe && !quantized;
        let row = Row {
            mode: if quantized { "ivf-q8".into() } else { "ivf".into() },
            nprobe,
            nlist,
            ef_search: 0,
            frac_scanned: frac,
            recall_at10: r10,
            recall_at50: r50,
            qps,
            speedup: qps / brute_qps.max(1e-9),
            mean_us,
            is_default,
            skip_rate,
            skip_mismatches,
            score_mismatches: 0,
        };
        logln!(
            log,
            "{:<7} {:>6} {:>6} {:>7.1} {:>8.4} {:>8.4} {:>9.0} {:>8.2}{}",
            row.mode,
            row.nlist,
            row.nprobe,
            row.frac_scanned * 100.0,
            row.recall_at10,
            row.recall_at50,
            row.qps,
            row.speedup,
            if is_default { "  <- default" } else { "" }
        );
        if quantized {
            logln!(
                log,
                "ivf-q8 certified skip rate {:.3} ({} top-{k} mismatches vs forced re-rank)",
                row.skip_rate,
                row.skip_mismatches
            );
        }
        emit_frontier(&row);
        if imcat_obs::enabled() {
            if is_default {
                imcat_obs::gauge_set("ann.recall_at10", row.recall_at10);
                imcat_obs::gauge_set("ann.recall_at50", row.recall_at50);
                imcat_obs::gauge_set("ann.default_speedup", row.speedup);
            }
            if quantized {
                imcat_obs::gauge_set("ann.q8_skip_rate", row.skip_rate);
            }
        }
        rows.push(row);
    }

    // HNSW: sweep `ef_search` over powers of two (capped below the catalog,
    // where the probe degenerates to brute force) plus the resolved
    // default. The graph is built once — probe width is a query-time knob,
    // so every subsequent load reuses the persisted `ann.hnsw.*` sections.
    let hnsw_base = AnnConfig { kind: AnnKind::Hnsw, ..AnnConfig::default() };
    let default_efs = hnsw_base.resolved_ef_search(data.n_items());
    let hnsw_m = hnsw_base.resolved_m(data.n_items());
    let hnsw_efc = hnsw_base.resolved_ef_construction(data.n_items());
    let mut efs_sweep: Vec<usize> = Vec::new();
    let mut e = 16usize;
    while e < data.n_items() && e <= 1024 {
        efs_sweep.push(e);
        e *= 2;
    }
    if !efs_sweep.contains(&default_efs) {
        efs_sweep.push(default_efs);
        efs_sweep.sort_unstable();
    }
    logln!(log, "hnsw: m={hnsw_m} ef_construction={hnsw_efc} default ef_search={default_efs}");
    logln!(
        log,
        "{:<7} {:>6} {:>6} {:>7} {:>8} {:>8} {:>9} {:>8}",
        "mode",
        "m",
        "ef",
        "cand%",
        "R@10",
        "R@50",
        "qps",
        "speedup"
    );
    for ef in efs_sweep {
        let cfg = |ef| ServeConfig {
            ann: Some(AnnConfig { kind: AnnKind::Hnsw, ef_search: ef, ..AnnConfig::default() }),
            ..uncached.clone()
        };
        let mut engine = Engine::load(&artifact_path, cfg(ef)).expect("artifact must load");
        let frac = candidate_fraction(&engine, ef);
        let mismatches = exact_score_mismatches(&engine, ef, k);
        let r10 = recall_at(&mut engine, &truth, 10);
        let r50 = recall_at(&mut engine, &truth, 50);
        // Fresh engine for timing so recall probing doesn't pollute stats.
        let mut timed = Engine::load(&artifact_path, cfg(ef)).expect("artifact must load");
        let (qps, mean_us) = replay(&mut timed, &stream);
        let is_default = ef == default_efs;
        let row = Row {
            mode: "hnsw".into(),
            nprobe: 0,
            nlist: 0,
            ef_search: ef,
            frac_scanned: frac,
            recall_at10: r10,
            recall_at50: r50,
            qps,
            speedup: qps / brute_qps.max(1e-9),
            mean_us,
            is_default,
            skip_rate: 0.0,
            skip_mismatches: 0,
            score_mismatches: mismatches,
        };
        logln!(
            log,
            "{:<7} {:>6} {:>6} {:>7.1} {:>8.4} {:>8.4} {:>9.0} {:>8.2}{}",
            row.mode,
            hnsw_m,
            row.ef_search,
            row.frac_scanned * 100.0,
            row.recall_at10,
            row.recall_at50,
            row.qps,
            row.speedup,
            if is_default { "  <- default" } else { "" }
        );
        if row.score_mismatches > 0 {
            logln!(log, "hnsw ef={ef}: {} users with inexact probe scores", row.score_mismatches);
        }
        emit_frontier(&row);
        if imcat_obs::enabled() && is_default {
            imcat_obs::gauge_set("ann.hnsw.recall_at10", row.recall_at10);
            imcat_obs::gauge_set("ann.hnsw.recall_at50", row.recall_at50);
            imcat_obs::gauge_set("ann.hnsw.default_speedup", row.speedup);
        }
        rows.push(row);
    }

    let frontier = write_json("ann_frontier", &rows);
    logln!(log, "frontier written to {}", frontier.display());
    let path = write_json("ann_bench", &rows);
    logln!(log, "report written to {}", path.display());
    obs_finish();
}
