//! Criterion microbenches for the substrate kernels that dominate training
//! cost (backing the Fig. 9 efficiency analysis at the kernel level):
//! dense matmul, sparse SpMM, embedding gather + sparse backward, and
//! LightGCN propagation.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imcat_data::{generate, SynthConfig};
use imcat_graph::joint_normalized_adjacency;
use imcat_tensor::{normal, xavier_uniform, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128, 256] {
        let a = normal(n, n, 1.0, &mut rng);
        let b = normal(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let data = generate(&SynthConfig::hetrec_del(), 7).dataset;
    let mut rng = StdRng::seed_from_u64(1);
    let split = data.split((0.7, 0.1, 0.2), &mut rng);
    let adj = joint_normalized_adjacency(&split.train);
    let n = adj.rows();
    let x = normal(n, 32, 1.0, &mut rng);
    c.bench_function("spmm_joint_adjacency_d32", |b| {
        b.iter(|| std::hint::black_box(adj.spmm(&x)));
    });
    let agg = split.train.col_mean_aggregator();
    let u = normal(split.n_users(), 32, 1.0, &mut rng);
    c.bench_function("spmm_mean_aggregation_d32", |b| {
        b.iter(|| std::hint::black_box(agg.spmm(&u)));
    });
    let items: Vec<u32> = (0..128).collect();
    c.bench_function("csr_select_rows_128", |b| {
        b.iter(|| std::hint::black_box(agg.select_rows(&items)));
    });
}

fn bench_gather_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let table = store.add("emb", xavier_uniform(5000, 32, &mut rng));
    let rows: Vec<u32> = (0..512).map(|i| (i * 7) % 5000).collect();
    c.bench_function("gather512_square_backward", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let g = tape.gather(&store, table, &rows);
            let sq = tape.mul(g, g);
            let loss = tape.mean_all(sq);
            tape.backward(loss, &mut store);
            store.zero_grads();
        });
    });
}

fn bench_propagation(c: &mut Criterion) {
    let data = generate(&SynthConfig::hetrec_del(), 7).dataset;
    let mut rng = StdRng::seed_from_u64(3);
    let split = data.split((0.7, 0.1, 0.2), &mut rng);
    let adj = Rc::new(joint_normalized_adjacency(&split.train));
    let n = adj.rows();
    let x0 = normal(n, 32, 1.0, &mut rng);
    c.bench_function("lightgcn_propagate_2layers_d32", |b| {
        b.iter(|| std::hint::black_box(imcat_models::propagate_mean_tensor(&adj, &x0, 2)));
    });
}

fn bench_jaccard_sets(c: &mut Criterion) {
    let data = generate(&SynthConfig::hetrec_del(), 7).dataset;
    let assignment: Vec<usize> = (0..data.n_tags()).map(|t| t % 4).collect();
    c.bench_function("isa_similar_sets_delta0.7", |b| {
        b.iter(|| {
            std::hint::black_box(imcat_core::isa::SimilarSets::build(
                data.item_tag.forward(),
                &assignment,
                4,
                0.7,
            ))
        });
    });
}

fn bench_log_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let t = normal(128, 512, 1.0, &mut rng);
    c.bench_function("log_softmax_rows_128x512", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let v = tape.constant(t.clone());
            std::hint::black_box(tape.log_softmax_rows(v));
        });
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul,
        bench_spmm,
        bench_gather_backward,
        bench_propagation,
        bench_jaccard_sets,
        bench_log_softmax
);
criterion_main!(kernels);
