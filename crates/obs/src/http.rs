//! Minimal from-scratch HTTP/1.1 listener for live telemetry — no
//! dependencies, one accept thread, sequential request handling.
//!
//! This is deliberately not a general web server: requests are bounded to an
//! 8 KiB head, bodies are ignored, every response closes the connection, and
//! handling is single-threaded so a scrape can never amplify load on the
//! serving process. Routes:
//!
//! * `GET /metrics` — Prometheus text exposition ([`crate::expo`])
//! * `GET /snapshot` — full registry snapshot as JSON
//! * `GET /trace/<id>` — one stored request trace ([`crate::trace`])
//! * `GET /traces` — recent traces plus store statistics
//! * `GET /healthz` — liveness probe
//!
//! Started by [`crate::init_from_env`] when `IMCAT_OBS_ADDR` is set (e.g.
//! `127.0.0.1:9464`); binding port 0 picks an ephemeral port, which tests
//! use to avoid collisions.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::{expo, trace, Json};

const MAX_HEAD: usize = 8 * 1024;
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Total wall-clock budget for one connection, reads *and* writes included.
/// The handler is single-threaded, so without this a slowloris client
/// trickling one byte per `IO_TIMEOUT` would hold `/healthz` hostage
/// indefinitely; with it, any connection is done (or dropped) within 2 s.
const HANDLE_DEADLINE: Duration = Duration::from_secs(2);

static BOUND: OnceLock<SocketAddr> = OnceLock::new();

/// The address the listener is bound to, once [`start`] has succeeded.
pub fn bound_addr() -> Option<SocketAddr> {
    BOUND.get().copied()
}

/// Binds `addr` and starts the detached accept loop. Idempotent: a second
/// call returns the address of the already-running listener.
pub fn start(addr: &str) -> std::io::Result<SocketAddr> {
    if let Some(bound) = BOUND.get() {
        return Ok(*bound);
    }
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let bound = *BOUND.get_or_init(|| local);
    if bound != local {
        // Lost a start race; this listener is redundant.
        return Ok(bound);
    }
    std::thread::Builder::new()
        .name("imcat-obs-http".into())
        .spawn(move || {
            for stream in listener.incoming().flatten() {
                let _ = handle(stream);
            }
        })
        .map(|_| local)
}

fn handle(mut stream: TcpStream) -> std::io::Result<()> {
    let deadline = Instant::now() + HANDLE_DEADLINE;
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        // Enforce the *total* deadline, not just a per-read timeout: cap
        // every read's timeout by the time remaining on the connection.
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            let _ = respond(&mut stream, "408 Request Timeout", "text/plain", "timed out\n");
            return Ok(());
        };
        let _ = stream.set_read_timeout(Some(remaining.min(IO_TIMEOUT)));
        let n = match stream.read(&mut buf) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let _ = respond(&mut stream, "408 Request Timeout", "text/plain", "timed out\n");
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            break;
        }
        // Scan only the 3-byte tail overlap plus the fresh bytes for the
        // head terminator — rescanning the whole buffer on every read made
        // handling quadratic in head size against slow clients.
        let scan_from = head.len().saturating_sub(3);
        head.extend_from_slice(&buf[..n]);
        if head[scan_from..].windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_HEAD {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path);
    respond(&mut stream, status, content_type, &body)
}

fn route(method: &str, target: &str) -> (&'static str, &'static str, String) {
    const TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
    const JSON: &str = "application/json; charset=utf-8";
    if method != "GET" {
        return ("405 Method Not Allowed", TEXT, "method not allowed\n".into());
    }
    // Scrapers routinely append cache-busting or timestamp parameters
    // (`GET /metrics?ts=1`); routing matches on the path alone.
    let path = target.split(['?', '#']).next().unwrap_or(target);
    match path {
        "/metrics" => ("200 OK", TEXT, expo::render_prometheus(&crate::snapshot())),
        "/snapshot" => ("200 OK", JSON, expo::render_snapshot_json(&crate::snapshot()).render()),
        "/healthz" => ("200 OK", TEXT, "ok\n".into()),
        "/traces" => {
            let (stored, total, slow) = trace::stats();
            let doc = Json::obj(vec![
                ("stored", Json::Num(stored as f64)),
                ("total", Json::Num(total as f64)),
                ("slow", Json::Num(slow as f64)),
                ("recent", Json::Arr(trace::recent(32).iter().map(|t| t.to_json()).collect())),
            ]);
            ("200 OK", JSON, doc.render())
        }
        _ => match path.strip_prefix("/trace/").and_then(|id| id.parse::<u64>().ok()) {
            Some(id) => match trace::get(id) {
                Some(t) => ("200 OK", JSON, t.to_json().render()),
                None => ("404 Not Found", TEXT, format!("trace {id} not stored\n")),
            },
            None => ("404 Not Found", TEXT, "not found\n".into()),
        },
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::route;

    #[test]
    fn route_ignores_query_strings_and_fragments() {
        // Scrapers append params; every route must resolve with them.
        assert_eq!(route("GET", "/healthz").0, "200 OK");
        assert_eq!(route("GET", "/healthz?probe=1").0, "200 OK");
        assert_eq!(route("GET", "/metrics?ts=1699999999&format=text").0, "200 OK");
        assert_eq!(route("GET", "/snapshot?").0, "200 OK");
        assert_eq!(route("GET", "/traces?limit=5#frag").0, "200 OK");
        // The query is stripped before (not after) prefix matching.
        assert_eq!(route("GET", "/trace/notanumber?x=1").0, "404 Not Found");
        assert_eq!(route("GET", "/nope?x=1").0, "404 Not Found");
    }

    #[test]
    fn route_rejects_non_get() {
        assert_eq!(route("POST", "/metrics").0, "405 Method Not Allowed");
    }
}
