//! Hierarchical navigable small-world (HNSW) index with exact re-rank.
//!
//! The graph backend of [`crate::index::AnnIndex`]: items are nodes in a
//! multi-layer proximity graph (Malkov & Yashunin, 2016). Each node draws a
//! geometric level from a seeded xoshiro stream keyed by `(seed, id)` — a
//! *pure function* of the identity, so a graph grown incrementally through
//! [`HnswIndex::insert`] assigns exactly the levels a batch rebuild would.
//! A query descends the sparse upper layers greedily, then runs a best-first
//! beam of width `ef_search` over the dense base layer; the surviving
//! candidates go through the **same** compact-candidate contract as IVF
//! (ascending ids, exact f32 `imcat_simd::dot` scores, remapped mask), so
//! downstream `top_n_masked_with` selection and the serving engine are
//! backend-blind.
//!
//! Geometry is the IVF module's MIPS-to-L2 reduction: item `x` becomes
//! `[x, sqrt(Φ² − ‖x‖²)]` with `Φ² = max_i ‖x_i‖²` frozen at build time
//! (norms accumulated in f64), the query `[q, 0]`. Graph distances are
//! squared L2 in that augmented space — monotone decreasing in the inner
//! product — computed as `l2_sq(q, x) + (q_tail − x_tail)²` so no augmented
//! copy of the query is ever materialized. The index keeps its own copy of
//! the base vectors plus tails (the classic HNSW memory model): that makes
//! streamed inserts and checkpoint loads self-contained, at the cost of one
//! extra catalog-sized matrix.
//!
//! ## Determinism
//!
//! Construction is a serial insert loop in ascending id order — there is
//! nothing thread-shaped in it, so builds are bit-identical at any
//! `IMCAT_THREADS` by construction (the determinism suite asserts it at 1
//! and 4). Search visits candidates through heaps ordered by the canonical
//! `(distance asc, id asc)` **total** order ([`DistId`]'s `Ord` uses
//! `total_cmp`), so frontier expansion, result eviction, and the final
//! candidate set are all deterministic; only the exact re-rank fans out over
//! the `imcat-par` pool, with the same fixed grain the other backends use.
//! At `ef_search >= n_items` the probe bypasses the graph entirely and takes
//! the [`crate::ivf::ProbeScratch::set_brute`] path, making it bit-identical
//! to [`crate::index::BruteIndex`] — scores *and* tie order — which the
//! proptests exercise. Cold (`n = 0`) and unbuilt graphs fall back the same
//! way.
//!
//! ## Persistence
//!
//! Four versioned sections — `ann.hnsw.meta` / `ann.hnsw.vecs` /
//! `ann.hnsw.levels` / `ann.hnsw.links` — ride the artifact container with
//! the same all-or-nothing discipline as `ann.*`: decode re-validates every
//! structural invariant (degree caps, id ranges, level monotonicity, entry
//! point identity, finite geometry) and any violation rejects the whole
//! index, which the engine then rebuilds under `.prev` rotation.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::io;

use imcat_ckpt::{Checkpoint, Decoder, Encoder};
use imcat_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::index::AnnKind;
use crate::ivf::AnnConfig;

/// Section holding the graph geometry, build parameters, and entry point.
pub const SEC_HNSW_META: &str = "ann.hnsw.meta";
/// Section holding the index's own copy of the base vectors plus the
/// MIPS-augmentation tail coordinates.
pub const SEC_HNSW_VECS: &str = "ann.hnsw.vecs";
/// Section holding the per-node top level.
pub const SEC_HNSW_LEVELS: &str = "ann.hnsw.levels";
/// Section holding the adjacency lists, flattened level-major per node.
pub const SEC_HNSW_LINKS: &str = "ann.hnsw.links";

/// Format version inside [`SEC_HNSW_META`]. Bumps reject-and-rebuild.
const HNSW_VERSION: u32 = 1;
/// Hard ceiling on node levels: a level-30 node implies ~`16^30` items.
const MAX_LEVEL: u32 = 30;
/// Sentinel entry point of an empty graph.
const NO_ENTRY: u32 = u32::MAX;

/// `(distance, id)` under the canonical total order: distance ascending
/// (`total_cmp`, so NaN sorts deterministically too), ties to the lower id.
/// Everything the search touches — frontier pops, worst-result eviction,
/// final ordering — goes through this `Ord`, which is what makes graph
/// traversal bit-deterministic.
#[derive(Clone, Copy, Debug)]
struct DistId {
    d: f32,
    id: u32,
}

impl PartialEq for DistId {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for DistId {}

impl PartialOrd for DistId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DistId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d.total_cmp(&other.d).then(self.id.cmp(&other.id))
    }
}

/// Immutable view of the graph geometry a traversal needs: the vector store,
/// the augmentation tails, and the query point (`qtail = 0` for real
/// queries, the node's own tail during construction).
struct Ctx<'a> {
    vecs: &'a [f32],
    tails: &'a [f32],
    dim: usize,
    q: &'a [f32],
    qtail: f32,
}

impl Ctx<'_> {
    /// Squared augmented-L2 distance from the query to item `id`.
    #[inline]
    fn dist(&self, id: u32) -> f32 {
        let i = id as usize;
        let dt = self.qtail - self.tails[i];
        imcat_simd::l2_sq(self.q, &self.vecs[i * self.dim..(i + 1) * self.dim]) + dt * dt
    }
}

/// Squared augmented-L2 distance between items `a` and `b`.
#[inline]
fn dist_items(vecs: &[f32], tails: &[f32], dim: usize, a: u32, b: u32) -> f32 {
    let (ia, ib) = (a as usize, b as usize);
    let dt = tails[ia] - tails[ib];
    imcat_simd::l2_sq(&vecs[ia * dim..(ia + 1) * dim], &vecs[ib * dim..(ib + 1) * dim]) + dt * dt
}

/// The heuristic neighbor selection of the HNSW paper (algorithm 4):
/// walk `cands` in canonical `(dist asc, id asc)` order, keep a candidate
/// only if it is strictly closer to the query than to every neighbor already
/// kept (so the kept set spreads across directions instead of clustering),
/// then fill any remaining capacity from the pruned ones in the same order
/// (`keepPrunedConnections` — it keeps duplicate-heavy catalogs connected:
/// all-equal distances never prune).
fn select_neighbors(
    vecs: &[f32],
    tails: &[f32],
    dim: usize,
    cands: &[(f32, u32)],
    cap: usize,
    out: &mut Vec<u32>,
) {
    out.clear();
    let mut pruned: Vec<u32> = Vec::new();
    for &(d, c) in cands {
        if out.len() >= cap {
            break;
        }
        let diversified = out.iter().all(|&s| dist_items(vecs, tails, dim, c, s) >= d);
        if diversified {
            out.push(c);
        } else {
            pruned.push(c);
        }
    }
    for &c in &pruned {
        if out.len() >= cap {
            break;
        }
        out.push(c);
    }
}

/// Reusable graph-traversal state: visited stamps, the best-first frontier
/// (min-heap), the bounded result set (max-heap of size `ef`), and the
/// drained, canonically ordered output. One per probe scratch (and one kept
/// inside the index for construction/inserts); reuse never changes results —
/// stamps invalidate wholesale, heaps and buffers are cleared per search.
#[derive(Clone, Debug, Default)]
pub(crate) struct GraphSearch {
    /// Per-node visited stamp; a node is visited iff `seen[id] == stamp`.
    stamp: u32,
    seen: Vec<u32>,
    /// Frontier, popped nearest-first (canonical order via [`DistId`]).
    cand: BinaryHeap<Reverse<DistId>>,
    /// Running best `ef` results, worst on top for O(log ef) eviction.
    found: BinaryHeap<DistId>,
    /// Result of the last `search_layer`, sorted `(dist asc, id asc)`.
    out: Vec<(f32, u32)>,
    /// Candidate-id staging buffer for the probe handoff.
    ids: Vec<u32>,
    /// Nodes expanded (frontier pops + greedy steps) since the last reset.
    hops: u64,
    /// Distance evaluations since the last reset.
    visited: u64,
}

impl GraphSearch {
    /// Invalidates all visited marks for a graph of `n` nodes.
    fn reset_marks(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, 0);
        }
        if self.stamp == u32::MAX {
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.stamp = 0;
        }
        self.stamp += 1;
    }

    /// Marks `id` visited; false if it already was.
    #[inline]
    fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.seen[id as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }

    /// Greedy descent at one level: repeatedly move to the canonically
    /// smallest `(dist, id)` among the current node's neighbors until no
    /// neighbor improves on the current position. Moving strictly decreases
    /// the canonical pair, so the walk terminates; scanning every neighbor
    /// before moving makes the result independent of link storage order.
    fn greedy(
        &mut self,
        ctx: &Ctx<'_>,
        links: &[Vec<Vec<u32>>],
        level: usize,
        start: (f32, u32),
    ) -> (f32, u32) {
        let (mut bd, mut bi) = start;
        loop {
            self.hops += 1;
            let mut improved = false;
            for &nb in &links[bi as usize][level] {
                self.visited += 1;
                let d = ctx.dist(nb);
                if d.total_cmp(&bd).then(nb.cmp(&bi)) == Ordering::Less {
                    bd = d;
                    bi = nb;
                    improved = true;
                }
            }
            if !improved {
                return (bd, bi);
            }
        }
    }

    /// Best-first beam search at one level from entry points `eps`
    /// (pre-scored), keeping the `ef` canonically best nodes seen. Leaves
    /// the results in `self.out` sorted `(dist asc, id asc)`.
    fn search_layer(
        &mut self,
        ctx: &Ctx<'_>,
        links: &[Vec<Vec<u32>>],
        level: usize,
        ef: usize,
        eps: &[(f32, u32)],
    ) {
        self.reset_marks(links.len());
        self.cand.clear();
        self.found.clear();
        for &(d, id) in eps {
            if !self.mark(id) {
                continue;
            }
            self.offer(DistId { d, id }, ef);
        }
        while let Some(Reverse(c)) = self.cand.pop() {
            if self.found.len() >= ef {
                let worst = *self.found.peek().expect("found nonempty when full");
                if worst < c {
                    break;
                }
            }
            self.hops += 1;
            for &nb in &links[c.id as usize][level] {
                if !self.mark(nb) {
                    continue;
                }
                self.visited += 1;
                self.offer(DistId { d: ctx.dist(nb), id: nb }, ef);
            }
        }
        self.out.clear();
        while let Some(e) = self.found.pop() {
            self.out.push((e.d, e.id));
        }
        self.out.reverse();
    }

    /// Offers one scored node to the bounded result set (and, if accepted,
    /// to the frontier). Eviction compares through the canonical total
    /// order, so ties break to the lower id deterministically.
    #[inline]
    fn offer(&mut self, e: DistId, ef: usize) {
        if self.found.len() < ef {
            self.found.push(e);
            self.cand.push(Reverse(e));
        } else {
            let worst = *self.found.peek().expect("found nonempty when full");
            if e < worst {
                self.found.pop();
                self.found.push(e);
                self.cand.push(Reverse(e));
            }
        }
    }
}

/// An HNSW graph index over one frozen item-embedding matrix.
#[derive(Clone, Debug)]
pub struct HnswIndex {
    dim: usize,
    n_items: usize,
    seed: u64,
    /// Degree bound per node per level; level 0 holds up to `2·m`.
    m: usize,
    /// Construction-time beam width.
    ef_construction: usize,
    /// The squared MIPS-augmentation constant frozen at build time; streamed
    /// inserts clamp their completion coordinate at 0 against it, exactly
    /// like [`crate::ivf::IvfIndex::insert`].
    phi2: f64,
    /// Row-major copy of the base vectors (`n_items × dim`).
    vecs: Vec<f32>,
    /// Per-item augmentation tails `sqrt(Φ² − ‖x‖²)`.
    tails: Vec<f32>,
    /// Per-item top level.
    levels: Vec<u32>,
    /// `links[id][level]` = neighbor ids, insertion-ordered (the order is
    /// part of the deterministic build and is persisted verbatim).
    links: Vec<Vec<Vec<u32>>>,
    /// Entry node ([`NO_ENTRY`] when the graph is empty). Always a node of
    /// the maximal level.
    entry: u32,
    /// Level of the entry node (0 when empty).
    max_level: u32,
    /// Construction scratch, reused across inserts. Not part of the
    /// persisted identity.
    scratch: GraphSearch,
}

impl HnswIndex {
    /// Builds the graph by inserting every item in ascending id order
    /// through the same greedy-search + link path streamed inserts use.
    /// Deterministic: the loop is serial (nothing in it fans out), so the
    /// same `(items, cfg, seed)` produces a bit-identical graph at any
    /// `IMCAT_THREADS` setting.
    pub fn build(items: &Tensor, cfg: &AnnConfig, seed: u64) -> Self {
        let sp = imcat_obs::span("ann.hnsw.build.seconds");
        let (n_items, dim) = items.shape();
        let m = cfg.resolved_m(n_items);
        let ef_construction = cfg.resolved_ef_construction(n_items);
        // Norms accumulate in f64, same as the IVF build: squared f32
        // magnitudes can overflow f32 while their roots are representable.
        let norms2: Vec<f64> =
            (0..n_items).map(|i| items.row(i).iter().map(|&x| x as f64 * x as f64).sum()).collect();
        let phi2 = norms2.iter().fold(0f64, |acc, &v| acc.max(v));
        let mut idx = Self {
            dim,
            n_items: 0,
            seed,
            m,
            ef_construction,
            phi2,
            vecs: Vec::with_capacity(n_items * dim),
            tails: Vec::with_capacity(n_items),
            levels: Vec::with_capacity(n_items),
            links: Vec::with_capacity(n_items),
            entry: NO_ENTRY,
            max_level: 0,
            scratch: GraphSearch::default(),
        };
        let mut search = GraphSearch::default();
        for (i, &n2) in norms2.iter().enumerate() {
            let tail = (phi2 - n2).max(0.0).sqrt() as f32;
            idx.push_node(items.row(i), tail, &mut search);
        }
        idx.scratch = search;
        drop(sp);
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ann.builds", 1);
        }
        idx
    }

    /// The geometric level of node `id`: `floor(−ln(u) / ln(m))` with `u`
    /// drawn from a xoshiro stream keyed by `(seed, id)` — a pure function
    /// of the identity, so incremental growth and batch rebuild assign the
    /// same levels to the same ids.
    fn level_for(seed: u64, id: u32, m: usize) -> u32 {
        let key = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id as u64 + 1);
        let mut rng = StdRng::seed_from_u64(key);
        // 53 uniform bits mapped into (0, 1]: never 0, so ln(u) is finite.
        let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let ml = 1.0 / (m as f64).ln();
        ((-u.ln() * ml) as u32).min(MAX_LEVEL)
    }

    /// Appends one node (vector copy, tail, level, empty lists) and links it
    /// into the graph. The single write path shared by [`HnswIndex::build`]
    /// and [`HnswIndex::insert`].
    fn push_node(&mut self, row: &[f32], tail: f32, search: &mut GraphSearch) {
        let id = self.n_items as u32;
        let level = Self::level_for(self.seed, id, self.m);
        self.vecs.extend_from_slice(row);
        self.tails.push(tail);
        self.levels.push(level);
        self.links.push(vec![Vec::new(); level as usize + 1]);
        self.n_items += 1;
        self.link_node(id, search);
    }

    /// Wires node `id` into the graph: greedy-descend the layers above its
    /// level, then per layer from its level down run an
    /// `ef_construction`-wide beam, pick up to `m` diversified forward
    /// neighbors, and add the reverse links (re-selecting any neighbor whose
    /// list overflows its degree cap).
    fn link_node(&mut self, id: u32, search: &mut GraphSearch) {
        let Self { dim, m, ef_construction, vecs, tails, levels, links, entry, max_level, .. } =
            self;
        let (dim, m, efc) = (*dim, *m, *ef_construction);
        let vecs: &[f32] = vecs;
        let tails: &[f32] = tails;
        let node_level = levels[id as usize];
        if *entry == NO_ENTRY {
            *entry = id;
            *max_level = node_level;
            return;
        }
        let i = id as usize;
        let ctx = Ctx { vecs, tails, dim, q: &vecs[i * dim..(i + 1) * dim], qtail: tails[i] };
        let mut ep = {
            let e = *entry;
            (ctx.dist(e), e)
        };
        let mut lev = *max_level;
        while lev > node_level {
            ep = search.greedy(&ctx, links, lev as usize, ep);
            lev -= 1;
        }
        let mut eps = vec![ep];
        let mut sel: Vec<u32> = Vec::new();
        for lev in (0..=node_level.min(*max_level)).rev() {
            let lev = lev as usize;
            search.search_layer(&ctx, links, lev, efc, &eps);
            select_neighbors(vecs, tails, dim, &search.out, m, &mut sel);
            let cap = if lev == 0 { 2 * m } else { m };
            for &nb in &sel {
                let lst = &mut links[nb as usize][lev];
                lst.push(id);
                if lst.len() > cap {
                    // Degree overflow: re-run the selection heuristic from
                    // the neighbor's point of view over its whole list.
                    let mut cands: Vec<(f32, u32)> =
                        lst.iter().map(|&x| (dist_items(vecs, tails, dim, nb, x), x)).collect();
                    cands.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    let mut kept = Vec::new();
                    select_neighbors(vecs, tails, dim, &cands, cap, &mut kept);
                    links[nb as usize][lev] = kept;
                }
            }
            links[i][lev] = std::mem::take(&mut sel);
            eps.clear();
            eps.extend_from_slice(&search.out);
        }
        if node_level > *max_level {
            *entry = id;
            *max_level = node_level;
        }
    }

    /// Appends one item to the live graph through the same greedy-search +
    /// link path the build uses: the embedding is MIPS-augmented against the
    /// frozen build `Φ²` (completion coordinate clamped at 0 for items that
    /// out-norm the build set — reachability degrades gracefully, probe
    /// scores stay exact, a background rebuild restores the invariant), its
    /// level comes from the same seeded stream a rebuild would draw, and it
    /// is immediately reachable by probes.
    ///
    /// Ids stay dense: `id` must equal the current catalog size.
    pub fn insert(&mut self, id: u32, embedding: &[f32]) -> io::Result<()> {
        if embedding.len() != self.dim {
            return Err(bad(format!(
                "insert embedding dim {} != index dim {}",
                embedding.len(),
                self.dim
            )));
        }
        if id as usize != self.n_items {
            return Err(bad(format!(
                "ids are dense: insert expected id {} got {id}",
                self.n_items
            )));
        }
        if embedding.iter().any(|x| !x.is_finite()) {
            return Err(bad("insert embedding contains nonfinite values"));
        }
        let n2: f64 = embedding.iter().map(|&x| x as f64 * x as f64).sum();
        let tail = (self.phi2 - n2).max(0.0).sqrt() as f32;
        let mut search = std::mem::take(&mut self.scratch);
        self.push_node(embedding, tail, &mut search);
        self.scratch = search;
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ann.inserts", 1);
            imcat_obs::counter_add("ann.hnsw.inserts", 1);
        }
        Ok(())
    }

    /// Catalog size currently covered by the graph.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Embedding dimension the index was built over.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The build seed (part of the identity checked by
    /// [`HnswIndex::matches`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The resolved degree bound the graph was built with.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The resolved construction beam width the graph was built with.
    pub fn ef_construction(&self) -> usize {
        self.ef_construction
    }

    /// True when this graph is exactly what [`HnswIndex::build`] would
    /// produce for `cfg` over an `n_items`-catalog with `seed`. `ef_search`
    /// is deliberately absent — it is query-time only, so one persisted
    /// graph serves a whole `ef_search` sweep, mirroring how `nprobe` never
    /// invalidates an IVF index.
    pub fn matches(&self, cfg: &AnnConfig, n_items: usize, dim: usize, seed: u64) -> bool {
        self.n_items == n_items
            && self.dim == dim
            && self.seed == seed
            && self.m == cfg.resolved_m(n_items)
            && self.ef_construction == cfg.resolved_ef_construction(n_items)
    }

    /// Probes the graph for the top candidates of `query`: greedy descent
    /// through the upper layers, an `ef`-wide beam at the base layer
    /// (`ef = max(nprobe, k)`, where the engine passes the resolved
    /// `ef_search` as `nprobe`), then the shared exact-re-rank contract —
    /// ascending candidate ids, exact f32 scores, remapped mask.
    ///
    /// `ef >= n_items` (and the empty graph) bypasses traversal for the
    /// exhaustive [`crate::ivf::ProbeScratch::set_brute`] path, bit-identical
    /// to [`crate::index::BruteIndex`] — including its scan of items the
    /// matrix holds *ahead* of the index during streaming.
    pub fn probe(
        &self,
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
        k: usize,
        nprobe: usize,
        scratch: &mut crate::ivf::ProbeScratch,
    ) {
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        assert!(
            items.rows() >= self.n_items && items.cols() == self.dim,
            "item matrix {:?} smaller than index ({}, {})",
            items.shape(),
            self.n_items,
            self.dim
        );
        let sp = imcat_obs::span("ann.hnsw.probe.seconds");
        let ef = nprobe.max(k).max(1);
        if self.entry == NO_ENTRY || ef >= self.n_items {
            scratch.set_brute(query, items, mask);
            drop(sp);
            if imcat_obs::enabled() {
                imcat_obs::counter_add("ann.probes", 1);
                imcat_obs::observe("ann.candidates", items.rows() as f64);
            }
            return;
        }
        let search = &mut scratch.graph;
        search.hops = 0;
        search.visited = 0;
        let ctx = Ctx { vecs: &self.vecs, tails: &self.tails, dim: self.dim, q: query, qtail: 0.0 };
        let mut ep = (ctx.dist(self.entry), self.entry);
        for lev in (1..=self.max_level).rev() {
            ep = search.greedy(&ctx, &self.links, lev as usize, ep);
        }
        search.search_layer(&ctx, &self.links, 0, ef, &[ep]);
        let mut ids = std::mem::take(&mut search.ids);
        ids.clear();
        ids.extend(search.out.iter().map(|&(_, id)| id));
        let (hops, visited) = (search.hops, search.visited);
        scratch.set_candidates(&ids, query, items, mask);
        scratch.graph.ids = ids;
        drop(sp);
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ann.probes", 1);
            imcat_obs::counter_add("ann.hnsw.hops", hops);
            imcat_obs::counter_add("ann.hnsw.visited", visited);
            imcat_obs::observe("ann.candidates", scratch.candidates().len() as f64);
        }
    }

    /// Structural validation mirroring [`crate::ivf::IvfIndex::validate`]:
    /// consistent array lengths, finite geometry, levels under the ceiling,
    /// degree caps respected, neighbor ids in range / non-self / reachable
    /// at their level, and a coherent entry point. Decode goes through this,
    /// so a graph that loads is a graph the engine can trust blindly.
    pub fn validate(&self) -> io::Result<()> {
        if self.m < 2 {
            return Err(bad(format!("hnsw degree bound m = {} below minimum 2", self.m)));
        }
        if self.ef_construction < self.m {
            return Err(bad("hnsw ef_construction below m"));
        }
        if !self.phi2.is_finite() || self.phi2 < 0.0 {
            return Err(bad("hnsw Φ² must be finite and non-negative"));
        }
        if self.vecs.len() != self.n_items * self.dim {
            return Err(bad("hnsw vector store length mismatch"));
        }
        if self.vecs.iter().any(|v| !v.is_finite()) {
            return Err(bad("hnsw vector store contains nonfinite values"));
        }
        if self.tails.len() != self.n_items {
            return Err(bad("hnsw tails length mismatch"));
        }
        if self.tails.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err(bad("hnsw tails must be finite and non-negative"));
        }
        if self.levels.len() != self.n_items || self.links.len() != self.n_items {
            return Err(bad("hnsw level/link arrays do not cover the catalog"));
        }
        if self.n_items == 0 {
            if self.entry != NO_ENTRY || self.max_level != 0 {
                return Err(bad("empty hnsw graph carries an entry point"));
            }
            return Ok(());
        }
        if self.entry as usize >= self.n_items {
            return Err(bad(format!("hnsw entry point {} out of range", self.entry)));
        }
        let top = self.levels.iter().copied().max().unwrap_or(0);
        if self.max_level != top || self.levels[self.entry as usize] != top {
            return Err(bad("hnsw entry point is not at the maximal level"));
        }
        for (id, (lists, &level)) in self.links.iter().zip(&self.levels).enumerate() {
            if level > MAX_LEVEL {
                return Err(bad(format!("hnsw node {id} level {level} above ceiling")));
            }
            if lists.len() != level as usize + 1 {
                return Err(bad(format!("hnsw node {id} link arrays contradict its level")));
            }
            for (lev, lst) in lists.iter().enumerate() {
                let cap = if lev == 0 { 2 * self.m } else { self.m };
                if lst.len() > cap {
                    return Err(bad(format!("hnsw node {id} exceeds its level-{lev} degree cap")));
                }
                for (pos, &nb) in lst.iter().enumerate() {
                    if nb as usize >= self.n_items {
                        return Err(bad(format!("hnsw neighbor {nb} out of range")));
                    }
                    if nb as usize == id {
                        return Err(bad(format!("hnsw node {id} links to itself")));
                    }
                    if (self.levels[nb as usize] as usize) < lev {
                        return Err(bad(format!(
                            "hnsw node {id} links to {nb} above that node's level"
                        )));
                    }
                    if lst[..pos].contains(&nb) {
                        return Err(bad(format!("hnsw node {id} holds duplicate neighbor {nb}")));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes the graph into the named `ann.hnsw.*` sections of `ck`,
    /// alongside whatever (artifact) sections it already holds.
    pub fn add_to_checkpoint(&self, ck: &mut Checkpoint) {
        let mut meta = Encoder::new();
        meta.put_u32(HNSW_VERSION);
        meta.put_u64(self.seed);
        meta.put_u64(self.m as u64);
        meta.put_u64(self.ef_construction as u64);
        meta.put_u64(self.dim as u64);
        meta.put_u64(self.n_items as u64);
        meta.put_u64(self.phi2.to_bits());
        meta.put_u32(self.entry);
        meta.put_u32(self.max_level);
        ck.insert(SEC_HNSW_META, meta.into_bytes());
        let mut ve = Encoder::new();
        ve.put_tensor(&Tensor::from_vec(self.n_items, self.dim, self.vecs.clone()));
        ve.put_u64(self.tails.len() as u64);
        for &t in &self.tails {
            ve.put_f32(t);
        }
        ck.insert(SEC_HNSW_VECS, ve.into_bytes());
        let mut le = Encoder::new();
        le.put_u32s(&self.levels);
        ck.insert(SEC_HNSW_LEVELS, le.into_bytes());
        // Adjacency, flattened level-major per node: for every node, for
        // every level 0..=levels[id], a count then that many neighbor ids —
        // insertion order preserved verbatim (it is part of the identity).
        let mut flat: Vec<u32> = Vec::new();
        for lists in &self.links {
            for lst in lists {
                flat.push(lst.len() as u32);
                flat.extend_from_slice(lst);
            }
        }
        let mut ge = Encoder::new();
        ge.put_u32s(&flat);
        ck.insert(SEC_HNSW_LINKS, ge.into_bytes());
    }

    /// Decodes and validates the `ann.hnsw.*` sections of `ck`, resolving
    /// each name through the container's committed generation (if any).
    /// `Ok(None)` when the container carries no graph; any malformed,
    /// truncated, or semantically invalid section is an error — nothing
    /// partial escapes.
    pub fn from_checkpoint(ck: &Checkpoint) -> io::Result<Option<Self>> {
        let Some(meta_bytes) = ck.resolve(SEC_HNSW_META) else {
            return Ok(None);
        };
        let mut meta = Decoder::new(meta_bytes);
        let version = meta.u32()?;
        if version != HNSW_VERSION {
            return Err(bad(format!("unsupported hnsw index version {version}")));
        }
        let seed = meta.u64()?;
        let m = meta.u64()? as usize;
        let ef_construction = meta.u64()? as usize;
        let dim = meta.u64()? as usize;
        let n_items = meta.u64()? as usize;
        let phi2 = f64::from_bits(meta.u64()?);
        let entry = meta.u32()?;
        let max_level = meta.u32()?;
        meta.finish()?;
        if dim == 0 {
            return Err(bad("zero-dim hnsw index"));
        }
        let mut ve = Decoder::new(ck.require_resolved(SEC_HNSW_VECS)?);
        let vt = ve.tensor()?;
        if vt.shape() != (n_items, dim) {
            return Err(bad(format!(
                "hnsw vector store shape {:?} contradicts meta ({n_items}, {dim})",
                vt.shape()
            )));
        }
        let nt = ve.u64()? as usize;
        // Overflow-proof form of `4 * nt > remaining` (tails are 4-byte f32s).
        if nt > ve.remaining() / 4 {
            return Err(bad("hnsw tails exceed remaining section bytes"));
        }
        let mut tails = Vec::with_capacity(nt);
        for _ in 0..nt {
            tails.push(ve.f32()?);
        }
        ve.finish()?;
        let mut le = Decoder::new(ck.require_resolved(SEC_HNSW_LEVELS)?);
        let levels = le.u32s()?;
        le.finish()?;
        if levels.len() != n_items {
            return Err(bad("hnsw levels do not cover the catalog"));
        }
        let mut ge = Decoder::new(ck.require_resolved(SEC_HNSW_LINKS)?);
        let flat = ge.u32s()?;
        ge.finish()?;
        let mut links = Vec::with_capacity(n_items);
        let mut cursor = 0usize;
        for &level in &levels {
            if level > MAX_LEVEL {
                return Err(bad(format!("hnsw level {level} above ceiling")));
            }
            let mut lists = Vec::with_capacity(level as usize + 1);
            for _ in 0..=level {
                let count =
                    *flat.get(cursor).ok_or_else(|| bad("hnsw adjacency stream truncated"))?
                        as usize;
                cursor += 1;
                if cursor + count > flat.len() {
                    return Err(bad("hnsw adjacency stream truncated"));
                }
                lists.push(flat[cursor..cursor + count].to_vec());
                cursor += count;
            }
            links.push(lists);
        }
        if cursor != flat.len() {
            return Err(bad("hnsw adjacency stream carries trailing data"));
        }
        let idx = Self {
            dim,
            n_items,
            seed,
            m,
            ef_construction,
            phi2,
            vecs: vt.as_slice().to_vec(),
            tails,
            levels,
            links,
            entry,
            max_level,
            scratch: GraphSearch::default(),
        };
        idx.validate()?;
        Ok(Some(idx))
    }
}

impl crate::index::AnnIndex for HnswIndex {
    fn kind(&self) -> AnnKind {
        AnnKind::Hnsw
    }

    fn n_items(&self) -> usize {
        self.n_items()
    }

    fn dim(&self) -> usize {
        self.dim()
    }

    fn probe(
        &self,
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
        k: usize,
        nprobe: usize,
        scratch: &mut crate::ivf::ProbeScratch,
    ) {
        HnswIndex::probe(self, query, items, mask, k, nprobe, scratch);
    }

    fn insert(&mut self, id: u32, embedding: &[f32]) -> io::Result<()> {
        HnswIndex::insert(self, id, embedding)
    }

    fn save_sections(&self, ck: &mut Checkpoint) {
        self.add_to_checkpoint(ck);
    }

    fn matches(&self, cfg: &AnnConfig, n_items: usize, dim: usize, seed: u64) -> bool {
        cfg.kind == AnnKind::Hnsw && HnswIndex::matches(self, cfg, n_items, dim, seed)
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}
