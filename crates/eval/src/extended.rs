//! Extended ranking metrics beyond the paper's Recall/NDCG: Precision@N,
//! Hit-Rate@N, MAP@N, MRR@N, catalogue coverage, and tag-based intra-list
//! diversity (the paper's introduction motivates IMCAT with "accurate and
//! diverse recommendation services"; these metrics let users quantify the
//! diversity side).

use imcat_data::SplitDataset;
use imcat_graph::jaccard_sorted;
use imcat_tensor::Tensor;

use crate::metrics::{top_n_masked_with, EvalSpec, EvalTarget, TopKScratch};

/// A bundle of ranking metrics at one cutoff.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExtendedMetrics {
    /// Mean Recall@N.
    pub recall: f64,
    /// Mean Precision@N.
    pub precision: f64,
    /// Fraction of users with at least one hit in the top N.
    pub hit_rate: f64,
    /// Mean average precision truncated at N.
    pub map: f64,
    /// Mean reciprocal rank of the first hit (0 when no hit in top N).
    pub mrr: f64,
    /// Fraction of the item catalogue recommended to at least one user.
    pub coverage: f64,
    /// Mean pairwise tag-set dissimilarity (1 - Jaccard) inside each top-N
    /// list; higher = more diverse recommendations.
    pub intra_list_diversity: f64,
    /// Users evaluated.
    pub n_users: usize,
}

/// Computes [`ExtendedMetrics`] over all selected users with a non-empty
/// target set.
pub fn evaluate_extended(
    score_fn: &mut dyn FnMut(&[u32]) -> Tensor,
    data: &SplitDataset,
    spec: &EvalSpec,
) -> ExtendedMetrics {
    let n = spec.k;
    let users: Vec<u32> = (0..data.n_users() as u32)
        .filter(|&u| {
            let held = match spec.target {
                EvalTarget::Validation => &data.val[u as usize],
                EvalTarget::Test => &data.test[u as usize],
            };
            !held.is_empty()
        })
        .collect();
    if users.is_empty() {
        return ExtendedMetrics::default();
    }
    let mut out = ExtendedMetrics { n_users: users.len(), ..Default::default() };
    let mut recommended = vec![false; data.n_items()];
    let mut scratch = TopKScratch::default();
    for chunk in users.chunks(256) {
        let scores = score_fn(chunk);
        for (row, &u) in chunk.iter().enumerate() {
            let train = data.train_items(u as usize);
            let top = top_n_masked_with(scores.row(row), train, n, &mut scratch);
            let truth = match spec.target {
                EvalTarget::Validation => &data.val[u as usize],
                EvalTarget::Test => &data.test[u as usize],
            };
            let mut hits = 0usize;
            let mut ap = 0.0f64;
            let mut first_hit_rank: Option<usize> = None;
            for (rank, j) in top.iter().enumerate() {
                recommended[*j as usize] = true;
                if truth.contains(j) {
                    hits += 1;
                    ap += hits as f64 / (rank + 1) as f64;
                    first_hit_rank.get_or_insert(rank);
                }
            }
            out.recall += hits as f64 / truth.len() as f64;
            out.precision += hits as f64 / n.max(1) as f64;
            out.hit_rate += if hits > 0 { 1.0 } else { 0.0 };
            out.map += if truth.is_empty() { 0.0 } else { ap / truth.len().min(n) as f64 };
            out.mrr += first_hit_rank.map_or(0.0, |r| 1.0 / (r + 1) as f64);
            out.intra_list_diversity += intra_list_diversity(data, top);
        }
    }
    let nf = users.len() as f64;
    out.recall /= nf;
    out.precision /= nf;
    out.hit_rate /= nf;
    out.map /= nf;
    out.mrr /= nf;
    out.intra_list_diversity /= nf;
    out.coverage = recommended.iter().filter(|&&b| b).count() as f64 / data.n_items().max(1) as f64;
    out
}

/// Mean pairwise `1 - Jaccard(tags_i, tags_j)` over a recommendation list
/// (1.0 for lists of < 2 items, the maximally-diverse degenerate case).
pub fn intra_list_diversity(data: &SplitDataset, items: &[u32]) -> f64 {
    if items.len() < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for (i, &a) in items.iter().enumerate() {
        for &b in &items[i + 1..] {
            let ta = data.item_tag.forward().row_indices(a as usize);
            let tb = data.item_tag.forward().row_indices(b as usize);
            total += 1.0 - jaccard_sorted(ta, tb) as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_data::Dataset;
    use imcat_tensor::Csr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixed_split() -> SplitDataset {
        let ui = Csr::from_adjacency(2, 12, &[(0..12).collect(), (0..12).collect()]);
        let it =
            Csr::from_adjacency(12, 4, &(0..12).map(|i| vec![(i % 4) as u32]).collect::<Vec<_>>());
        let d = Dataset::new("ext", ui, it);
        let mut rng = StdRng::seed_from_u64(3);
        d.split((0.7, 0.1, 0.2), &mut rng)
    }

    #[test]
    fn perfect_ranking_maximizes_everything() {
        let data = fixed_split();
        let t0 = data.test[0].clone();
        let t1 = data.test[1].clone();
        let mut score_fn = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 12);
            for (r, &u) in users.iter().enumerate() {
                let truth = if u == 0 { &t0 } else { &t1 };
                for &j in truth {
                    t.set(r, j as usize, 10.0);
                }
            }
            t
        };
        let m = evaluate_extended(&mut score_fn, &data, &EvalSpec::at(5));
        assert!((m.recall - 1.0).abs() < 1e-9);
        assert!((m.hit_rate - 1.0).abs() < 1e-9);
        assert!((m.map - 1.0).abs() < 1e-9);
        assert!((m.mrr - 1.0).abs() < 1e-9);
        assert!(m.precision > 0.0);
    }

    #[test]
    fn zero_scores_still_bounded() {
        let data = fixed_split();
        let mut score_fn = |users: &[u32]| Tensor::zeros(users.len(), 12);
        let m = evaluate_extended(&mut score_fn, &data, &EvalSpec::at(5));
        for v in [m.recall, m.precision, m.hit_rate, m.map, m.mrr, m.coverage] {
            assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
    }

    #[test]
    fn diversity_distinguishes_lists() {
        let data = fixed_split();
        // Items 0, 4, 8 share tag 0 -> zero diversity among themselves.
        let same = intra_list_diversity(&data, &[0, 4, 8]);
        // Items 0, 1, 2 have distinct tags -> full diversity.
        let diff = intra_list_diversity(&data, &[0, 1, 2]);
        assert!(same < 1e-9);
        assert!((diff - 1.0).abs() < 1e-9);
        assert_eq!(intra_list_diversity(&data, &[3]), 1.0);
    }

    #[test]
    fn coverage_counts_unique_recommendations() {
        let data = fixed_split();
        // Every user gets the same 5 items -> coverage 5/12.
        let mut score_fn = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 12);
            for r in 0..users.len() {
                for j in 0..5 {
                    t.set(r, j, (10 - j) as f32);
                }
            }
            t
        };
        // Mask nothing by evaluating against validation users with empty
        // training overlap is complicated; just check bounds + rough value.
        let m = evaluate_extended(&mut score_fn, &data, &EvalSpec::at(5));
        assert!(m.coverage <= 1.0 && m.coverage > 0.0);
    }
}
