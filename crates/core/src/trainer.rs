//! Generic training loop with validation-based early stopping (paper §V-D:
//! up to 3000 epochs, stop when validation Recall@20 has not improved for
//! 100 epochs; both scaled down by default for CPU runs), wall-clock
//! accounting for the efficiency analysis of Fig. 9, and crash-safe
//! checkpoint/resume.
//!
//! ## Checkpointing
//!
//! With [`TrainerConfig::checkpoint_dir`] set and
//! [`TrainerConfig::checkpoint_every`] > 0, the trainer atomically writes
//! `trainer.ckpt` into the directory at every N-th epoch boundary, capturing
//! the *entire* run state: the model's parameters and optimizer moments (via
//! [`RecModel::save_state`]), the exact RNG stream position, the
//! early-stopping bookkeeping, and the epoch counter. [`train`] resumes
//! automatically when a matching checkpoint exists; because the RNG stream
//! position is restored exactly (not reseeded), a resumed run is bit-for-bit
//! identical to an uninterrupted one at any `IMCAT_THREADS` setting. Models
//! that do not implement [`RecModel::save_state`] train normally with a
//! `checkpoint_skip` telemetry event.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

use imcat_ckpt::{Checkpoint, Decoder, Encoder};
use imcat_data::SplitDataset;
use imcat_models::RecModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stopping patience in evaluation rounds.
    pub patience: usize,
    /// Evaluate on validation every this many epochs.
    pub eval_every: usize,
    /// Cutoff `N` for validation Recall@N.
    pub eval_at: usize,
    /// RNG seed for sampling during training.
    pub seed: u64,
    /// Write a checkpoint every this many epochs (0 disables checkpointing).
    pub checkpoint_every: usize,
    /// Directory for `trainer.ckpt`; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a frozen inference artifact (resolved embeddings + train masks,
    /// see [`imcat_ckpt::Artifact`]) here every time validation recall
    /// improves; `None` disables artifact export. Models whose scoring is not
    /// a user–item dot product skip the export with an `artifact_skip` event.
    pub artifact_path: Option<PathBuf>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            max_epochs: 120,
            patience: 5,
            eval_every: 5,
            eval_at: 20,
            seed: 7,
            checkpoint_every: 0,
            checkpoint_dir: None,
            artifact_path: None,
        }
    }
}

impl TrainerConfig {
    /// The checkpoint file path, when checkpointing is enabled.
    pub fn checkpoint_path(&self) -> Option<PathBuf> {
        if self.checkpoint_every == 0 {
            return None;
        }
        self.checkpoint_dir.as_ref().map(|d| d.join("trainer.ckpt"))
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Model name.
    pub model: String,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Best validation Recall@N seen.
    pub best_val_recall: f64,
    /// Mean training loss of the final epoch.
    pub final_loss: f32,
    /// Total wall-clock training time in seconds (excludes evaluation;
    /// accumulates across resumed segments).
    pub train_seconds: f64,
    /// Validation recall trajectory `(epoch, recall)`.
    pub curve: Vec<(usize, f64)>,
    /// When the run resumed from a checkpoint, the epoch it resumed after.
    pub resumed_from: Option<usize>,
    /// Where the best-epoch inference artifact was written, when
    /// [`TrainerConfig::artifact_path`] was set and the model supports export.
    pub artifact: Option<PathBuf>,
}

/// Validation Recall@N (training items masked), shared by the trainer and the
/// experiment harness.
pub fn validation_recall(model: &dyn RecModel, data: &SplitDataset, n: usize) -> f64 {
    let users: Vec<u32> =
        (0..data.n_users() as u32).filter(|&u| !data.val[u as usize].is_empty()).collect();
    if users.is_empty() {
        return 0.0;
    }
    let _sp = imcat_obs::span("phase.eval");
    let scores = model.score_users(&users);
    // Scoring happens above on this thread (models are not `Sync`); the
    // per-user ranking math fans out over the pool. Each user fills its own
    // slot and the slots are reduced in user order, so the recall is
    // bit-identical for any thread count.
    let mut per_user = vec![(0.0f64, 0u64); users.len()];
    imcat_par::global().parallel_chunks_mut(&mut per_user, 64, |ci, slots| {
        let mut train_set: HashSet<u32> = HashSet::new();
        for (off, slot) in slots.iter_mut().enumerate() {
            let row = ci * 64 + off;
            let u = users[row];
            train_set.clear();
            train_set.extend(data.train_items(u as usize).iter().copied());
            let mut ranked: Vec<(usize, f32)> = scores
                .row(row)
                .iter()
                .copied()
                .enumerate()
                .filter(|&(j, _)| !train_set.contains(&(j as u32)))
                .collect();
            let bad = ranked.iter().filter(|(_, s)| !s.is_finite()).count() as u64;
            // total_cmp keeps the ranking well-defined even when a diverged
            // model produces NaN scores; the guard event below makes that
            // visible.
            let top_n = n.min(ranked.len());
            if top_n > 0 && top_n < ranked.len() {
                ranked.select_nth_unstable_by(top_n - 1, |a, b| b.1.total_cmp(&a.1));
            }
            let top: HashSet<usize> = ranked[..top_n].iter().map(|&(j, _)| j).collect();
            let val = &data.val[u as usize];
            let hits = val.iter().filter(|&&t| top.contains(&(t as usize))).count();
            *slot = (hits as f64 / val.len() as f64, bad);
        }
    });
    let mut total = 0.0;
    let mut nonfinite = 0u64;
    for &(recall, bad) in &per_user {
        total += recall;
        nonfinite += bad;
    }
    if nonfinite > 0 && imcat_obs::enabled() {
        imcat_obs::counter_add("guard.nonfinite_score", nonfinite);
        imcat_obs::emit(
            "nonfinite_scores",
            vec![("elements", imcat_obs::Json::Num(nonfinite as f64))],
        );
    }
    total / users.len() as f64
}

/// Mutable loop state captured into (and restored from) a checkpoint.
struct LoopState {
    epoch: usize,
    best: f64,
    since_best: usize,
    final_loss: f32,
    train_seconds: f64,
    curve: Vec<(usize, f64)>,
}

fn encode_trainer_section(s: &LoopState) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(s.epoch as u64);
    enc.put_f64(s.best);
    enc.put_u64(s.since_best as u64);
    enc.put_f32(s.final_loss);
    enc.put_f64(s.train_seconds);
    enc.put_u32(s.curve.len() as u32);
    for &(e, r) in &s.curve {
        enc.put_u64(e as u64);
        enc.put_f64(r);
    }
    enc.into_bytes()
}

fn decode_trainer_section(bytes: &[u8]) -> std::io::Result<LoopState> {
    let mut dec = Decoder::new(bytes);
    let epoch = dec.u64()? as usize;
    let best = dec.f64()?;
    let since_best = dec.u64()? as usize;
    let final_loss = dec.f32()?;
    let train_seconds = dec.f64()?;
    let n = dec.u32()? as usize;
    let mut curve = Vec::with_capacity(n);
    for _ in 0..n {
        let e = dec.u64()? as usize;
        let r = dec.f64()?;
        curve.push((e, r));
    }
    dec.finish()?;
    Ok(LoopState { epoch, best, since_best, final_loss, train_seconds, curve })
}

fn save_checkpoint(
    path: &Path,
    model_name: &str,
    seed: u64,
    state: &LoopState,
    rng: &StdRng,
    model_bytes: Vec<u8>,
) -> std::io::Result<u64> {
    let mut ck = Checkpoint::new();
    let mut meta = Encoder::new();
    meta.put_str(model_name);
    meta.put_u64(seed);
    ck.insert("meta", meta.into_bytes());
    ck.insert("trainer", encode_trainer_section(state));
    let mut rs = Encoder::new();
    rs.put_u64s(&rng.state());
    ck.insert("rng", rs.into_bytes());
    ck.insert("model", model_bytes);
    ck.save(path)
}

/// Validates and applies a checkpoint; on any error the model and the
/// returned state are untouched (everything is decoded before mutation).
fn resume_from_checkpoint(
    ck: &Checkpoint,
    model: &mut dyn RecModel,
    cfg: &TrainerConfig,
) -> std::io::Result<(LoopState, StdRng)> {
    let invalid = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let mut meta = Decoder::new(ck.require("meta")?);
    let name = meta.str()?;
    if name != model.name() {
        return Err(invalid(format!("checkpoint is for model '{name}', not '{}'", model.name())));
    }
    let seed = meta.u64()?;
    if seed != cfg.seed {
        return Err(invalid(format!("checkpoint used seed {seed}, this run uses {}", cfg.seed)));
    }
    meta.finish()?;
    let state = decode_trainer_section(ck.require("trainer")?)?;
    let mut rng_dec = Decoder::new(ck.require("rng")?);
    let rng_words = rng_dec.u64s()?;
    rng_dec.finish()?;
    let rng_state: [u64; 4] =
        rng_words.as_slice().try_into().map_err(|_| invalid("rng state is not 4 words".into()))?;
    if rng_state == [0; 4] {
        return Err(invalid("rng state is degenerate (all zero)".into()));
    }
    model.load_state(ck.require("model")?)?;
    Ok((state, StdRng::from_state(rng_state)))
}

/// Trains `model` until early stopping or `max_epochs`, reporting the best
/// validation recall and wall-clock time. When checkpointing is configured
/// (see [`TrainerConfig::checkpoint_path`]) and a compatible checkpoint
/// exists, the run resumes from it and reproduces the uninterrupted run
/// bit-for-bit; an incompatible or corrupted checkpoint falls back to a
/// fresh start with a warning.
pub fn train(model: &mut dyn RecModel, data: &SplitDataset, cfg: &TrainerConfig) -> TrainReport {
    let telemetry = imcat_obs::enabled();
    let ckpt_path = cfg.checkpoint_path();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best = f64::MIN;
    let mut since_best = 0usize;
    let mut train_seconds = 0.0;
    let mut final_loss = 0.0;
    let mut curve = Vec::new();
    let mut epochs_run = 0;
    let mut start_epoch = 1usize;
    let mut resumed_from = None;
    if let Some(path) = &ckpt_path {
        match Checkpoint::load(path) {
            Ok(ck) => match resume_from_checkpoint(&ck, model, cfg) {
                Ok((state, restored_rng)) => {
                    rng = restored_rng;
                    best = state.best;
                    since_best = state.since_best;
                    train_seconds = state.train_seconds;
                    final_loss = state.final_loss;
                    curve = state.curve;
                    epochs_run = state.epoch;
                    start_epoch = state.epoch + 1;
                    resumed_from = Some(state.epoch);
                    if telemetry {
                        imcat_obs::counter_add("ckpt.resumes", 1);
                        imcat_obs::emit(
                            "resume",
                            vec![
                                ("model", imcat_obs::Json::Str(model.name())),
                                ("from_epoch", imcat_obs::Json::Num(state.epoch as f64)),
                            ],
                        );
                    }
                }
                Err(e) => {
                    eprintln!("trainer: ignoring incompatible checkpoint {}: {e}", path.display());
                    if telemetry {
                        imcat_obs::emit(
                            "checkpoint_mismatch",
                            vec![("error", imcat_obs::Json::Str(e.to_string()))],
                        );
                    }
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!("trainer: ignoring unreadable checkpoint {}: {e}", path.display());
            }
        }
    }
    let mut skip_emitted = false;
    let mut artifact_written = ArtifactStatus::NotWritten;
    for epoch in start_epoch..=cfg.max_epochs {
        let t0 = Instant::now();
        let stats = model.train_epoch(&mut rng);
        let epoch_seconds = t0.elapsed().as_secs_f64();
        train_seconds += epoch_seconds;
        final_loss = stats.loss;
        epochs_run = epoch;
        if telemetry {
            if !stats.loss.is_finite() {
                imcat_obs::counter_add("guard.nonfinite_loss", 1);
            }
            imcat_obs::emit(
                "epoch",
                vec![
                    ("epoch", imcat_obs::Json::Num(epoch as f64)),
                    ("loss", imcat_obs::Json::Num(stats.loss as f64)),
                    ("batches", imcat_obs::Json::Num(stats.batches as f64)),
                    ("seconds", imcat_obs::Json::Num(epoch_seconds)),
                ],
            );
        }
        if epoch % cfg.eval_every == 0 {
            let recall = validation_recall(model, data, cfg.eval_at);
            curve.push((epoch, recall));
            if telemetry {
                imcat_obs::gauge_set("eval.val_recall", recall);
                imcat_obs::emit(
                    "eval",
                    vec![
                        ("epoch", imcat_obs::Json::Num(epoch as f64)),
                        ("recall", imcat_obs::Json::Num(recall)),
                        ("best", imcat_obs::Json::Num(best.max(recall).max(0.0))),
                    ],
                );
            }
            if recall > best {
                best = recall;
                since_best = 0;
                if let Some(path) = &cfg.artifact_path {
                    export_best_artifact(
                        model,
                        data,
                        path,
                        epoch,
                        &mut artifact_written,
                        telemetry,
                    );
                }
            } else {
                since_best += 1;
                if since_best >= cfg.patience {
                    if telemetry {
                        imcat_obs::emit(
                            "early_stop",
                            vec![
                                ("epoch", imcat_obs::Json::Num(epoch as f64)),
                                ("best_recall", imcat_obs::Json::Num(best.max(0.0))),
                            ],
                        );
                    }
                    break;
                }
            }
        }
        if let Some(path) = &ckpt_path {
            if epoch % cfg.checkpoint_every == 0 {
                match model.save_state() {
                    Some(model_bytes) => {
                        let state = LoopState {
                            epoch,
                            best,
                            since_best,
                            final_loss,
                            train_seconds,
                            curve: curve.clone(),
                        };
                        match save_checkpoint(
                            path,
                            &model.name(),
                            cfg.seed,
                            &state,
                            &rng,
                            model_bytes,
                        ) {
                            Ok(bytes) => {
                                if telemetry {
                                    imcat_obs::emit(
                                        "checkpoint",
                                        vec![
                                            ("epoch", imcat_obs::Json::Num(epoch as f64)),
                                            ("bytes", imcat_obs::Json::Num(bytes as f64)),
                                        ],
                                    );
                                }
                            }
                            Err(e) => {
                                eprintln!(
                                    "trainer: checkpoint save to {} failed: {e}",
                                    path.display()
                                );
                            }
                        }
                    }
                    None => {
                        if !skip_emitted {
                            skip_emitted = true;
                            if telemetry {
                                imcat_obs::counter_add("ckpt.skips", 1);
                                imcat_obs::emit(
                                    "checkpoint_skip",
                                    vec![("model", imcat_obs::Json::Str(model.name()))],
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    TrainReport {
        model: model.name(),
        epochs_run,
        best_val_recall: best.max(0.0),
        final_loss,
        train_seconds,
        curve,
        resumed_from,
        artifact: match artifact_written {
            ArtifactStatus::Written => cfg.artifact_path.clone(),
            _ => None,
        },
    }
}

/// Whether the best-epoch artifact made it to disk during this run.
enum ArtifactStatus {
    NotWritten,
    Written,
    Unsupported,
}

/// Exports the model's frozen inference artifact after a validation-recall
/// improvement. Failures never abort training: an unsupported model logs one
/// `artifact_skip` event, an I/O error is printed and retried at the next
/// improvement.
fn export_best_artifact(
    model: &dyn RecModel,
    data: &SplitDataset,
    path: &Path,
    epoch: usize,
    status: &mut ArtifactStatus,
    telemetry: bool,
) {
    if matches!(status, ArtifactStatus::Unsupported) {
        return;
    }
    let Some(artifact) = model.export_artifact(data) else {
        *status = ArtifactStatus::Unsupported;
        if telemetry {
            imcat_obs::counter_add("artifact.skips", 1);
            imcat_obs::emit("artifact_skip", vec![("model", imcat_obs::Json::Str(model.name()))]);
        }
        return;
    };
    match artifact.save(path) {
        Ok(bytes) => {
            *status = ArtifactStatus::Written;
            if telemetry {
                imcat_obs::emit(
                    "artifact",
                    vec![
                        ("epoch", imcat_obs::Json::Num(epoch as f64)),
                        ("bytes", imcat_obs::Json::Num(bytes as f64)),
                    ],
                );
            }
        }
        Err(e) => {
            eprintln!("trainer: artifact export to {} failed: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_models::test_util::tiny_split;
    use imcat_models::{Bprmf, TrainConfig};

    #[test]
    fn trainer_runs_and_reports() {
        let data = tiny_split(301);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let cfg =
            TrainerConfig { max_epochs: 20, eval_every: 5, patience: 2, ..Default::default() };
        let report = train(&mut model, &data, &cfg);
        assert_eq!(report.model, "BPRMF");
        assert!(report.epochs_run >= 5);
        assert!(report.best_val_recall > 0.0);
        assert!(report.train_seconds > 0.0);
        assert!(!report.curve.is_empty());
    }

    #[test]
    fn early_stopping_triggers() {
        let data = tiny_split(302);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        // Patience 1 with eval every epoch: stops quickly once flat.
        let cfg =
            TrainerConfig { max_epochs: 200, eval_every: 1, patience: 1, ..Default::default() };
        let report = train(&mut model, &data, &cfg);
        assert!(report.epochs_run < 200, "early stopping never fired");
    }

    #[test]
    fn best_epoch_artifact_is_written_and_loadable() {
        let data = tiny_split(304);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let dir = std::env::temp_dir().join("imcat-trainer-artifact-304");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.artifact");
        let cfg = TrainerConfig {
            max_epochs: 10,
            eval_every: 5,
            patience: 2,
            artifact_path: Some(path.clone()),
            ..Default::default()
        };
        let report = train(&mut model, &data, &cfg);
        assert_eq!(report.artifact.as_deref(), Some(path.as_path()));
        let art = imcat_ckpt::Artifact::load(&path).unwrap();
        assert_eq!(art.model, "BPRMF");
        assert_eq!(art.n_users(), data.n_users());
        assert_eq!(art.n_items(), data.n_items());
        for u in 0..data.n_users() {
            assert_eq!(art.masks[u], data.train_items(u));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_dot_product_model_skips_artifact() {
        let data = tiny_split(305);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = imcat_models::Neumf::new(&data, TrainConfig::default(), &mut rng);
        let dir = std::env::temp_dir().join("imcat-trainer-artifact-305");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.artifact");
        let cfg = TrainerConfig {
            max_epochs: 5,
            eval_every: 5,
            patience: 1,
            artifact_path: Some(path.clone()),
            ..Default::default()
        };
        let report = train(&mut model, &data, &cfg);
        assert!(report.artifact.is_none());
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_recall_in_unit_range() {
        let data = tiny_split(303);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let r = validation_recall(&model, &data, 20);
        assert!((0.0..=1.0).contains(&r));
    }
}
