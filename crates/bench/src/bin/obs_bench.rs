//! Telemetry overhead benchmark: measures the per-call cost of the hot
//! `imcat-obs` primitives (counters, histograms, spans, traces) and the
//! end-to-end serving QPS delta with telemetry on versus off.
//!
//! The registry is designed so the instrumented hot path costs a handful of
//! nanoseconds: per-thread shards mean a counter bump is one plain load +
//! store on a cache line nobody else writes. This binary checks that claim
//! stays true:
//!
//! * **microbenches** — best-of-3 ns/op for every primitive, including the
//!   disabled path (the cost when telemetry is off);
//! * **serve A/B** — interleaved off/on arms replaying the same Zipf stream
//!   through a synthetic-artifact [`imcat_serve::Engine`], comparing best-arm
//!   QPS.
//!
//! With `IMCAT_OBS_BENCH_GATE=1` the binary exits nonzero when a named-counter
//! add exceeds `IMCAT_OBS_BENCH_MAX_NS` (default 20 ns) or the serve QPS
//! regression exceeds `IMCAT_OBS_BENCH_MAX_PCT` (default 1.0 %). CI runs it
//! in release mode as part of the obs-smoke job.
//!
//! Usage: `cargo run --release -p imcat-bench --bin obs_bench`

use std::hint::black_box;
use std::time::Instant;

use imcat_bench::{logln, write_json, ExpLog};
use imcat_ckpt::Artifact;
use imcat_serve::{Engine, ServeConfig};
use imcat_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

static BENCH_COUNTER: imcat_obs::Counter = imcat_obs::Counter::new("obs_bench.handle");
static BENCH_HIST: imcat_obs::Hist = imcat_obs::Hist::new("obs_bench.handle.seconds");

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Best-of-3 timing of `iters` calls to `f`, in ns per call.
fn bench_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    best
}

struct Micro {
    name: String,
    ns_per_op: f64,
}

imcat_obs::impl_to_json!(Micro { name, ns_per_op });

fn microbenches() -> Vec<Micro> {
    const ITERS: u64 = 1_000_000;
    imcat_obs::set_enabled(true);
    imcat_obs::register_thread();
    // Warm the thread-local slot and name interning before measuring.
    imcat_obs::counter_add("obs_bench.named", 1);
    BENCH_COUNTER.add(1);
    BENCH_HIST.observe(1.0e-6);

    let mut rows = Vec::new();
    let mut push = |name: &str, ns: f64| rows.push(Micro { name: name.to_string(), ns_per_op: ns });

    push(
        "counter_add(name)",
        bench_ns(ITERS, || imcat_obs::counter_add(black_box("obs_bench.named"), 1)),
    );
    push("Counter::add (static handle)", bench_ns(ITERS, || BENCH_COUNTER.add(black_box(1))));
    push(
        "observe(name)",
        bench_ns(ITERS, || imcat_obs::observe(black_box("obs_bench.named.seconds"), 1.0e-6)),
    );
    push(
        "Hist::observe (static handle)",
        bench_ns(ITERS, || BENCH_HIST.observe(black_box(1.0e-6))),
    );
    push("gauge_set", bench_ns(ITERS, || imcat_obs::gauge_set(black_box("obs_bench.gauge"), 1.0)));
    push(
        "span create+drop",
        bench_ns(ITERS / 4, || drop(black_box(imcat_obs::span("obs_bench.span.seconds")))),
    );
    push(
        "trace::request (fast path)",
        bench_ns(ITERS / 16, || {
            drop(black_box(imcat_obs::trace::request(
                "obs_bench.req",
                "obs_bench.req.seconds",
                false,
            )))
        }),
    );
    push(
        "trace::request (forced sample)",
        bench_ns(ITERS / 64, || {
            drop(black_box(imcat_obs::trace::request(
                "obs_bench.req",
                "obs_bench.req.seconds",
                true,
            )))
        }),
    );

    imcat_obs::set_enabled(false);
    push(
        "counter_add (telemetry off)",
        bench_ns(ITERS, || imcat_obs::counter_add(black_box("obs_bench.named"), 1)),
    );
    push(
        "span create+drop (telemetry off)",
        bench_ns(ITERS, || drop(black_box(imcat_obs::span("obs_bench.span.seconds")))),
    );
    imcat_obs::set_enabled(true);
    rows
}

/// Deterministic synthetic artifact: unit-ish random embeddings, no masks.
/// Big enough that a cache miss costs a real matmul (items x dim per user).
fn synthetic_artifact(users: usize, items: usize, dim: usize) -> Artifact {
    let mut rng = StdRng::seed_from_u64(0x0b5);
    let mut fill = |n: usize| -> Vec<f32> { (0..n).map(|_| rng.gen::<f32>() - 0.5).collect() };
    let user_emb = Tensor::from_vec(users, dim, fill(users * dim));
    let item_emb = Tensor::from_vec(items, dim, fill(items * dim));
    Artifact::new("obs_bench-synthetic", user_emb, item_emb, vec![Vec::new(); users])
}

struct Arm {
    telemetry: bool,
    qps: f64,
}

imcat_obs::impl_to_json!(Arm { telemetry, qps });

/// Replays the stream through a fresh engine and returns QPS.
fn serve_arm(artifact: &Artifact, stream: &[(u32, usize)], batch: usize) -> f64 {
    let cfg = ServeConfig { cache_capacity: 256, ..Default::default() };
    let mut engine = Engine::new(artifact.clone(), cfg).expect("synthetic artifact must validate");
    let t0 = Instant::now();
    for tick in stream.chunks(batch) {
        let out = engine.recommend_batch(tick);
        assert_eq!(out.len(), tick.len());
    }
    stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let mut log = ExpLog::new("obs_bench");
    let gate = std::env::var("IMCAT_OBS_BENCH_GATE").as_deref() == Ok("1");
    let max_counter_ns = env_f64("IMCAT_OBS_BENCH_MAX_NS", 20.0);
    let max_overhead_pct = env_f64("IMCAT_OBS_BENCH_MAX_PCT", 1.0);

    logln!(log, "obs_bench: telemetry primitive costs (best of 3)");
    let micros = microbenches();
    for m in &micros {
        logln!(log, "  {:<34} {:>8.1} ns/op", m.name, m.ns_per_op);
    }

    // Serve A/B: interleave off/on arms so drift (thermal, page cache) hits
    // both equally; compare best arms to cut scheduler noise.
    let users = 512;
    let items = 4096;
    let dim = 32;
    let batch = 32;
    let artifact = synthetic_artifact(users, items, dim);
    let cdf: Vec<f64> = {
        let mut acc = 0.0;
        let mut v: Vec<f64> = (0..users).map(|r| 1.0 / ((r + 1) as f64).powf(1.1)).collect();
        for x in &mut v {
            acc += *x;
            *x = acc;
        }
        for x in &mut v {
            *x /= acc;
        }
        v
    };
    let mut rng = StdRng::seed_from_u64(0x5123);
    let stream: Vec<(u32, usize)> = (0..8192)
        .map(|_| {
            let x: f64 = rng.gen();
            (cdf.partition_point(|&p| p < x).min(users - 1) as u32, 20)
        })
        .collect();

    // Warm-up arm, unmeasured.
    imcat_obs::set_enabled(false);
    serve_arm(&artifact, &stream, batch);

    let mut arms: Vec<Arm> = Vec::new();
    for round in 0..6 {
        for on in [false, true] {
            imcat_obs::set_enabled(on);
            let qps = serve_arm(&artifact, &stream, batch);
            logln!(
                log,
                "  serve arm {round} obs={}: {qps:>9.0} qps",
                if on { "on " } else { "off" }
            );
            arms.push(Arm { telemetry: on, qps });
        }
    }
    imcat_obs::set_enabled(false);

    // Per-round paired overhead: each round's off/on arms run back-to-back,
    // so their ratio cancels slow drift. Gate on the *minimum* across rounds:
    // a systematic regression slows every round, while one noisy arm cannot
    // fail the gate on its own.
    let best =
        |on: bool| arms.iter().filter(|a| a.telemetry == on).map(|a| a.qps).fold(0.0f64, f64::max);
    let (off, on) = (best(false), best(true));
    let overhead_pct = arms
        .chunks(2)
        .map(|pair| (pair[0].qps - pair[1].qps) / pair[0].qps * 100.0)
        .fold(f64::INFINITY, f64::min);
    logln!(
        log,
        "serve {users}x{items} d={dim} batch={batch}: best off {off:.0} qps, best on {on:.0} \
         qps, paired overhead (min over rounds) {overhead_pct:+.2}%"
    );

    let counter_ns = micros
        .iter()
        .find(|m| m.name.starts_with("counter_add(name)"))
        .map_or(f64::INFINITY, |m| m.ns_per_op);
    let report = (micros, arms, overhead_pct);
    let path = write_json("obs_bench", &Json3(report));
    logln!(log, "report written to {}", path.display());

    if gate {
        let mut failed = false;
        if counter_ns > max_counter_ns {
            eprintln!("GATE FAIL: counter_add {counter_ns:.1} ns/op > {max_counter_ns} ns");
            failed = true;
        }
        if overhead_pct > max_overhead_pct {
            eprintln!(
                "GATE FAIL: telemetry costs {overhead_pct:.2}% serve QPS > {max_overhead_pct}%"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        logln!(
            log,
            "gates pass: counter {counter_ns:.1} ns <= {max_counter_ns} ns, \
             overhead {overhead_pct:.2}% <= {max_overhead_pct}%"
        );
    }
}

/// Report wrapper so the tuple renders as a labelled JSON object.
struct Json3((Vec<Micro>, Vec<Arm>, f64));

impl imcat_obs::ToJson for Json3 {
    fn to_json(&self) -> imcat_obs::Json {
        let (micros, arms, overhead) = &self.0;
        imcat_obs::Json::obj(vec![
            ("micro", imcat_obs::ToJson::to_json(micros)),
            ("serve_arms", imcat_obs::ToJson::to_json(arms)),
            ("serve_overhead_pct", imcat_obs::Json::Num(*overhead)),
        ])
    }
}
