//! Trainable parameter storage with sparse-gradient bookkeeping.
//!
//! Embedding tables in recommendation models are large but each training step
//! touches only a few rows. [`ParamStore`] therefore tracks *which rows* of
//! each parameter received gradient so the optimizer ([`crate::optim::Adam`])
//! can skip untouched rows entirely — the "lazy Adam" pattern that makes CPU
//! training of the paper's 14 models practical.

use crate::tensor::Tensor;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// One trainable tensor plus its gradient accumulator.
#[derive(Debug)]
pub struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
    touched: Vec<bool>,
    touched_list: Vec<u32>,
}

impl Param {
    /// Parameter name (for debugging / serialization).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Accumulated gradient (valid for touched rows only).
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Rows that received gradient since the last optimizer step.
    pub fn touched_rows(&self) -> &[u32] {
        &self.touched_list
    }

    /// Visits `(row, value_row, grad_row)` for each touched row, then clears
    /// the touched set and zeroes visited gradient rows. Parameter-local so
    /// the optimizer can drain disjoint `&mut Param`s from several threads.
    pub(crate) fn drain_touched_rows(&mut self, mut f: impl FnMut(u32, &mut [f32], &[f32])) {
        let cols = self.grad.cols();
        for &r in &self.touched_list {
            let base = r as usize * cols;
            // Split borrows: value and grad live in different tensors.
            let grad_row: Vec<f32> = self.grad.as_slice()[base..base + cols].to_vec();
            f(r, self.value.row_mut(r as usize), &grad_row);
            self.grad.as_mut_slice()[base..base + cols].iter_mut().for_each(|x| *x = 0.0);
            self.touched[r as usize] = false;
        }
        self.touched_list.clear();
    }
}

/// Collection of all trainable parameters of a model.
#[derive(Debug, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            name: name.into(),
            value,
            grad: Tensor::zeros(r, c),
            touched: vec![false; r],
            touched_list: Vec::new(),
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Borrow a parameter record.
    pub fn param(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Borrow a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutably borrow a parameter value (e.g. for manual initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Marks `row` touched and adds `g_row` into the gradient accumulator.
    pub(crate) fn accum_grad_row(&mut self, id: ParamId, row: u32, g_row: &[f32]) {
        let p = &mut self.params[id.0];
        debug_assert_eq!(g_row.len(), p.grad.cols());
        if !p.touched[row as usize] {
            p.touched[row as usize] = true;
            p.touched_list.push(row);
        }
        for (dst, &src) in p.grad.row_mut(row as usize).iter_mut().zip(g_row) {
            *dst += src;
        }
    }

    /// Adds a dense gradient, marking every row touched.
    pub(crate) fn accum_grad_dense(&mut self, id: ParamId, g: &Tensor) {
        let p = &mut self.params[id.0];
        assert_eq!(p.grad.shape(), g.shape(), "dense grad shape mismatch for {}", p.name);
        p.grad.add_assign(g);
        if p.touched_list.len() != p.touched.len() {
            for r in 0..p.touched.len() {
                if !p.touched[r] {
                    p.touched[r] = true;
                    p.touched_list.push(r as u32);
                }
            }
        }
    }

    /// Visits `(value_row, grad_row)` for each touched row of `id`, then
    /// clears the touched set and zeroes visited gradient rows.
    ///
    /// This is the single pass the optimizer makes per step.
    pub fn drain_touched(&mut self, id: ParamId, f: impl FnMut(u32, &mut [f32], &[f32])) {
        self.params[id.0].drain_touched_rows(f);
    }

    /// Mutable access to every parameter record, in registration order. Used
    /// by the optimizer to split the store into disjoint per-parameter work
    /// units for the thread pool.
    pub(crate) fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    /// Clears every gradient and touched flag (used between evaluation passes).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            for &r in &p.touched_list {
                let cols = p.grad.cols();
                let base = r as usize * cols;
                p.grad.as_mut_slice()[base..base + cols].iter_mut().for_each(|x| *x = 0.0);
                p.touched[r as usize] = false;
            }
            p.touched_list.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.add("emb", Tensor::zeros(4, 2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.value(id).shape(), (4, 2));
        assert_eq!(s.param(id).name(), "emb");
        assert_eq!(s.num_weights(), 8);
    }

    #[test]
    fn sparse_grad_accumulation_tracks_rows() {
        let mut s = ParamStore::new();
        let id = s.add("emb", Tensor::zeros(4, 2));
        s.accum_grad_row(id, 2, &[1.0, 2.0]);
        s.accum_grad_row(id, 2, &[0.5, 0.5]);
        s.accum_grad_row(id, 0, &[3.0, 0.0]);
        assert_eq!(s.param(id).touched_rows(), &[2, 0]);
        assert_eq!(s.param(id).grad().row(2), &[1.5, 2.5]);
        assert_eq!(s.param(id).grad().row(0), &[3.0, 0.0]);
    }

    #[test]
    fn dense_grad_touches_everything() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(3, 1));
        s.accum_grad_dense(id, &Tensor::from_vec(3, 1, vec![1., 2., 3.]));
        assert_eq!(s.param(id).touched_rows().len(), 3);
    }

    #[test]
    fn drain_touched_applies_and_clears() {
        let mut s = ParamStore::new();
        let id = s.add("emb", Tensor::zeros(4, 2));
        s.accum_grad_row(id, 1, &[1.0, 1.0]);
        s.drain_touched(id, |_r, val, grad| {
            for (v, g) in val.iter_mut().zip(grad) {
                *v -= 0.1 * g;
            }
        });
        assert_eq!(s.value(id).row(1), &[-0.1, -0.1]);
        assert!(s.param(id).touched_rows().is_empty());
        assert_eq!(s.param(id).grad().row(1), &[0.0, 0.0]);
    }

    #[test]
    fn zero_grads_resets() {
        let mut s = ParamStore::new();
        let id = s.add("emb", Tensor::zeros(2, 2));
        s.accum_grad_row(id, 0, &[5.0, 5.0]);
        s.zero_grads();
        assert!(s.param(id).touched_rows().is_empty());
        assert_eq!(s.param(id).grad().row(0), &[0.0, 0.0]);
    }
}
