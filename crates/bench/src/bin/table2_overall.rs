//! Table II — overall performance comparison: R@20 / N@20 for all 15 methods
//! across the seven datasets, with a paired t-test of L-IMCAT against the
//! best non-IMCAT baseline.
//!
//! Usage:
//!   cargo run --release -p imcat-bench --bin table2_overall [-- --datasets mv,del --models BPRMF,L-IMCAT]
//! Environment: `IMCAT_SCALE`, `IMCAT_EPOCHS`, `IMCAT_TRIALS`, `IMCAT_DIM`.

use imcat_bench::{
    all_preset_keys, logln, preset_by_key, run_trials, write_json, Env, ExpLog, ModelKind,
};
use imcat_eval::paired_t_test;

struct Cell {
    model: String,
    dataset: String,
    recall: f64,
    ndcg: f64,
    train_seconds: f64,
    epochs: f64,
    trials: usize,
}

struct Report {
    cells: Vec<Cell>,
    significance: Vec<Significance>,
}

struct Significance {
    dataset: String,
    best_baseline: String,
    t: f64,
    p: f64,
}

imcat_obs::impl_to_json!(Cell { model, dataset, recall, ndcg, train_seconds, epochs, trials });
imcat_obs::impl_to_json!(Report { cells, significance });
imcat_obs::impl_to_json!(Significance { dataset, best_baseline, t, p });

fn parse_list(args: &[String], flag: &str) -> Option<Vec<String>> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').map(str::to_string).collect())
}

fn main() {
    imcat_bench::obs_init(false);
    let args: Vec<String> = std::env::args().collect();
    let env = Env::from_env();
    let datasets: Vec<String> = parse_list(&args, "--datasets")
        .unwrap_or_else(|| all_preset_keys().iter().map(|s| s.to_string()).collect());
    let models: Vec<ModelKind> = parse_list(&args, "--models")
        .map(|names| {
            names
                .iter()
                .map(|n| ModelKind::parse(n).unwrap_or_else(|| panic!("unknown model {n}")))
                .collect()
        })
        .unwrap_or_else(ModelKind::all);

    let icfg = env.imcat_config();
    let mut log = ExpLog::new("table2_overall");
    let mut cells = Vec::new();
    let mut significance = Vec::new();
    logln!(
        log,
        "Table II: R@20 / N@20 (%) — scale {}, {} epochs max, {} trial(s)\n",
        env.scale,
        env.max_epochs,
        env.trials
    );
    for key in &datasets {
        let preset = preset_by_key(key).unwrap_or_else(|| panic!("unknown dataset {key}"));
        let data = env.dataset(&preset);
        logln!(log, "== {} ==", data.name);
        logln!(
            log,
            "{:<12} {:>8} {:>8} {:>10} {:>7}",
            "model",
            "R@20",
            "N@20",
            "time(s)",
            "epochs"
        );
        let mut best_baseline: Option<(ModelKind, f64, Vec<f64>)> = None;
        let mut imcat_pool: Option<Vec<f64>> = None;
        for &kind in &models {
            let (results, pooled) = run_trials(kind, &data, &env, &icfg);
            let recall = imcat_bench::mean_of(&results, |r| r.recall);
            let ndcg = imcat_bench::mean_of(&results, |r| r.ndcg);
            let secs = imcat_bench::mean_of(&results, |r| r.train_seconds);
            let epochs = imcat_bench::mean_of(&results, |r| r.epochs as f64);
            logln!(
                log,
                "{:<12} {:>8.2} {:>8.2} {:>10.2} {:>7.0}",
                kind.name(),
                recall * 100.0,
                ndcg * 100.0,
                secs,
                epochs
            );
            if !kind.is_imcat() {
                if best_baseline.as_ref().is_none_or(|(_, r, _)| recall > *r) {
                    best_baseline = Some((kind, recall, pooled.clone()));
                }
            } else if kind == ModelKind::LImcat {
                imcat_pool = Some(pooled.clone());
            }
            cells.push(Cell {
                model: kind.name().to_string(),
                dataset: data.name.clone(),
                recall,
                ndcg,
                train_seconds: secs,
                epochs,
                trials: env.trials,
            });
        }
        if let (Some((bk, _, base_pool)), Some(pool)) = (best_baseline, imcat_pool) {
            if pool.len() == base_pool.len() && pool.len() >= 2 {
                let tt = paired_t_test(&pool, &base_pool);
                logln!(
                    log,
                    "paired t-test L-IMCAT vs {} (best baseline): t = {:.3}, p = {:.4}",
                    bk.name(),
                    tt.t,
                    tt.p
                );
                significance.push(Significance {
                    dataset: data.name.clone(),
                    best_baseline: bk.name().to_string(),
                    t: tt.t,
                    p: tt.p,
                });
            }
        }
        logln!(log);
    }
    let path = write_json("table2_overall", &Report { cells, significance });
    logln!(log, "wrote {}", path.display());
    imcat_bench::obs_finish();
}
