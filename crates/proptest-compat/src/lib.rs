//! Offline drop-in replacement for the subset of `proptest 1.x` this
//! workspace uses. The build container has no crates.io access, so the
//! workspace resolves `proptest` to this path crate.
//!
//! Semantics: each `proptest!` test runs its body for
//! [`ProptestConfig::cases`] deterministic pseudo-random cases. There is no
//! shrinking and no persistence of failing cases — a failing case panics with
//! the case index so it can be replayed by rerunning the test.
//!
//! Implemented surface: `proptest!` (with optional
//! `#![proptest_config(...)]`), `prop_assert!`, `prop_assert_eq!`,
//! [`Strategy`] with `prop_map`, integer range strategies, tuple strategies,
//! and [`collection::vec`] / [`collection::btree_set`].

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases executed per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe producing random values of an associated type.
pub trait Strategy {
    /// Value type the strategy yields.
    type Value;

    /// Draws one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, gen: &mut Gen) -> O {
        (self.f)(self.inner.generate(gen))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + gen.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo + gen.below(span.max(1)) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = gen.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = gen.unit_f64() as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, gen: &mut Gen) -> Self::Value {
        (self.0.generate(gen), self.1.generate(gen))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, gen: &mut Gen) -> Self::Value {
        (self.0.generate(gen), self.1.generate(gen), self.2.generate(gen))
    }
}

/// Collection strategies.
pub mod collection {
    use std::collections::BTreeSet;

    use super::{Gen, Strategy};

    /// Length specifications: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, gen: &mut Gen) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _gen: &mut Gen) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, gen: &mut Gen) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + gen.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a drawn length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, gen: &mut Gen) -> Self::Value {
            let n = self.len.pick(gen);
            (0..n).map(|_| self.element.generate(gen)).collect()
        }
    }

    /// Vector of `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy for `BTreeSet<S::Value>` with a drawn target size.
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, gen: &mut Gen) -> Self::Value {
            let n = self.len.pick(gen);
            let mut out = BTreeSet::new();
            // Duplicates collapse; bound the retries so narrow element
            // domains cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < n && attempts < 20 * (n + 1) {
                out.insert(self.element.generate(gen));
                attempts += 1;
            }
            out
        }
    }

    /// Set with `len` distinct elements drawn from `element` (best effort
    /// when the element domain is small).
    pub fn btree_set<S: Strategy, L: SizeRange>(element: S, len: L) -> BTreeSetStrategy<S, L> {
        BTreeSetStrategy { element, len }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Gen, ProptestConfig, Strategy};
}

/// Runs each contained `#[test] fn name(args in strategies) { body }` for a
/// number of deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut gen = $crate::Gen::new(
                0x243F_6A88_85A3_08D3 ^ ((line!() as u64) << 32) ^ (column!() as u64),
            );
            for case in 0..cfg.cases {
                let _ = case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut gen);)*
                $body
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_collections(n in 1usize..8, xs in crate::collection::vec(0u32..100, 3..9)) {
            prop_assert!((1..8).contains(&n));
            prop_assert!(xs.len() >= 3 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn sets_hit_min_size(s in crate::collection::btree_set(0u32..1000, 2..5)) {
            prop_assert!(s.len() >= 2 && s.len() < 5);
        }

        #[test]
        fn map_and_tuples(v in (0u32..10, 1u32..3).prop_map(|(a, b)| a * b)) {
            prop_assert!(v < 30);
        }
    }
}
