//! # imcat-serve
//!
//! A CPU top-K recommendation serving engine for the IMCAT reproduction.
//!
//! Training ends with [`imcat_ckpt::Artifact`] — resolved post-propagation
//! user/item embeddings plus each user's training-item mask, frozen into the
//! crash-safe `imcat-ckpt` container by the trainer at every best-validation
//! epoch. This crate answers `recommend(user, k)` requests against that
//! artifact without touching the tape, autodiff, or optimizer:
//!
//! * **Parity** — answers are bit-identical to the offline evaluator's
//!   masked top-K ranking at any `IMCAT_THREADS` setting.
//! * **Panic-proof requests** — malformed requests (out-of-range user,
//!   `k == 0`) are rejected with a typed [`ServeError`], never an assert:
//!   request data can't take down a serving worker mid-batch.
//! * **Caching** — a bounded LRU keeps hot users' lists with hit/miss
//!   accounting.
//! * **Batching** — a tick of concurrent requests costs one `matmul_nt`.
//! * **ANN retrieval** — [`ServeConfig::ann`] fronts scoring with an
//!   `imcat-ann` index behind the [`AnnIndex`] trait (exact re-rank,
//!   brute-force fallback), turning per-request cost sublinear in catalog
//!   size.
//! * **Streaming ingestion** — [`Engine::ingest`] appends live
//!   interactions, [`Engine::register_user`]/[`Engine::register_item`] add
//!   cold entities, [`Engine::fold_pending`] folds them in (ridge
//!   least-squares against the frozen opposite side) and extends the ANN
//!   index incrementally, and [`Engine::spawn_rebuild`] /
//!   [`Engine::commit_rebuild`] swap a full log-replay rebuild in
//!   atomically — bit-identical to the same replay run offline
//!   ([`rebuild_artifact`]).
//! * **Telemetry** — request latency histograms (p50/p95/p99) and counters
//!   flow through `imcat-obs`.

#![warn(missing_docs)]

mod cache;
mod engine;
mod foldin;
mod ingest;
mod rebuild;

pub use cache::LruCache;
pub use engine::{AnnDescriptor, Engine, Recommendation, ServeConfig, ServeError, ServeStats};
pub use foldin::{fold_embedding, FoldOptions};
pub use imcat_ann::{AnnConfig, AnnIndex, AnnKind, BruteIndex, IvfIndex, ProbeScratch};
pub use imcat_ckpt::Artifact;
pub use ingest::{Interaction, StreamEvent};
pub use rebuild::{rebuild_artifact, RebuildTask};
