//! Serving benchmark: replays a Zipf-distributed synthetic request stream
//! against frozen inference artifacts produced by the trainer's best-epoch
//! export, and emits a throughput/latency table for the `imcat-serve`
//! engine's single-request and batched paths.
//!
//! For each of BPR-MF, LightGCN, and B-IMCAT the binary trains a short run
//! with [`imcat_core::TrainerConfig::artifact_path`] set, loads the artifact
//! from disk through [`imcat_serve::Engine::load`], and measures:
//!
//! * **single** — one `recommend(user, k)` call per request (LRU cache hot
//!   for popular Zipf heads);
//! * **batch** — requests grouped into fixed-size ticks, each tick answered
//!   by one scoring matmul over the deduplicated cache misses.
//!
//! Latency quantiles come from the engine's log-bucket histogram (matching
//! `imcat-obs`); QPS is requests over replay wall-clock. Environment knobs:
//!
//! * `IMCAT_SERVE_REQUESTS` — stream length (default 2000)
//! * `IMCAT_SERVE_ZIPF`     — Zipf exponent `s` (default 1.1)
//! * `IMCAT_SERVE_K`        — ranking cutoff (default 20)
//! * `IMCAT_SERVE_BATCH`    — requests per tick in batch mode (default 32)
//! * `IMCAT_SERVE_CACHE`    — LRU capacity in lists (default 256)
//! * `IMCAT_SERVE_HOLD_SECS` — after the benchmark table, keep serving the
//!   last model's batch ticks for this many seconds so a scraper can hit the
//!   live `/metrics` endpoint (`IMCAT_OBS_ADDR`); default 0 (exit at once)
//!
//! After the in-process table, the **network frontier** phase starts a real
//! `imcat-net` TCP front-end over the last model's artifact per shard count
//! and drives it over sockets: a closed-loop pass maps the capacity at each
//! shard count, then open-loop passes offer fixed fractions of that
//! capacity (the >1x factor deliberately overloads the admission queue so
//! load shedding — fast `503`s counted as `serve.shed` — is exercised).
//! Results land in `target/experiments/net_frontier.json`. Knobs:
//!
//! * `IMCAT_NET_FRONTIER` — `0` skips the phase (default 1)
//! * `IMCAT_NET_SHARD_COUNTS` — comma list of shard counts (default `1,2,4`)
//! * `IMCAT_NET_REQUESTS` — socket requests per pass (default 600)
//! * `IMCAT_NET_CONNS` — closed-loop persistent connections (default 8)
//! * `IMCAT_NET_SENDERS` — open-loop sender threads (default 16)
//! * `IMCAT_NET_OPEN_FACTORS` — open-loop offered rate as fractions of the
//!   measured closed-loop capacity (default `0.6,1.5`)
//! * plus the server's own `IMCAT_NET_WORKERS` / `IMCAT_NET_QUEUE` /
//!   `IMCAT_NET_BATCH` / `IMCAT_NET_TICK_US` / `IMCAT_NET_DEADLINE_MS`
//!   (see `imcat_net::NetConfig::from_env`)
//!
//! Usage: `cargo run --release -p imcat-bench --bin serve_bench`

use std::path::PathBuf;
use std::time::Instant;

use imcat_bench::ModelKind;
use imcat_bench::{logln, obs_finish, obs_init, write_json, Env, ExpLog};
use imcat_core::train;
use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_serve::{Engine, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 7;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Normalized Zipf CDF over `n` ranks: rank `r` (0-based) has weight
/// `1 / (r+1)^s`. Sampling is a uniform draw + binary search.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for r in 0..n {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for v in &mut cdf {
        *v /= acc;
    }
    cdf
}

fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> u32 {
    let x: f64 = rng.gen();
    cdf.partition_point(|&p| p < x).min(cdf.len() - 1) as u32
}

struct Row {
    model: String,
    mode: String,
    requests: usize,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    cache_hit_rate: f64,
    cached_lists: usize,
}

imcat_obs::impl_to_json!(Row {
    model,
    mode,
    requests,
    qps,
    p50_us,
    p95_us,
    p99_us,
    mean_us,
    cache_hit_rate,
    cached_lists
});

fn replay(
    engine: &mut Engine,
    stream: &[(u32, usize)],
    batch: usize,
    model: &str,
    mode: &str,
) -> Row {
    let t0 = Instant::now();
    if batch <= 1 {
        for &(u, k) in stream {
            let recs = engine.recommend(u, k).expect("in-range request must be served");
            assert!(!recs.is_empty(), "served an empty list for user {u}");
        }
    } else {
        for tick in stream.chunks(batch) {
            let out = engine.recommend_batch(tick);
            assert_eq!(out.len(), tick.len());
            assert!(out.iter().all(Result::is_ok), "in-range batch request rejected");
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    let total = (stats.cache_hits + stats.cache_misses).max(1);
    Row {
        model: model.to_string(),
        mode: mode.to_string(),
        requests: stream.len(),
        qps: stream.len() as f64 / wall.max(1e-9),
        p50_us: stats.p50_seconds * 1e6,
        p95_us: stats.p95_seconds * 1e6,
        p99_us: stats.p99_seconds * 1e6,
        mean_us: stats.mean_seconds * 1e6,
        cache_hit_rate: stats.cache_hits as f64 / total as f64,
        cached_lists: engine.cached_lists(),
    }
}

struct NetRow {
    model: String,
    shards: usize,
    report: imcat_net::LoadReport,
    server_shed: u64,
    server_timeouts: u64,
}

imcat_obs::impl_to_json!(NetRow { model, shards, report, server_shed, server_timeouts });

fn env_list(key: &str, default: &str) -> Vec<f64> {
    let raw = std::env::var(key).unwrap_or_else(|_| default.to_string());
    raw.split(',').filter_map(|v| v.trim().parse().ok()).collect()
}

/// Maps the latency/QPS frontier per shard count over real sockets.
fn net_frontier(
    log: &mut ExpLog,
    artifact: &imcat_serve::Artifact,
    model: &str,
    stream: &[(u32, usize)],
    cache: usize,
) {
    let shard_counts: Vec<usize> =
        env_list("IMCAT_NET_SHARD_COUNTS", "1,2,4").into_iter().map(|v| v as usize).collect();
    let n_requests = env_usize("IMCAT_NET_REQUESTS", 600).max(1).min(stream.len());
    let conns = env_usize("IMCAT_NET_CONNS", 8);
    let senders = env_usize("IMCAT_NET_SENDERS", 16);
    let factors = env_list("IMCAT_NET_OPEN_FACTORS", "0.6,1.5");
    let net_stream = &stream[..n_requests];
    let serve_cfg = imcat_serve::ServeConfig { cache_capacity: cache, ..Default::default() };

    logln!(
        log,
        "net frontier: {} requests/pass, {conns} closed-loop conns, {senders} open-loop senders",
        n_requests
    );
    logln!(
        log,
        "{:<7} {:<7} {:>10} {:>10} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "shards",
        "mode",
        "offer_qps",
        "ach_qps",
        "ok",
        "shed",
        "p50(us)",
        "p95(us)",
        "p99(us)"
    );
    let mut rows: Vec<NetRow> = Vec::new();
    for &shards in &shard_counts {
        let mut net_cfg = imcat_net::NetConfig::from_env();
        net_cfg.shards = shards;
        let server = imcat_net::Server::start(artifact, &serve_cfg, net_cfg, "127.0.0.1:0")
            .expect("front-end must bind an ephemeral port");
        let addr = server.addr();

        let closed = imcat_net::closed_loop(addr, net_stream, conns);
        let capacity = closed.achieved_qps;
        let mut reports = vec![closed];
        for &f in &factors {
            let rate = (capacity * f).max(10.0);
            reports.push(imcat_net::open_loop(addr, net_stream, rate, senders));
        }
        let stats = server.stats();
        for report in reports {
            logln!(
                log,
                "{:<7} {:<7} {:>10.0} {:>10.0} {:>6} {:>6} {:>9.1} {:>9.1} {:>9.1}",
                shards,
                report.mode,
                report.offered_qps,
                report.achieved_qps,
                report.ok,
                report.shed,
                report.p50_us,
                report.p95_us,
                report.p99_us
            );
            rows.push(NetRow {
                model: model.to_string(),
                shards,
                report,
                server_shed: stats.shed,
                server_timeouts: stats.timeouts,
            });
        }
        logln!(
            log,
            "shards={shards}: server answered {} of {} requests, shed {}, timeouts {}",
            stats.answered,
            stats.requests,
            stats.shed,
            stats.timeouts
        );
        server.shutdown();
    }
    let path = write_json("net_frontier", &rows);
    logln!(log, "net frontier written to {}", path.display());
}

fn main() {
    obs_init(true);
    let mut log = ExpLog::new("serve_bench");
    let env = Env::from_env();

    let n_requests = env_usize("IMCAT_SERVE_REQUESTS", 2000);
    let zipf_s = env_f64("IMCAT_SERVE_ZIPF", 1.1);
    let k = env_usize("IMCAT_SERVE_K", 20);
    let batch = env_usize("IMCAT_SERVE_BATCH", 32).max(2);
    let cache = env_usize("IMCAT_SERVE_CACHE", 256);

    let data: SplitDataset = {
        let cfg = SynthConfig::tiny().scaled(env.scale);
        let d = generate(&cfg, 11);
        let mut rng = StdRng::seed_from_u64(12);
        d.dataset.split((0.7, 0.1, 0.2), &mut rng)
    };
    logln!(
        log,
        "serve_bench: {} users x {} items, {} requests, zipf s={zipf_s}, k={k}, \
         batch={batch}, cache={cache}",
        data.n_users(),
        data.n_items(),
        n_requests
    );

    // Pre-draw the request stream once so every model serves identical load.
    let cdf = zipf_cdf(data.n_users(), zipf_s);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x21f);
    let stream: Vec<(u32, usize)> =
        (0..n_requests).map(|_| (sample_zipf(&cdf, &mut rng), k)).collect();

    let art_dir = PathBuf::from("target/experiments/serve_artifacts");
    std::fs::create_dir_all(&art_dir).expect("cannot create artifact dir");

    let kinds = [ModelKind::Bprmf, ModelKind::LightGcn, ModelKind::BImcat];
    let mut rows: Vec<Row> = Vec::new();
    logln!(
        log,
        "{:<9} {:<7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
        "model",
        "mode",
        "qps",
        "p50(us)",
        "p95(us)",
        "p99(us)",
        "mean(us)",
        "hit%"
    );
    for kind in kinds {
        let artifact_path = art_dir.join(format!("{}.artifact", kind.name()));
        let mut model = kind.build(&data, &env.train_config(), &env.imcat_config(), SEED);
        let base = env.trainer_config(SEED);
        let tcfg = imcat_core::TrainerConfig {
            artifact_path: Some(artifact_path.clone()),
            // Evaluate often enough that even a short IMCAT_EPOCHS run hits
            // at least one best-epoch export.
            eval_every: base.eval_every.min(base.max_epochs).max(1),
            ..base
        };
        let report = train(model.as_mut(), &data, &tcfg);
        let exported = report.artifact.as_ref().expect("dot-product model must export artifact");
        logln!(
            log,
            "{}: trained {} epochs, best val R@20 {:.4}, artifact {}",
            kind.name(),
            report.epochs_run,
            report.best_val_recall,
            exported.display()
        );

        let cfg = ServeConfig { cache_capacity: cache, ..Default::default() };
        for (mode, batch_size) in [("single", 1usize), ("batch", batch)] {
            let mut engine = Engine::load(&artifact_path, cfg.clone()).expect("artifact must load");
            let row = replay(&mut engine, &stream, batch_size, kind.name(), mode);
            logln!(
                log,
                "{:<9} {:<7} {:>9.0} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>5.1}%",
                row.model,
                row.mode,
                row.qps,
                row.p50_us,
                row.p95_us,
                row.p99_us,
                row.mean_us,
                row.cache_hit_rate * 100.0
            );
            rows.push(row);
        }
    }

    let path = write_json("serve_bench", &rows);
    logln!(log, "report written to {}", path.display());

    // Network frontier: real sockets, sharded replicas, closed + open loop.
    if env_usize("IMCAT_NET_FRONTIER", 1) != 0 {
        let last = kinds[kinds.len() - 1];
        let artifact_path = art_dir.join(format!("{}.artifact", last.name()));
        let artifact =
            imcat_serve::Artifact::load(&artifact_path).expect("frontier artifact must load");
        net_frontier(&mut log, &artifact, last.name(), &stream, cache);
    }

    // Optional hold phase: keep a live engine ticking so an external scraper
    // can observe the /metrics endpoint and resolve trace exemplars while the
    // process is still serving (used by the CI obs-smoke job).
    let hold_secs = env_f64("IMCAT_SERVE_HOLD_SECS", 0.0);
    if hold_secs > 0.0 {
        if let Some(addr) = imcat_obs::http::bound_addr() {
            logln!(log, "obs endpoint listening on http://{addr}/metrics");
        }
        let artifact_path = art_dir.join(format!("{}.artifact", kinds[kinds.len() - 1].name()));
        let cfg = ServeConfig { cache_capacity: cache, ..Default::default() };
        let mut engine = Engine::load(&artifact_path, cfg).expect("artifact must load");
        let hold0 = Instant::now();
        let mut ticks = 0usize;
        while hold0.elapsed().as_secs_f64() < hold_secs {
            for tick in stream.chunks(batch) {
                let _ = engine.recommend_batch(tick);
            }
            ticks += stream.len().div_ceil(batch);
            // Pace the load so the hold phase exercises the sliding window
            // rather than saturating a core.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let latest =
            imcat_obs::trace::latest_id().map_or_else(|| "none".to_string(), |id| id.to_string());
        logln!(log, "hold phase: {ticks} ticks over {hold_secs}s, latest trace id {latest}");
    }
    obs_finish();
}
