//! TGCN baseline (Chen et al. 2020): graph convolution over the unified
//! user–item–tag graph with *type-aware* neighbor aggregation.
//!
//! Simplification vs. the original: type-aware neighbor *sampling* is
//! replaced by full neighborhoods (our graphs are small), and the per-type
//! aggregations are combined with equal weights after per-type symmetric
//! normalization. The defining mechanism — tags as first-class graph nodes
//! whose information reaches users through typed multi-hop message passing —
//! is preserved.

use std::rc::Rc;

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{xavier_uniform, Adam, Csr, ParamId, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;

use crate::baselines::unified::{it_adjacency, ui_adjacency, UnifiedLayout};
use crate::common::{bpr_loss, split_user_item, EpochStats, RecModel, TrainConfig};

/// Tag graph convolutional network.
pub struct Tgcn {
    store: ParamStore,
    adam: Adam,
    node_emb: ParamId,
    ui_adj: Rc<Csr>,
    it_adj: Rc<Csr>,
    layout: UnifiedLayout,
    cfg: TrainConfig,
    sampler: BprSampler,
}

impl Tgcn {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let layout = UnifiedLayout::of(data);
        let mut store = ParamStore::new();
        let node_emb = store.add("node_emb", xavier_uniform(layout.total(), cfg.dim, rng));
        let adam = Adam::new(cfg.adam(), &store);
        Self {
            store,
            adam,
            node_emb,
            ui_adj: Rc::new(ui_adjacency(data, layout)),
            it_adj: Rc::new(it_adjacency(data, layout)),
            layout,
            cfg,
            sampler: BprSampler::for_user_items(data),
        }
    }

    /// Type-aware propagation: each layer averages the per-relation messages.
    fn propagate(&self, tape: &mut Tape) -> Var {
        let mut x = tape.leaf(&self.store, self.node_emb);
        let mut acc = x;
        for _ in 0..self.cfg.gnn_layers {
            let from_ui = tape.spmm(&self.ui_adj, &self.ui_adj, x);
            let from_it = tape.spmm(&self.it_adj, &self.it_adj, x);
            let sum = tape.add(from_ui, from_it);
            x = tape.scale(sum, 0.5);
            acc = tape.add(acc, x);
        }
        tape.scale(acc, 1.0 / (self.cfg.gnn_layers as f32 + 1.0))
    }

    fn propagate_tensor(&self) -> Tensor {
        let mut x = self.store.value(self.node_emb).clone();
        let mut acc = x.clone();
        for _ in 0..self.cfg.gnn_layers {
            let mut sum = self.ui_adj.spmm(&x);
            sum.add_assign(&self.it_adj.spmm(&x));
            x = sum.map(|v| v * 0.5);
            acc.add_assign(&x);
        }
        acc.map(|v| v / (self.cfg.gnn_layers as f32 + 1.0))
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let nodes = self.propagate(&mut tape);
        let pos: Vec<u32> = batch.positives.iter().map(|&v| self.layout.item(v)).collect();
        let neg: Vec<u32> = batch.negatives.iter().map(|&v| self.layout.item(v)).collect();
        let u = tape.gather_rows(nodes, &batch.anchors);
        let vp = tape.gather_rows(nodes, &pos);
        let vn = tape.gather_rows(nodes, &neg);
        let sp = tape.rowwise_dot(u, vp);
        let sn = tape.rowwise_dot(u, vn);
        let loss = bpr_loss(&mut tape, sp, sn);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.store);
        self.adam.step(&mut self.store);
        value
    }
}

impl RecModel for Tgcn {
    fn name(&self) -> String {
        "TGCN".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        let nodes = self.propagate_tensor();
        Some(split_user_item(&nodes, self.layout.n_users, self.layout.n_items))
    }

    fn num_params(&self) -> usize {
        self.store.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn loss_decreases() {
        let data = tiny_split(81);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Tgcn::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..15 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(82);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Tgcn::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 30);
    }

    #[test]
    fn tape_and_tensor_propagation_agree() {
        let data = tiny_split(83);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Tgcn::new(&data, TrainConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let v = model.propagate(&mut tape);
        assert!(tape.value(v).approx_eq(&model.propagate_tensor(), 1e-5));
    }
}
