//! Cross-model integration tests over the public API: every model in the zoo
//! must construct, train stably, and score coherently on the same dataset.

use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_models::{
    Bprmf, Cfa, Cke, Dspr, Kgat, Kgcl, Kgin, LightGcn, Neumf, RecModel, RippleNet, Sgl, Tgcn,
    TrainConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn split() -> SplitDataset {
    let data = generate(&SynthConfig::tiny(), 77);
    let mut rng = StdRng::seed_from_u64(77);
    data.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

fn zoo(data: &SplitDataset) -> Vec<Box<dyn RecModel>> {
    let cfg = TrainConfig::default;
    let mut rng = StdRng::seed_from_u64(0);
    vec![
        Box::new(Bprmf::new(data, cfg(), &mut rng)),
        Box::new(Neumf::new(data, cfg(), &mut rng)),
        Box::new(LightGcn::new(data, cfg(), &mut rng)),
        Box::new(Cfa::new(data, cfg(), &mut rng)),
        Box::new(Dspr::new(data, cfg(), &mut rng)),
        Box::new(Tgcn::new(data, cfg(), &mut rng)),
        Box::new(Cke::new(data, cfg(), &mut rng)),
        Box::new(RippleNet::new(data, cfg(), &mut rng)),
        Box::new(Kgat::new(data, cfg(), &mut rng)),
        Box::new(Kgin::new(data, cfg(), &mut rng)),
        Box::new(Sgl::new(data, cfg(), &mut rng)),
        Box::new(Kgcl::new(data, cfg(), &mut rng)),
    ]
}

#[test]
fn all_models_have_unique_names_and_parameters() {
    let data = split();
    let models = zoo(&data);
    let mut names: Vec<String> = models.iter().map(|m| m.name()).collect();
    assert_eq!(names.len(), 12);
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 12, "duplicate model names");
    for m in &models {
        assert!(m.num_params() > 0, "{} has no parameters", m.name());
    }
}

#[test]
fn all_models_train_three_epochs_with_finite_losses() {
    let data = split();
    for mut m in zoo(&data) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut last = f32::INFINITY;
        for e in 0..3 {
            let stats = m.train_epoch(&mut rng);
            assert!(stats.loss.is_finite(), "{} produced non-finite loss at epoch {e}", m.name());
            assert!(stats.batches > 0);
            last = stats.loss;
        }
        assert!(last.is_finite());
    }
}

#[test]
fn all_models_score_every_item_finitely() {
    let data = split();
    let users: Vec<u32> = (0..4).collect();
    for mut m in zoo(&data) {
        let mut rng = StdRng::seed_from_u64(2);
        m.train_epoch(&mut rng);
        let s = m.score_users(&users);
        assert_eq!(s.shape(), (4, data.n_items()), "{} shape", m.name());
        assert!(
            s.as_slice().iter().all(|x| x.is_finite()),
            "{} produced non-finite scores",
            m.name()
        );
        // Scores must discriminate: not all identical.
        let first = s.get(0, 0);
        assert!(
            s.row(0).iter().any(|&x| (x - first).abs() > 1e-9),
            "{} scores are constant",
            m.name()
        );
    }
}

#[test]
fn scoring_is_stable_across_calls() {
    let data = split();
    for mut m in zoo(&data) {
        let mut rng = StdRng::seed_from_u64(3);
        m.train_epoch(&mut rng);
        let a = m.score_users(&[0, 1]);
        let b = m.score_users(&[0, 1]);
        assert!(a.approx_eq(&b, 1e-6), "{} scoring is nondeterministic", m.name());
    }
}
