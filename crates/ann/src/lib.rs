//! `imcat-ann`: sublinear top-K retrieval for the serving path.
//!
//! Four pieces live here:
//!
//! * [`kmeans`] — the workspace's single, shared, deterministic Lloyd
//!   k-means. IMCAT's Intent Representation Module seeds its learnable
//!   cluster centers with it, and the IVF index trains its coarse quantizer
//!   with it, so the intent machinery and the retrieval machinery share one
//!   code path by construction.
//! * [`index`] — the [`AnnIndex`] trait every backend serves behind:
//!   probe, streamed [`AnnIndex::insert`], section persistence, staleness
//!   check. [`AnnConfig::build_index`] / [`AnnConfig::load_index`] select
//!   the concrete type ([`AnnKind`]); [`BruteIndex`] is the trivial
//!   exhaustive-scan implementation the approximate backends are verified
//!   against.
//! * [`ivf`] — an IVF-Flat index over the frozen item-embedding matrix:
//!   k-means partitions items into `nlist` inverted lists; a query probes
//!   the `nprobe` closest lists and re-ranks the surviving candidates with
//!   **exact** f32 dot products, so any error is pure recall loss — returned
//!   scores and orderings are always the brute-force ones, and with
//!   `nprobe == nlist` the whole result is bit-identical to brute force.
//! * [`hnsw`] — a hierarchical navigable small-world graph over the same
//!   frozen matrix: greedy multi-layer descent plus an `ef_search`-wide
//!   base-layer beam, the same MIPS→L2 geometry and exact f32 re-rank, and
//!   live streamed inserts through the build's own link path. Wins the
//!   recall/QPS frontier over IVF at high recall targets; at
//!   `ef_search >= n_items` it is bit-identical to brute force.
//!
//! Every index serializes into `ann.*` named sections of an `imcat-ckpt`
//! container (living alongside the serving `Artifact` sections in the same
//! file), and `imcat-serve` consumes it behind `AnnConfig` with brute-force
//! fallback. See the README "ANN retrieval" section for the operational
//! knobs and `crates/bench/src/bin/ann_bench.rs` for the recall/QPS
//! frontier methodology.

#![warn(missing_docs)]

pub mod hnsw;
pub mod index;
pub mod ivf;
pub mod kmeans;

pub use hnsw::HnswIndex;
pub use index::{AnnIndex, AnnKind, BruteIndex};
pub use ivf::{AnnConfig, IvfIndex, ProbeScratch, DEFAULT_BUILD_SEED};
pub use kmeans::{assign_nearest, kmeans_centers};
