//! Intent-aware Multi-source Contrastive Alignment (paper §IV-B) and its
//! set-to-set extension (§IV-C), expressed as one *masked* bidirectional
//! InfoNCE.
//!
//! For a batch of items, anchors are the per-intent aggregated user
//! representations `ū_j^k` and targets are fused item–tag representations
//! `z̄_{j'}^k`. A positive mask generalizes the diagonal of plain InfoNCE:
//! with the identity mask this is exactly Eqs. 11–13; adding the ISA
//! positives `P_j^k` (rows of similar items by per-intent Jaccard, Eq. 15)
//! yields Eqs. 16–17. Per-anchor weights carry the intent relatedness `M`
//! (Eq. 9).

use imcat_tensor::{Csr, Tape, Tensor, Var};

/// Positive mask for one intent's alignment batch: `mask[j][p] = 1/|P_j|`
/// over anchor `j`'s positive target columns.
#[derive(Clone, Debug)]
pub struct PositiveMask {
    mask: Tensor,
}

impl PositiveMask {
    /// Identity mask (plain IMCA: the only positive of anchor `j` is target
    /// `j`).
    pub fn identity(n: usize) -> Self {
        let mut mask = Tensor::zeros(n, n);
        for i in 0..n {
            mask.set(i, i, 1.0);
        }
        Self { mask }
    }

    /// Mask over `n_anchors x n_targets` from explicit positive lists
    /// (`positives[j]` = target columns that are positives of anchor `j`).
    /// Rows are weighted `1/|P_j|`; anchors with no positives get all-zero
    /// rows and thus contribute nothing.
    pub fn from_lists(n_anchors: usize, n_targets: usize, positives: &[Vec<usize>]) -> Self {
        assert_eq!(positives.len(), n_anchors);
        let mut mask = Tensor::zeros(n_anchors, n_targets);
        for (j, pos) in positives.iter().enumerate() {
            if pos.is_empty() {
                continue;
            }
            let w = 1.0 / pos.len() as f32;
            for &p in pos {
                assert!(p < n_targets, "positive column {p} out of range");
                mask.set(j, p, w);
            }
        }
        Self { mask }
    }

    /// The forward (anchor → target) mask.
    pub fn forward(&self) -> &Tensor {
        &self.mask
    }

    /// Transposed mask with rows re-normalized, for the target → anchor
    /// direction.
    pub fn backward(&self) -> Tensor {
        let t = self.mask.transposed();
        let mut out = t.clone();
        for r in 0..out.rows() {
            let nnz = t.row(r).iter().filter(|&&x| x > 0.0).count();
            if nnz == 0 {
                continue;
            }
            let w = 1.0 / nnz as f32;
            for x in out.row_mut(r) {
                *x = if *x > 0.0 { w } else { 0.0 };
            }
        }
        out
    }
}

/// Bidirectional masked InfoNCE (Eqs. 11–13 / 16–17 for one intent `k`).
///
/// * `anchors` — `ū^k` rows, `[B, d/K]`.
/// * `targets` — `z̄^k` rows, `[N, d/K]` (`N ≥ B` when ISA appends extra
///   similar items).
/// * `mask` — positive structure (see [`PositiveMask`]).
/// * `anchor_weights` — `[B, 1]` intent relatedness `M_{·,k}`.
/// * `target_weights` — `[N, 1]` relatedness of each target's item.
///
/// Rows are L2-normalized, so logits are cosine similarities over `τ`.
#[allow(clippy::too_many_arguments)]
pub fn masked_info_nce(
    tape: &mut Tape,
    anchors: Var,
    targets: Var,
    mask: &PositiveMask,
    anchor_weights: &Tensor,
    target_weights: &Tensor,
    tau: f32,
) -> Var {
    let b = tape.value(anchors).rows();
    let n = tape.value(targets).rows();
    assert_eq!(mask.forward().shape(), (b, n), "mask shape mismatch");
    assert_eq!(anchor_weights.shape(), (b, 1));
    assert_eq!(target_weights.shape(), (n, 1));
    let an = tape.l2_normalize_rows(anchors, 1e-12);
    let tn = tape.l2_normalize_rows(targets, 1e-12);
    let logits = tape.matmul_nt(an, tn);
    let logits = tape.scale(logits, 1.0 / tau);

    // u → it direction.
    let ls = tape.log_softmax_rows(logits);
    let m = tape.constant(mask.forward().clone());
    let picked = tape.mul(ls, m);
    let per_anchor = tape.sum_rows(picked);
    let aw = tape.constant(anchor_weights.clone());
    let weighted = tape.mul(per_anchor, aw);
    let s_fwd = tape.sum_all(weighted);

    // it → u direction.
    let lt = tape.transpose(logits);
    let ls_t = tape.log_softmax_rows(lt);
    let m_t = tape.constant(mask.backward());
    let picked_t = tape.mul(ls_t, m_t);
    let per_target = tape.sum_rows(picked_t);
    let tw = tape.constant(target_weights.clone());
    let weighted_t = tape.mul(per_target, tw);
    let s_bwd = tape.sum_all(weighted_t);

    let total = tape.add(s_fwd, s_bwd);
    // Negative mean over the two directions, scaled by batch size.
    tape.scale(total, -0.5 / b as f32)
}

/// Builds the per-cluster mean-aggregation CSR of Eq. 8: row `j` averages the
/// embeddings of item `j`'s tags that fall in cluster `k`. Rows of items with
/// no cluster-`k` tags are empty (their aggregate is the zero vector, as the
/// paper specifies).
pub fn cluster_tag_aggregator(item_tag: &Csr, assignment: &[usize], k: usize) -> Csr {
    let mut triplets: Vec<(u32, u32, f32)> = Vec::new();
    for j in 0..item_tag.rows() {
        let in_cluster: Vec<u32> = item_tag
            .row_indices(j)
            .iter()
            .copied()
            .filter(|&t| assignment[t as usize] == k)
            .collect();
        if in_cluster.is_empty() {
            continue;
        }
        let w = 1.0 / in_cluster.len() as f32;
        for t in in_cluster {
            triplets.push((j as u32, t, w));
        }
    }
    Csr::from_triplets(item_tag.rows(), item_tag.cols(), &triplets)
}

/// Intent-relatedness matrix `M` (Eq. 9): `M[j][k] = softmax_k(|T^k(v_j)|)`.
/// Counts are clamped before exponentiation for `f32` safety; the softmax is
/// computed in max-shifted form so the clamp only matters for the paper's
/// exact formula at extreme counts.
pub fn relatedness_matrix(item_tag: &Csr, assignment: &[usize], k_intents: usize) -> Tensor {
    let n_items = item_tag.rows();
    let mut m = Tensor::zeros(n_items, k_intents);
    for j in 0..n_items {
        let mut counts = vec![0f32; k_intents];
        for &t in item_tag.row_indices(j) {
            counts[assignment[t as usize]] += 1.0;
        }
        let max = counts.iter().fold(0f32, |a, &b| a.max(b));
        let mut sum = 0.0;
        for (kk, c) in counts.iter().enumerate() {
            let e = (c - max).min(30.0).exp();
            m.set(j, kk, e);
            sum += e;
        }
        for kk in 0..k_intents {
            let v = m.get(j, kk) / sum;
            m.set(j, kk, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_tensor::normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_mask_matches_plain_infonce_structure() {
        let m = PositiveMask::identity(3);
        assert_eq!(m.forward().get(0, 0), 1.0);
        assert_eq!(m.forward().get(0, 1), 0.0);
        let b = m.backward();
        assert_eq!(b.get(2, 2), 1.0);
    }

    #[test]
    fn from_lists_weights_rows() {
        let m = PositiveMask::from_lists(2, 4, &[vec![0, 2], vec![1]]);
        assert_eq!(m.forward().get(0, 0), 0.5);
        assert_eq!(m.forward().get(0, 2), 0.5);
        assert_eq!(m.forward().get(1, 1), 1.0);
        // Backward: target 2's positives = anchor 0 only.
        let b = m.backward();
        assert_eq!(b.get(2, 0), 1.0);
        assert_eq!(b.get(3, 0), 0.0);
        assert_eq!(b.get(3, 1), 0.0);
    }

    #[test]
    fn aligned_views_give_lower_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = normal(5, 6, 1.0, &mut rng);
        let other = normal(5, 6, 1.0, &mut rng);
        let mask = PositiveMask::identity(5);
        let w = Tensor::full(5, 1, 0.2);
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let av2 = tape.constant(a.clone());
        let aligned = masked_info_nce(&mut tape, av, av2, &mask, &w, &w, 0.5);
        let av3 = tape.constant(a);
        let bv = tape.constant(other);
        let misaligned = masked_info_nce(&mut tape, av3, bv, &mask, &w, &w, 0.5);
        assert!(tape.value(aligned).item() < tape.value(misaligned).item());
    }

    #[test]
    fn extra_targets_allowed() {
        let mut rng = StdRng::seed_from_u64(1);
        let anchors = normal(3, 4, 1.0, &mut rng);
        let targets = normal(5, 4, 1.0, &mut rng); // 2 extra ISA rows
        let mask = PositiveMask::from_lists(3, 5, &[vec![0, 3], vec![1], vec![2, 4]]);
        let aw = Tensor::full(3, 1, 0.33);
        let tw = Tensor::full(5, 1, 0.33);
        let mut tape = Tape::new();
        let av = tape.constant(anchors);
        let tv = tape.constant(targets);
        let loss = masked_info_nce(&mut tape, av, tv, &mask, &aw, &tw, 1.0);
        assert!(tape.value(loss).item().is_finite());
    }

    #[test]
    fn cluster_aggregator_restricts_and_averages() {
        // 3 items, 4 tags; clusters: tags {0,1} -> 0, {2,3} -> 1.
        let it = Csr::from_adjacency(3, 4, &[vec![0, 1, 2], vec![2, 3], vec![1]]);
        let assignment = vec![0, 0, 1, 1];
        let agg0 = cluster_tag_aggregator(&it, &assignment, 0);
        assert_eq!(agg0.row_indices(0), &[0, 1]);
        assert_eq!(agg0.row_values(0), &[0.5, 0.5]);
        assert_eq!(agg0.row_nnz(1), 0); // item 1 has no cluster-0 tags
        let agg1 = cluster_tag_aggregator(&it, &assignment, 1);
        assert_eq!(agg1.row_indices(1), &[2, 3]);
        assert_eq!(agg1.row_values(0), &[1.0]); // only tag 2 in cluster 1
    }

    #[test]
    fn relatedness_rows_are_softmax() {
        let it = Csr::from_adjacency(2, 4, &[vec![0, 1, 2], vec![3]]);
        let assignment = vec![0, 0, 1, 1];
        let m = relatedness_matrix(&it, &assignment, 2);
        for j in 0..2 {
            let s: f32 = m.row(j).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Item 0 has 2 cluster-0 tags vs 1 cluster-1 tag: M[0][0] > M[0][1].
        assert!(m.get(0, 0) > m.get(0, 1));
        // Ratio matches softmax(2,1) = e/(e+1).
        let expect = (2.0f32 - 2.0).exp() / ((2.0f32 - 2.0).exp() + (1.0f32 - 2.0).exp());
        assert!((m.get(0, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn relatedness_survives_huge_counts() {
        // 200 tags in one cluster must not overflow to NaN.
        let neighbors = vec![(0..200).collect::<Vec<u32>>()];
        let it = Csr::from_adjacency(1, 200, &neighbors);
        let assignment = vec![0; 200];
        let m = relatedness_matrix(&it, &assignment, 2);
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
        assert!(m.get(0, 0) > 0.99);
    }
}
