//! # imcat-graph
//!
//! Interaction-graph substrate for the IMCAT reproduction: bipartite CSR
//! graphs with cached transposes and degree statistics, the joint normalized
//! adjacency used by GNN backbones/baselines (LightGCN, TGCN, KGAT, SGL,
//! KGCL), long-tail degree grouping (Fig. 7 of the paper), and the per-intent
//! tag-set Jaccard machinery behind the ISA module (Eq. 15).

#![warn(missing_docs)]

mod bipartite;
mod jaccard;

pub use bipartite::{
    degree_groups, degree_histogram, gini_coefficient, joint_normalized_adjacency, Bipartite,
};
pub use jaccard::{jaccard_sorted, ClusterTagSets};
