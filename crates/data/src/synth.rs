//! Latent-intent synthetic dataset generator.
//!
//! The IMCAT paper evaluates on seven public datasets we cannot redistribute,
//! so this module generates datasets with the *structural properties its
//! claims rest on* (see DESIGN.md §1):
//!
//! 1. **Ground-truth intents.** A fixed number `k_true` of latent intents
//!    drives both tag semantics and interactions. Each tag belongs to one
//!    intent cluster; each item has a sparse Dirichlet mixture over intents;
//!    each user has a sparse Dirichlet preference over intents. A user
//!    interacts with an item with probability proportional to popularity ×
//!    intent match. Tag information therefore genuinely predicts
//!    interactions *through intents* — exactly the structure IRM/IMCA exploit.
//! 2. **Power-law popularity.** Item popularity is Zipf-distributed, creating
//!    the long tail analysed in Fig. 7.
//! 3. **Cold users.** A configurable fraction of users receives fewer than 10
//!    interactions, the population analysed in Fig. 8.
//!
//! Presets are calibrated to the *shape* of Table I (relative sizes,
//! densities, degrees) at laptop scale; `SynthConfig::scaled` grows them.

use std::collections::HashSet;

use imcat_tensor::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Configuration for the synthetic generator.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Dataset name (presets use the paper's names with a "(synthetic)" tag).
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of tags.
    pub n_tags: usize,
    /// Ground-truth latent intents.
    pub k_true: usize,
    /// Target number of user–item interactions.
    pub target_ui: usize,
    /// Mean tags per item (Poisson).
    pub tags_per_item: f64,
    /// Zipf exponent for item popularity (larger = heavier head).
    pub zipf_exponent: f64,
    /// Zipf exponent for user activity.
    pub user_activity_exponent: f64,
    /// Probability an interaction ignores intents (uniform random item).
    pub interaction_noise: f64,
    /// Probability a tag assignment ignores the item's intent mixture.
    pub tag_noise: f64,
    /// Dirichlet concentration for user/item intent distributions
    /// (smaller = sparser, more clearly separated intents).
    pub intent_concentration: f64,
    /// Fraction of users forced into the cold regime (3–9 interactions).
    pub cold_user_frac: f64,
    /// Minimum interactions per non-cold user (paper filters at 10).
    pub min_interactions: usize,
}

impl SynthConfig {
    /// Multiplies entity counts and interaction targets by `factor`
    /// (sub-linear for tags, which saturate in real datasets).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.n_users = ((self.n_users as f64 * factor) as usize).max(20);
        self.n_items = ((self.n_items as f64 * factor) as usize).max(30);
        self.n_tags = ((self.n_tags as f64 * factor.sqrt()) as usize).max(12);
        self.target_ui = ((self.target_ui as f64 * factor) as usize).max(200);
        self
    }

    /// HetRec2011-MovieLens shape: very dense interactions, ~10 tags/item.
    pub fn hetrec_mv() -> Self {
        Self {
            name: "HetRec-MV (synthetic)".into(),
            n_users: 420,
            n_items: 780,
            n_tags: 260,
            k_true: 4,
            target_ui: 42_000,
            tags_per_item: 10.0,
            zipf_exponent: 0.9,
            user_activity_exponent: 0.6,
            interaction_noise: 0.15,
            tag_noise: 0.1,
            intent_concentration: 0.3,
            cold_user_frac: 0.05,
            min_interactions: 12,
        }
    }

    /// HetRec2011-Last.fm artists: moderate density, rich tagging.
    pub fn hetrec_fm() -> Self {
        Self {
            name: "HetRec-FM (synthetic)".into(),
            n_users: 460,
            n_items: 1_400,
            n_tags: 300,
            k_true: 4,
            target_ui: 9_500,
            tags_per_item: 13.0,
            zipf_exponent: 1.0,
            user_activity_exponent: 0.7,
            interaction_noise: 0.15,
            tag_noise: 0.1,
            intent_concentration: 0.3,
            cold_user_frac: 0.06,
            min_interactions: 10,
        }
    }

    /// HetRec2011-Delicious: sparsest interactions, largest tag vocabulary
    /// (the paper notes it needs a larger K — we give it more true intents).
    pub fn hetrec_del() -> Self {
        Self {
            name: "HetRec-Del (synthetic)".into(),
            n_users: 500,
            n_items: 1_400,
            n_tags: 520,
            k_true: 8,
            target_ui: 6_500,
            tags_per_item: 12.0,
            zipf_exponent: 0.8,
            user_activity_exponent: 0.6,
            interaction_noise: 0.15,
            tag_noise: 0.1,
            intent_concentration: 0.25,
            cold_user_frac: 0.08,
            min_interactions: 10,
        }
    }

    /// CiteULike-t: sparse, few tags, many items.
    pub fn citeulike() -> Self {
        Self {
            name: "CiteULike (synthetic)".into(),
            n_users: 480,
            n_items: 1_800,
            n_tags: 200,
            k_true: 4,
            target_ui: 9_000,
            tags_per_item: 10.0,
            zipf_exponent: 0.9,
            user_activity_exponent: 0.7,
            interaction_noise: 0.15,
            tag_noise: 0.1,
            intent_concentration: 0.3,
            cold_user_frac: 0.08,
            min_interactions: 10,
        }
    }

    /// Last.fm-Tag tracks subset.
    pub fn lastfm_tag() -> Self {
        Self {
            name: "Last.fm-Tag (synthetic)".into(),
            n_users: 540,
            n_items: 1_100,
            n_tags: 350,
            k_true: 4,
            target_ui: 12_500,
            tags_per_item: 7.0,
            zipf_exponent: 1.0,
            user_activity_exponent: 0.7,
            interaction_noise: 0.15,
            tag_noise: 0.1,
            intent_concentration: 0.3,
            cold_user_frac: 0.06,
            min_interactions: 10,
        }
    }

    /// Amazon-Book with tags: sparse interactions, moderate tagging.
    pub fn amzbook_tag() -> Self {
        Self {
            name: "AMZBook-Tag (synthetic)".into(),
            n_users: 600,
            n_items: 1_000,
            n_tags: 180,
            k_true: 4,
            target_ui: 7_200,
            tags_per_item: 11.0,
            zipf_exponent: 1.1,
            user_activity_exponent: 0.8,
            interaction_noise: 0.15,
            tag_noise: 0.1,
            intent_concentration: 0.3,
            cold_user_frac: 0.1,
            min_interactions: 10,
        }
    }

    /// Yelp 2018 businesses: densest item–tag matrix of the seven.
    pub fn yelp_tag() -> Self {
        Self {
            name: "Yelp-Tag (synthetic)".into(),
            n_users: 560,
            n_items: 900,
            n_tags: 120,
            k_true: 4,
            target_ui: 10_500,
            tags_per_item: 21.0,
            zipf_exponent: 1.0,
            user_activity_exponent: 0.7,
            interaction_noise: 0.15,
            tag_noise: 0.1,
            intent_concentration: 0.3,
            cold_user_frac: 0.07,
            min_interactions: 10,
        }
    }

    /// All seven presets in the paper's Table I order.
    pub fn all_presets() -> Vec<Self> {
        vec![
            Self::hetrec_mv(),
            Self::hetrec_fm(),
            Self::hetrec_del(),
            Self::citeulike(),
            Self::lastfm_tag(),
            Self::amzbook_tag(),
            Self::yelp_tag(),
        ]
    }

    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny (synthetic)".into(),
            n_users: 60,
            n_items: 90,
            n_tags: 24,
            k_true: 3,
            target_ui: 1_400,
            tags_per_item: 5.0,
            zipf_exponent: 1.1,
            user_activity_exponent: 0.7,
            interaction_noise: 0.1,
            tag_noise: 0.1,
            intent_concentration: 0.15,
            cold_user_frac: 0.08,
            min_interactions: 8,
        }
    }
}

/// Ground-truth latent structure behind a generated dataset. Exposed so tests
/// and examples can verify that models recover it.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Intent id of each tag.
    pub tag_intent: Vec<usize>,
    /// Per-user intent preference distributions (`n_users x k_true`).
    pub user_pref: Vec<Vec<f32>>,
    /// Per-item intent mixtures (`n_items x k_true`).
    pub item_mix: Vec<Vec<f32>>,
    /// Item popularity weights (unnormalized Zipf).
    pub item_pop: Vec<f32>,
}

/// A generated dataset plus its generating latent structure.
#[derive(Clone, Debug)]
pub struct SynthData {
    /// The observable dataset (what models see).
    pub dataset: Dataset,
    /// The hidden generating process (for diagnostics only).
    pub truth: GroundTruth,
}

/// Generates a dataset from `cfg` with the given seed.
pub fn generate(cfg: &SynthConfig, seed: u64) -> SynthData {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = cfg.k_true;

    // 1. Tag clusters: uniform assignment, every cluster non-empty.
    let mut tag_intent: Vec<usize> = (0..cfg.n_tags).map(|t| t % k).collect();
    shuffle(&mut tag_intent, &mut rng);
    let mut tag_pools: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (t, &i) in tag_intent.iter().enumerate() {
        tag_pools[i].push(t as u32);
    }

    // 2. Item intent mixtures + Zipf popularity.
    let item_mix: Vec<Vec<f32>> =
        (0..cfg.n_items).map(|_| dirichlet(k, cfg.intent_concentration, &mut rng)).collect();
    let mut ranks: Vec<usize> = (0..cfg.n_items).collect();
    shuffle(&mut ranks, &mut rng);
    let mut item_pop = vec![0f32; cfg.n_items];
    for (j, &r) in ranks.iter().enumerate() {
        item_pop[j] = 1.0 / ((r + 1) as f32).powf(cfg.zipf_exponent as f32);
    }

    // 3. Item tags: Poisson count, intent-conditional tag choice.
    let mut item_tags: Vec<Vec<u32>> = Vec::with_capacity(cfg.n_items);
    for mix in &item_mix {
        let count = poisson(cfg.tags_per_item, &mut rng).max(1);
        let mut tags = HashSet::with_capacity(count);
        let mut attempts = 0;
        while tags.len() < count && attempts < count * 20 {
            attempts += 1;
            let tag = if rng.gen_bool(cfg.tag_noise) {
                rng.gen_range(0..cfg.n_tags) as u32
            } else {
                let intent = sample_categorical(mix, &mut rng);
                let pool = &tag_pools[intent];
                pool[rng.gen_range(0..pool.len())]
            };
            tags.insert(tag);
        }
        let mut tags: Vec<u32> = tags.into_iter().collect();
        tags.sort_unstable();
        item_tags.push(tags);
    }

    // 4. User intent preferences.
    let user_pref: Vec<Vec<f32>> =
        (0..cfg.n_users).map(|_| dirichlet(k, cfg.intent_concentration, &mut rng)).collect();

    // 5. Per-intent item sampling tables: weight = popularity * intent share.
    let tables: Vec<CumTable> = (0..k)
        .map(|intent| {
            let w: Vec<f32> = (0..cfg.n_items).map(|j| item_pop[j] * item_mix[j][intent]).collect();
            CumTable::new(&w)
        })
        .collect();
    let uniform_table = CumTable::new(&vec![1.0; cfg.n_items]);

    // 6. Interaction quotas: Zipf user activity, cold users overridden.
    let mut user_ranks: Vec<usize> = (0..cfg.n_users).collect();
    shuffle(&mut user_ranks, &mut rng);
    let weights: Vec<f64> = user_ranks
        .iter()
        .map(|&r| 1.0 / ((r + 1) as f64).powf(cfg.user_activity_exponent))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let n_cold = (cfg.n_users as f64 * cfg.cold_user_frac) as usize;
    let mut quotas: Vec<usize> = weights
        .iter()
        .map(|w| ((cfg.target_ui as f64 * w / wsum).round() as usize).max(cfg.min_interactions))
        .collect();
    // The coldest users (largest rank) are capped under 10 interactions.
    let mut by_rank: Vec<usize> = (0..cfg.n_users).collect();
    by_rank.sort_by_key(|&u| std::cmp::Reverse(user_ranks[u]));
    for &u in by_rank.iter().take(n_cold) {
        quotas[u] = rng.gen_range(3..10);
    }

    // 7. Sample interactions.
    let mut adjacency: Vec<Vec<u32>> = Vec::with_capacity(cfg.n_users);
    for u in 0..cfg.n_users {
        let quota = quotas[u].min(cfg.n_items - 1);
        let mut items = HashSet::with_capacity(quota);
        let mut attempts = 0;
        while items.len() < quota && attempts < quota * 30 {
            attempts += 1;
            let j = if rng.gen_bool(cfg.interaction_noise) {
                uniform_table.sample(&mut rng)
            } else {
                let intent = sample_categorical(&user_pref[u], &mut rng);
                tables[intent].sample(&mut rng)
            };
            items.insert(j as u32);
        }
        let mut items: Vec<u32> = items.into_iter().collect();
        items.sort_unstable();
        adjacency.push(items);
    }

    let user_item = Csr::from_adjacency(cfg.n_users, cfg.n_items, &adjacency);
    let item_tag = Csr::from_adjacency(cfg.n_items, cfg.n_tags, &item_tags);
    SynthData {
        dataset: Dataset::new(cfg.name.clone(), user_item, item_tag),
        truth: GroundTruth { tag_intent, user_pref, item_mix, item_pop },
    }
}

/// Cumulative-sum sampling table (O(log n) per draw).
struct CumTable {
    cum: Vec<f32>,
}

impl CumTable {
    fn new(weights: &[f32]) -> Self {
        let mut cum = Vec::with_capacity(weights.len());
        let mut s = 0.0;
        for &w in weights {
            s += w.max(0.0);
            cum.push(s);
        }
        assert!(s > 0.0, "sampling table needs positive total weight");
        Self { cum }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cum.last().unwrap();
        let x = rng.gen_range(0.0..total);
        match self.cum.binary_search_by(|&c| c.total_cmp(&x)) {
            Ok(i) => (i + 1).min(self.cum.len() - 1),
            Err(i) => i,
        }
    }
}

fn sample_categorical(p: &[f32], rng: &mut impl Rng) -> usize {
    let total: f32 = p.iter().sum();
    let mut x = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for (i, &w) in p.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    p.len() - 1
}

fn dirichlet(k: usize, alpha: f64, rng: &mut impl Rng) -> Vec<f32> {
    let mut g: Vec<f64> = (0..k).map(|_| gamma(alpha, rng)).collect();
    let s: f64 = g.iter().sum();
    if s <= 0.0 {
        // Degenerate draw: fall back to a one-hot on a random coordinate.
        let mut v = vec![0.0f32; k];
        v[rng.gen_range(0..k)] = 1.0;
        return v;
    }
    g.iter_mut().for_each(|x| *x /= s);
    g.into_iter().map(|x| x as f32).collect()
}

/// Marsaglia–Tsang gamma sampler (shape `alpha`, scale 1).
fn gamma(alpha: f64, rng: &mut impl Rng) -> f64 {
    if alpha < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn std_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Knuth Poisson sampler (fine for the small means used here).
fn poisson(lambda: f64, rng: &mut impl Rng) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological lambda
        }
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut impl Rng) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.gen_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_generation_has_expected_shape() {
        let cfg = SynthConfig::tiny();
        let data = generate(&cfg, 42);
        let s = data.dataset.stats();
        assert_eq!(s.n_users, 60);
        assert_eq!(s.n_items, 90);
        assert_eq!(s.n_tags, 24);
        assert!(s.n_ui > 800, "too few interactions: {}", s.n_ui);
        assert!(s.n_it >= 90, "every item needs at least one tag");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SynthConfig::tiny();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a.dataset.user_item.forward(), b.dataset.user_item.forward());
        assert_eq!(a.dataset.item_tag.forward(), b.dataset.item_tag.forward());
        let c = generate(&cfg, 8);
        assert_ne!(a.dataset.user_item.forward(), c.dataset.user_item.forward());
    }

    #[test]
    fn every_cluster_nonempty_and_assignment_total() {
        let cfg = SynthConfig::tiny();
        let data = generate(&cfg, 1);
        let mut counts = vec![0usize; cfg.k_true];
        for &i in &data.truth.tag_intent {
            counts[i] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        assert_eq!(data.truth.tag_intent.len(), cfg.n_tags);
    }

    #[test]
    fn popularity_is_long_tailed() {
        let cfg = SynthConfig::tiny();
        let data = generate(&cfg, 3);
        let mut degs = data.dataset.user_item.col_degrees();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = degs.iter().take(degs.len() / 10).sum();
        let total: usize = degs.iter().sum();
        // Top 10% of items should hold well over 10% of interactions.
        assert!(head as f64 > 0.22 * total as f64, "head share too small: {head}/{total}");
    }

    #[test]
    fn cold_users_exist() {
        let cfg = SynthConfig::tiny();
        let data = generate(&cfg, 4);
        let cold = data.dataset.user_item.row_degrees().iter().filter(|&&d| d < 10).count();
        assert!(cold >= 2, "expected some cold users, found {cold}");
    }

    #[test]
    fn interactions_follow_intents() {
        // Users should interact with items whose mixtures match their
        // preferences far more often than random.
        let cfg = SynthConfig::tiny();
        let data = generate(&cfg, 5);
        let mut matched = 0.0f64;
        let mut count = 0usize;
        for (u, j, _) in data.dataset.user_item.forward().iter() {
            let pref = &data.truth.user_pref[u as usize];
            let mix = &data.truth.item_mix[j as usize];
            matched += pref.iter().zip(mix).map(|(&a, &b)| (a * b) as f64).sum::<f64>();
            count += 1;
        }
        let avg_match = matched / count as f64;
        // Random pairing baseline: E[pref . mix] = 1/k for Dirichlet pairs.
        let baseline = 1.0 / cfg.k_true as f64;
        assert!(
            avg_match > baseline * 1.25,
            "interactions carry no intent signal: {avg_match} vs baseline {baseline}"
        );
    }

    #[test]
    fn item_tags_follow_item_mixture() {
        let cfg = SynthConfig::tiny();
        let data = generate(&cfg, 6);
        let mut matched = 0.0f64;
        let mut count = 0usize;
        for (j, t, _) in data.dataset.item_tag.forward().iter() {
            let mix = &data.truth.item_mix[j as usize];
            matched += mix[data.truth.tag_intent[t as usize]] as f64;
            count += 1;
        }
        let avg = matched / count as f64;
        assert!(avg > 1.3 / cfg.k_true as f64, "tags not aligned with mixtures: {avg}");
    }

    #[test]
    fn presets_all_generate() {
        for cfg in SynthConfig::all_presets() {
            let small = cfg.scaled(0.1);
            let data = generate(&small, 0);
            let s = data.dataset.stats();
            assert!(s.n_users >= 20 && s.n_items >= 30, "preset {} too small", s.name);
            assert!(s.n_ui > 0 && s.n_it > 0);
        }
    }

    #[test]
    fn scaled_grows_counts() {
        let base = SynthConfig::hetrec_mv();
        let big = base.clone().scaled(2.0);
        assert!(big.n_users > base.n_users);
        assert!(big.target_ui > base.target_ui);
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let d = dirichlet(4, 0.3, &mut rng);
            let s: f32 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(d.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 3000;
        let total: usize = (0..n).map(|_| poisson(6.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.3, "poisson mean {mean}");
    }
}
