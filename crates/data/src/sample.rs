//! Mini-batch samplers for the training objectives.
//!
//! * [`BprSampler`] draws `(user, positive, negative)` triplets for the BPR
//!   losses `L_UV` (Eq. 1) and, via [`BprSampler::for_item_tags`], `L_VT`
//!   (Eq. 2). As in §V-D, every positive is paired with one uniform negative.
//! * [`ItemBatcher`] yields shuffled item-id batches for the per-item
//!   contrastive alignment pass (Eqs. 11–13).

use imcat_graph::Bipartite;
use rand::Rng;

use crate::dataset::SplitDataset;

/// A batch of BPR training triplets.
#[derive(Clone, Debug, Default)]
pub struct BprBatch {
    /// Anchor entities (users for `L_UV`, items for `L_VT`).
    pub anchors: Vec<u32>,
    /// Positive counterparts.
    pub positives: Vec<u32>,
    /// Uniformly drawn negatives (not interacted by the anchor).
    pub negatives: Vec<u32>,
}

impl BprBatch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

/// Uniform BPR triplet sampler over a bipartite interaction graph.
#[derive(Clone, Debug)]
pub struct BprSampler {
    edges: Vec<(u32, u32)>,
    graph: Bipartite,
    n_cols: usize,
}

impl BprSampler {
    /// Sampler over the training user→item interactions.
    pub fn for_user_items(data: &SplitDataset) -> Self {
        Self::from_bipartite(data.train.clone())
    }

    /// Sampler over the item→tag assignments (tag "recommendation", Eq. 2).
    pub fn for_item_tags(data: &SplitDataset) -> Self {
        Self::from_bipartite(data.item_tag.clone())
    }

    /// Sampler over any bipartite incidence.
    pub fn from_bipartite(graph: Bipartite) -> Self {
        let edges: Vec<(u32, u32)> = graph.forward().iter().map(|(a, b, _)| (a, b)).collect();
        let n_cols = graph.n_cols();
        Self { edges, graph, n_cols }
    }

    /// Number of positive pairs available.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of batches forming one nominal epoch at `batch_size`.
    pub fn batches_per_epoch(&self, batch_size: usize) -> usize {
        self.edges.len().div_ceil(batch_size.max(1)).max(1)
    }

    /// Draws a batch of triplets with uniform negatives.
    pub fn sample(&self, batch_size: usize, rng: &mut impl Rng) -> BprBatch {
        let _sp = imcat_obs::span("phase.sampling");
        if _sp.active() {
            imcat_obs::counter_add("sampler.bpr.batches", 1);
            imcat_obs::counter_add("sampler.bpr.triplets", batch_size as u64);
        }
        assert!(!self.edges.is_empty(), "cannot sample from an empty graph");
        assert!(self.n_cols >= 2, "need at least two candidate columns");
        let mut batch = BprBatch {
            anchors: Vec::with_capacity(batch_size),
            positives: Vec::with_capacity(batch_size),
            negatives: Vec::with_capacity(batch_size),
        };
        for _ in 0..batch_size {
            let &(a, p) = &self.edges[rng.gen_range(0..self.edges.len())];
            let neg = self.draw_negative(a, rng);
            batch.anchors.push(a);
            batch.positives.push(p);
            batch.negatives.push(neg);
        }
        batch
    }

    fn draw_negative(&self, anchor: u32, rng: &mut impl Rng) -> u32 {
        // Rejection sampling; falls back to accepting after enough misses
        // (only reachable when an anchor interacted with nearly everything).
        for _ in 0..64 {
            let cand = rng.gen_range(0..self.n_cols) as u32;
            if !self.graph.forward().contains(anchor as usize as u32, cand) {
                return cand;
            }
        }
        rng.gen_range(0..self.n_cols) as u32
    }
}

/// Shuffled fixed-size item-id batches (one shuffle per epoch).
#[derive(Clone, Debug)]
pub struct ItemBatcher {
    n_items: usize,
    batch_size: usize,
}

impl ItemBatcher {
    /// Creates a batcher over `n_items` ids.
    pub fn new(n_items: usize, batch_size: usize) -> Self {
        assert!(batch_size >= 2, "contrastive batches need at least 2 items");
        Self { n_items, batch_size }
    }

    /// Produces the batches of one epoch in random order.
    pub fn epoch(&self, rng: &mut impl Rng) -> Vec<Vec<u32>> {
        let _sp = imcat_obs::span("phase.sampling");
        if _sp.active() {
            imcat_obs::counter_add("sampler.item.epochs", 1);
        }
        let mut ids: Vec<u32> = (0..self.n_items as u32).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        ids.chunks(self.batch_size)
            .filter(|c| c.len() >= 2) // a singleton batch has no negatives
            .map(<[u32]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use imcat_tensor::Csr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_split() -> SplitDataset {
        let ui = Csr::from_adjacency(
            4,
            12,
            &[(0..8).collect(), (2..10).collect(), vec![0, 5, 10, 11], (4..12).collect()],
        );
        let it = Csr::from_adjacency(12, 3, &(0..12).map(|i| vec![i % 3]).collect::<Vec<_>>());
        let d = Dataset::new("toy", ui, it);
        let mut rng = StdRng::seed_from_u64(0);
        d.split((0.7, 0.1, 0.2), &mut rng)
    }

    #[test]
    fn bpr_negatives_are_not_positives() {
        let s = toy_split();
        let sampler = BprSampler::for_user_items(&s);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let b = sampler.sample(32, &mut rng);
            assert_eq!(b.len(), 32);
            for i in 0..b.len() {
                let u = b.anchors[i];
                assert!(s.train.forward().contains(u, b.positives[i]));
                assert!(!s.train.forward().contains(u, b.negatives[i]));
            }
        }
    }

    #[test]
    fn item_tag_sampler_uses_tags() {
        let s = toy_split();
        let sampler = BprSampler::for_item_tags(&s);
        let mut rng = StdRng::seed_from_u64(2);
        let b = sampler.sample(16, &mut rng);
        for i in 0..b.len() {
            assert!(b.positives[i] < 3);
            assert!(b.negatives[i] < 3);
            assert!(s.item_tag.forward().contains(b.anchors[i], b.positives[i]));
        }
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        let s = toy_split();
        let sampler = BprSampler::for_user_items(&s);
        let e = sampler.n_edges();
        assert_eq!(sampler.batches_per_epoch(e), 1);
        assert_eq!(sampler.batches_per_epoch(e - 1), 2);
    }

    #[test]
    fn item_batcher_covers_all_items_once() {
        let b = ItemBatcher::new(10, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let batches = b.epoch(&mut rng);
        let mut seen: Vec<u32> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u32>>());
        assert!(batches.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn item_batcher_drops_singleton_tail() {
        let b = ItemBatcher::new(9, 4); // 4 + 4 + 1 -> tail dropped
        let mut rng = StdRng::seed_from_u64(4);
        let batches = b.epoch(&mut rng);
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
    }
}
