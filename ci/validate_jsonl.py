#!/usr/bin/env python3
"""Shared CI validation for experiment reports and telemetry sinks.

Every smoke job used to carry its own copy of the same preamble: glob the
experiment JSON reports, recursively walk them for NaN/inf, check that the
JSONL telemetry sink exists, and scan its events. This script owns that
common layer; jobs invoke it with the files they produced plus declarative
requirements, and keep only their job-specific assertions inline.

Usage:
    python3 ci/validate_jsonl.py \
        --json 'target/experiments/*.json' \
        --jsonl target/experiments/telemetry.jsonl \
        --require-kind ann_frontier \
        --require-hist ann.probe.seconds \
        --require-gauge ann.recall_at10 \
        --require-counter-positive serve.shed

Checks performed:
  * every --json argument (path or glob) matches at least one file, and
    every value in every matched file is finite (no NaN, no inf)
  * every --jsonl sink exists, parses line-by-line, and is NaN/inf-free
  * --require-kind KIND: at least one telemetry event of that kind
  * --require-hist NAME: a hist event with that name and count > 0
  * --require-gauge NAME: a gauge event with that name
  * --require-counter-positive NAME: a counter with that name and value > 0

Exits nonzero with a per-failure message if any check fails.
"""

import argparse
import glob
import json
import math
import pathlib
import sys

failures = []


def fail(msg):
    print(f"FAIL: {msg}")
    failures.append(msg)


def walk(node, path):
    """Recursively flag any non-finite float anywhere in a JSON document."""
    if isinstance(node, dict):
        for k, v in node.items():
            walk(v, f"{path}.{k}")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            walk(v, f"{path}[{i}]")
    elif isinstance(node, float) and (math.isnan(node) or math.isinf(node)):
        fail(f"non-finite value at {path}: {node}")


def check_json(patterns):
    n = 0
    for pattern in patterns:
        matched = sorted(glob.glob(pattern))
        if not matched:
            fail(f"no JSON report matches {pattern}")
            continue
        for name in matched:
            p = pathlib.Path(name)
            try:
                walk(json.loads(p.read_text()), p.name)
            except json.JSONDecodeError as e:
                fail(f"{p.name} is not valid JSON: {e}")
            n += 1
    return n


def load_events(sinks):
    events = []
    for name in sinks:
        p = pathlib.Path(name)
        if not p.exists():
            fail(f"telemetry sink {name} was not written")
            continue
        for ln, line in enumerate(p.read_text().splitlines(), 1):
            if not line.strip():
                continue
            try:
                e = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"{p.name}:{ln} is not valid JSON: {err}")
                continue
            walk(e, f"{p.name}:{ln}")
            events.append(e)
    return events


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", action="append", default=[], metavar="PATH_OR_GLOB")
    ap.add_argument("--jsonl", action="append", default=[], metavar="PATH")
    ap.add_argument("--require-kind", action="append", default=[], metavar="KIND")
    ap.add_argument("--require-hist", action="append", default=[], metavar="NAME")
    ap.add_argument("--require-gauge", action="append", default=[], metavar="NAME")
    ap.add_argument(
        "--require-counter-positive", action="append", default=[], metavar="NAME"
    )
    args = ap.parse_args()

    n_json = check_json(args.json)
    events = load_events(args.jsonl)

    kinds = {e.get("kind") for e in events}
    for kind in args.require_kind:
        if kind not in kinds:
            fail(f"no {kind} events in telemetry")

    hists = {e["name"]: e for e in events if e.get("kind") == "hist" and "name" in e}
    for name in args.require_hist:
        h = hists.get(name)
        if h is None or h.get("count", 0) <= 0:
            fail(f"{name} histogram missing or empty in telemetry")

    gauges = {e["name"] for e in events if e.get("kind") == "gauge" and "name" in e}
    for name in args.require_gauge:
        if name not in gauges:
            fail(f"{name} gauge missing from telemetry")

    counters = {
        e["name"]: e.get("value", 0)
        for e in events
        if e.get("kind") == "counter" and "name" in e
    }
    for name in args.require_counter_positive:
        if counters.get(name, 0) <= 0:
            fail(f"{name} counter not recorded or non-positive")

    if failures:
        sys.exit(1)
    print(f"validated {n_json} JSON reports and {len(events)} telemetry events")


if __name__ == "__main__":
    main()
