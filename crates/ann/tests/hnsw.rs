//! HNSW contract tests: bit-identical builds across thread counts,
//! incremental inserts equal to a batch rebuild, brute-force parity at
//! exhaustive search width, exact probe scores at lossy widths, and
//! all-or-nothing persistence of the `ann.hnsw.*` sections.

use std::sync::{Mutex, OnceLock};

use imcat_ann::hnsw::{SEC_HNSW_LEVELS, SEC_HNSW_LINKS, SEC_HNSW_META};
use imcat_ann::{
    AnnConfig, AnnIndex, AnnKind, BruteIndex, HnswIndex, ProbeScratch, DEFAULT_BUILD_SEED,
};
use imcat_ckpt::{Checkpoint, Decoder, Encoder};
use imcat_tensor::{normal, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pool is process-global, so tests that reconfigure it must not overlap.
fn pool_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    imcat_par::set_threads(threads);
    let out = f();
    imcat_par::set_threads(imcat_par::default_threads());
    out
}

fn hnsw_cfg(m: usize, efc: usize, efs: usize) -> AnnConfig {
    AnnConfig {
        kind: AnnKind::Hnsw,
        m,
        ef_construction: efc,
        ef_search: efs,
        ..AnnConfig::default()
    }
}

fn serialize(idx: &HnswIndex) -> Vec<u8> {
    let mut ck = Checkpoint::new();
    idx.add_to_checkpoint(&mut ck);
    ck.to_bytes()
}

/// Probe fingerprint: compact candidate ids, score bits, remapped mask.
fn fingerprint(scratch: &ProbeScratch) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    (
        scratch.candidates().to_vec(),
        scratch.scores().iter().map(|s| s.to_bits()).collect(),
        scratch.mask().to_vec(),
    )
}

/// The graph build is serial by design, so the serialized index — vectors,
/// levels, adjacency, entry point — must be byte-for-byte identical at any
/// pool width; only the exact re-rank fans out.
#[test]
fn hnsw_build_bit_identical_at_1_and_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let items = normal(400, 12, 1.0, &mut rng);
    let cfg = hnsw_cfg(8, 32, 0);
    let bytes = |threads| {
        with_threads(threads, || {
            let idx = HnswIndex::build(&items, &cfg, DEFAULT_BUILD_SEED);
            serialize(&idx)
        })
    };
    assert_eq!(bytes(1), bytes(4), "serialized HNSW graph differs across thread counts");
}

#[test]
fn hnsw_probe_bit_identical_at_1_and_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let items = normal(500, 8, 1.0, &mut rng);
    let queries = normal(6, 8, 1.0, &mut rng);
    let cfg = hnsw_cfg(8, 32, 0);
    let mask: Vec<u32> = vec![3, 17, 250, 499];
    let run = |threads: usize| {
        with_threads(threads, || {
            let idx = HnswIndex::build(&items, &cfg, DEFAULT_BUILD_SEED);
            let mut scratch = ProbeScratch::default();
            let mut fp = Vec::new();
            for q in 0..queries.rows() {
                // One lossy width, one exhaustive (brute bypass) width.
                for ef in [24usize, 500] {
                    idx.probe(queries.row(q), &items, &mask, 10, ef, &mut scratch);
                    fp.push(fingerprint(&scratch));
                }
            }
            fp
        })
    };
    assert_eq!(run(1), run(4), "HNSW probe output depends on the thread count");
}

/// Streaming contract: growing a prefix graph by `insert` must land on the
/// same graph bytes as one batch build over the full catalog — levels are a
/// pure function of `(seed, id, m)` and the link path is identical. The
/// max-norm row sits in the prefix so the frozen `phi2` matches the batch
/// build's.
#[test]
fn incremental_inserts_equal_batch_build() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut items = normal(120, 6, 1.0, &mut rng);
    // Pin the norm ceiling to row 0, inside every prefix.
    for x in items.row_mut(0) {
        *x *= 10.0;
    }
    let cfg = hnsw_cfg(6, 24, 0);
    let batch = HnswIndex::build(&items, &cfg, DEFAULT_BUILD_SEED);
    for split in [1usize, 60, 119] {
        let prefix = Tensor::from_vec(split, 6, items.as_slice()[..split * 6].to_vec());
        let mut grown = HnswIndex::build(&prefix, &cfg, DEFAULT_BUILD_SEED);
        for id in split..items.rows() {
            grown.insert(id as u32, items.row(id)).unwrap();
        }
        assert_eq!(
            serialize(&grown),
            serialize(&batch),
            "prefix {split} + inserts differs from the batch build"
        );
    }
}

#[test]
fn insert_rejects_malformed_rows() {
    let mut rng = StdRng::seed_from_u64(22);
    let items = normal(20, 4, 1.0, &mut rng);
    let mut idx = HnswIndex::build(&items, &hnsw_cfg(4, 16, 0), DEFAULT_BUILD_SEED);
    assert!(idx.insert(20, &[1.0, 2.0]).is_err(), "dim mismatch accepted");
    assert!(idx.insert(25, &[1.0; 4]).is_err(), "non-dense id accepted");
    assert!(idx.insert(20, &[f32::NAN; 4]).is_err(), "nonfinite row accepted");
    assert_eq!(idx.n_items(), 20, "failed inserts must not grow the index");
    idx.insert(20, &[0.5; 4]).unwrap();
    assert_eq!(idx.n_items(), 21);
}

/// A handful of items made bitwise duplicates: at exhaustive width the
/// probe must reproduce brute force's tie order exactly (the heuristic
/// keeps zero-distance neighbors, so duplicates stay reachable — but the
/// acceptance bar is the ef >= n bypass, checked here).
#[test]
fn duplicate_rows_tie_order_matches_brute() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut items = normal(64, 5, 1.0, &mut rng);
    let dup = items.row(7).to_vec();
    for j in [11usize, 30, 55] {
        items.row_mut(j).copy_from_slice(&dup);
    }
    let hnsw = HnswIndex::build(&items, &hnsw_cfg(4, 16, 0), DEFAULT_BUILD_SEED);
    let brute = BruteIndex::build(&items, DEFAULT_BUILD_SEED);
    let query = items.row(7).to_vec();
    let mut a = ProbeScratch::default();
    let mut b = ProbeScratch::default();
    hnsw.probe(&query, &items, &[], 64, 64, &mut a);
    brute.probe(&query, &items, &[], 64, 64, &mut b);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

/// A finite-valued item matrix drawn from raw bits.
fn finite_items(rows: usize, cols: usize, gen: &mut Gen) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| {
                let raw = f32::from_bits(gen.next_u64() as u32);
                if raw.is_finite() {
                    raw.clamp(-1e30, 1e30)
                } else {
                    gen.below(1000) as f32
                }
            })
            .collect(),
    )
}

fn arbitrary_index(seed: u64) -> (HnswIndex, Tensor) {
    let mut gen = Gen::new(seed);
    let n_items = 2 + gen.below(60) as usize;
    let d = 1 + gen.below(6) as usize;
    let items = finite_items(n_items, d, &mut gen);
    let cfg = hnsw_cfg(2 + gen.below(8) as usize, 8 + gen.below(24) as usize, 0);
    (HnswIndex::build(&items, &cfg, seed ^ 0xa11), items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Acceptance criterion: at `ef_search >= n` the probe is bit-identical
    /// to [`BruteIndex`] — same compact candidates (`0..n`), same score
    /// bits, same remapped mask — for arbitrary finite catalogs and masks.
    #[test]
    fn exhaustive_width_equals_brute_bitwise(seed in 0u64..1_000_000) {
        let (idx, items) = arbitrary_index(seed);
        let brute = BruteIndex::build(&items, DEFAULT_BUILD_SEED);
        let mut gen = Gen::new(seed ^ 0x9e3);
        let query: Vec<f32> =
            (0..items.cols()).map(|_| gen.below(2001) as f32 / 1000.0 - 1.0).collect();
        let mut mask: Vec<u32> = (0..items.rows() as u32)
            .filter(|_| gen.below(4) == 0)
            .collect();
        mask.dedup();
        let mut a = ProbeScratch::default();
        let mut b = ProbeScratch::default();
        let k = 1 + gen.below(12) as usize;
        idx.probe(&query, &items, &mask, k, items.rows(), &mut a);
        brute.probe(&query, &items, &mask, k, items.rows(), &mut b);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// At *any* (lossy) width, returned candidates are sorted ascending,
    /// deduplicated, and every score is bit-identical to the exact dot
    /// product — recall is the only quality axis.
    #[test]
    fn lossy_probe_scores_are_exact(seed in 0u64..1_000_000) {
        let (idx, items) = arbitrary_index(seed);
        let mut gen = Gen::new(seed ^ 0x517);
        let query: Vec<f32> =
            (0..items.cols()).map(|_| gen.below(2001) as f32 / 1000.0 - 1.0).collect();
        let ef = 1 + gen.below(items.rows() as u64) as usize;
        let mut scratch = ProbeScratch::default();
        idx.probe(&query, &items, &[], 5, ef, &mut scratch);
        prop_assert!(!scratch.candidates().is_empty(), "probe found nothing");
        for w in scratch.candidates().windows(2) {
            prop_assert!(w[0] < w[1], "candidates not strictly ascending");
        }
        for (ci, &id) in scratch.candidates().iter().enumerate() {
            let exact = imcat_simd::dot(&query, items.row(id as usize));
            prop_assert_eq!(
                scratch.scores()[ci].to_bits(),
                exact.to_bits(),
                "candidate {} score differs from brute force",
                id
            );
        }
    }

    /// Arbitrary graphs survive the container roundtrip bit-exactly.
    #[test]
    fn roundtrip_is_bit_exact(seed in 0u64..1_000_000) {
        let (idx, _) = arbitrary_index(seed);
        let bytes = serialize(&idx);
        let ck = Checkpoint::from_bytes(&bytes).unwrap();
        let back = HnswIndex::from_checkpoint(&ck).unwrap().expect("sections present");
        prop_assert_eq!(serialize(&back), bytes);
        prop_assert_eq!(back.m(), idx.m());
        prop_assert_eq!(back.ef_construction(), idx.ef_construction());
    }

    /// A container with no `ann.hnsw.*` sections is "no index", not an error.
    #[test]
    fn absent_sections_decode_to_none(seed in 0u64..1_000_000) {
        let mut ck = Checkpoint::new();
        ck.insert("unrelated", vec![seed as u8]);
        prop_assert!(HnswIndex::from_checkpoint(&ck).unwrap().is_none());
    }

    /// Any strict truncation and any single-byte corruption of a
    /// graph-bearing container is rejected at the container layer.
    #[test]
    fn truncation_and_corruption_are_rejected(seed in 0u64..1_000_000) {
        let (idx, _) = arbitrary_index(seed);
        let bytes = serialize(&idx);
        let mut gen = Gen::new(seed ^ 0xfeed);

        let cut = gen.below(bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "truncation at {} accepted", cut);

        let mut flipped = bytes.clone();
        let at = gen.below(bytes.len() as u64) as usize;
        flipped[at] ^= 1 + gen.below(255) as u8;
        prop_assert!(Checkpoint::from_bytes(&flipped).is_err(), "byte flip at {} accepted", at);
    }

    /// Structurally valid sections whose *content* breaks the graph
    /// invariants decode as errors, never a partial index: a level bump
    /// desyncs the per-node adjacency, a truncated link stream is caught,
    /// and a wrong version is refused outright.
    #[test]
    fn semantic_corruption_is_rejected(seed in 0u64..1_000_000) {
        let (idx, _) = arbitrary_index(seed);

        // Bump a node's level: its adjacency no longer covers level+1 lists.
        let mut ck = Checkpoint::new();
        idx.add_to_checkpoint(&mut ck);
        let mut d = Decoder::new(ck.get(SEC_HNSW_LEVELS).unwrap());
        let mut levels = d.u32s().unwrap();
        levels[0] += 1;
        let mut e = Encoder::new();
        e.put_u32s(&levels);
        ck.insert(SEC_HNSW_LEVELS, e.into_bytes());
        prop_assert!(HnswIndex::from_checkpoint(&ck).is_err(), "level desync accepted");

        // Drop the tail of the adjacency stream.
        let mut ck = Checkpoint::new();
        idx.add_to_checkpoint(&mut ck);
        let mut d = Decoder::new(ck.get(SEC_HNSW_LINKS).unwrap());
        let links = d.u32s().unwrap();
        let mut e = Encoder::new();
        e.put_u32s(&links[..links.len() - 1]);
        ck.insert(SEC_HNSW_LINKS, e.into_bytes());
        prop_assert!(HnswIndex::from_checkpoint(&ck).is_err(), "truncated adjacency accepted");

        // Flip the version tag in the meta header.
        let mut ck = Checkpoint::new();
        idx.add_to_checkpoint(&mut ck);
        let mut meta = ck.get(SEC_HNSW_META).unwrap().to_vec();
        meta[0] ^= 0xff;
        ck.insert(SEC_HNSW_META, meta);
        prop_assert!(HnswIndex::from_checkpoint(&ck).is_err(), "wrong version accepted");
    }
}
