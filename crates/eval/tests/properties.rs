//! Property-based tests for metric invariants.

use imcat_data::{Dataset, SplitDataset};
use imcat_eval::{evaluate, paired_t_test, top_n_masked, top_n_masked_with, EvalSpec, TopKScratch};
use imcat_tensor::{Csr, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_split(seed: u64, users: usize, items: usize) -> SplitDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let adj: Vec<Vec<u32>> = (0..users)
        .map(|u| {
            let mut v: Vec<u32> = (0..items as u32)
                .filter(|i| !(u as u32 * 31 + i * 17 + seed as u32).is_multiple_of(3))
                .collect();
            v.truncate(10);
            v
        })
        .collect();
    let it: Vec<Vec<u32>> = (0..items).map(|i| vec![(i % 3) as u32]).collect();
    let data = Dataset::new(
        "prop",
        Csr::from_adjacency(users, items, &adj),
        Csr::from_adjacency(items, 3, &it),
    );
    data.split((0.7, 0.1, 0.2), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Metrics live in [0, 1] for arbitrary score matrices.
    #[test]
    fn metrics_bounded(seed in 0u64..500, n in 1usize..30) {
        let split = random_split(seed, 6, 20);
        let mut rng = StdRng::seed_from_u64(seed);
        let table = imcat_tensor::normal(6, 20, 1.0, &mut rng);
        let mut score_fn = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 20);
            for (r, &u) in users.iter().enumerate() {
                t.row_mut(r).copy_from_slice(table.row(u as usize));
            }
            t
        };
        let m = evaluate(&mut score_fn, &split, &EvalSpec::at(n));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.ndcg));
    }

    /// Recall@N is monotonically non-decreasing in N.
    #[test]
    fn recall_monotone_in_n(seed in 0u64..500) {
        let split = random_split(seed, 6, 20);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let table = imcat_tensor::normal(6, 20, 1.0, &mut rng);
        let mut score_fn = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), 20);
            for (r, &u) in users.iter().enumerate() {
                t.row_mut(r).copy_from_slice(table.row(u as usize));
            }
            t
        };
        let mut last = 0.0;
        for n in [1usize, 5, 10, 20] {
            let m = evaluate(&mut score_fn, &split, &EvalSpec::at(n));
            prop_assert!(m.recall >= last - 1e-12, "recall not monotone in N");
            last = m.recall;
        }
    }

    /// top_n_masked returns distinct, unmasked indices in descending score order.
    #[test]
    fn top_n_masked_invariants(
        scores in proptest::collection::vec(-10.0f32..10.0, 5..30),
        n in 1usize..10,
    ) {
        let mask: Vec<u32> = (0..scores.len() as u32).filter(|i| i % 4 == 0).collect();
        let top = top_n_masked(&scores, &mask, n);
        prop_assert!(top.len() <= n);
        let mut seen = std::collections::HashSet::new();
        let mut last = f32::INFINITY;
        for &j in &top {
            prop_assert!(mask.binary_search(&j).is_err(), "masked item leaked");
            prop_assert!(seen.insert(j), "duplicate item in ranking");
            prop_assert!(scores[j as usize] <= last + 1e-6, "not descending");
            last = scores[j as usize];
        }
    }

    /// Scratch reuse never changes the ranking: a shared `TopKScratch`
    /// driven through many calls matches the allocating wrapper bit-for-bit.
    #[test]
    fn scratch_reuse_matches_fresh(
        scores in proptest::collection::vec(-10.0f32..10.0, 5..30),
        n in 1usize..10,
    ) {
        let mask: Vec<u32> = (0..scores.len() as u32).filter(|i| i % 5 == 1).collect();
        let mut scratch = TopKScratch::default();
        // Warm the scratch with unrelated content first.
        let _ = top_n_masked_with(&scores, &[], scores.len(), &mut scratch);
        let shared = top_n_masked_with(&scores, &mask, n, &mut scratch).to_vec();
        prop_assert_eq!(shared, top_n_masked(&scores, &mask, n));
    }

    /// t-test symmetry: swapping the samples negates t and keeps p.
    #[test]
    fn t_test_antisymmetric(
        diffs in proptest::collection::vec(-0.5f64..0.5, 3..20),
    ) {
        let a: Vec<f64> = diffs.iter().map(|d| 0.5 + d).collect();
        let b = vec![0.5; a.len()];
        let fwd = paired_t_test(&a, &b);
        let rev = paired_t_test(&b, &a);
        if fwd.t.is_finite() {
            prop_assert!((fwd.t + rev.t).abs() < 1e-9);
            prop_assert!((fwd.p - rev.p).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&fwd.p));
        }
    }
}
