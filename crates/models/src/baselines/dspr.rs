//! DSPR baseline (Xu et al. 2016): a deep-semantic similarity model with a
//! *shared* MLP translating tag-based user and item profiles into one
//! embedding space, ranked by cosine similarity.

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{Adam, ParamStore, Tape, Tensor};
use rand::rngs::StdRng;

use crate::baselines::profiles::{item_tag_profiles, select_rows, user_tag_profiles};
use crate::common::{bpr_loss, EpochStats, Mlp, RecModel, TrainConfig};

/// Deep-semantic similarity over shared-parameter tag profiles.
pub struct Dspr {
    store: ParamStore,
    adam: Adam,
    cfg: TrainConfig,
    sampler: BprSampler,
    user_profiles: Tensor,
    item_profiles: Tensor,
    tower: Mlp,
}

impl Dspr {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let tower = Mlp::new(&mut store, "dspr.tower", &[data.n_tags(), cfg.dim, cfg.dim], rng);
        let adam = Adam::new(cfg.adam(), &store);
        Self {
            store,
            adam,
            sampler: BprSampler::for_user_items(data),
            user_profiles: user_tag_profiles(data),
            item_profiles: item_tag_profiles(data),
            tower,
            cfg,
        }
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let pu = tape.constant(select_rows(&self.user_profiles, &batch.anchors));
        let pp = tape.constant(select_rows(&self.item_profiles, &batch.positives));
        let pn = tape.constant(select_rows(&self.item_profiles, &batch.negatives));
        let fu = self.tower.forward(&mut tape, &self.store, pu);
        let fp = self.tower.forward(&mut tape, &self.store, pp);
        let fn_ = self.tower.forward(&mut tape, &self.store, pn);
        let fu = tape.l2_normalize_rows(fu, 1e-12);
        let fp = tape.l2_normalize_rows(fp, 1e-12);
        let fn_ = tape.l2_normalize_rows(fn_, 1e-12);
        let sp = tape.rowwise_dot(fu, fp);
        let sn = tape.rowwise_dot(fu, fn_);
        // Sharpen cosine scores so the ranking loss has gradient signal.
        let sp = tape.scale(sp, 5.0);
        let sn = tape.scale(sn, 5.0);
        let loss = bpr_loss(&mut tape, sp, sn);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.store);
        self.adam.step(&mut self.store);
        value
    }
}

impl RecModel for Dspr {
    fn name(&self) -> String {
        "DSPR".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        let fu = normalize_rows(self.tower.forward_tensor(&self.store, &self.user_profiles));
        let fv = normalize_rows(self.tower.forward_tensor(&self.store, &self.item_profiles));
        Some((fu, fv))
    }

    fn num_params(&self) -> usize {
        self.store.num_weights()
    }
}

fn normalize_rows(mut t: Tensor) -> Tensor {
    for r in 0..t.rows() {
        let n = (t.row(r).iter().map(|x| x * x).sum::<f32>() + 1e-12).sqrt();
        for x in t.row_mut(r) {
            *x /= n;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn loss_decreases() {
        let data = tiny_split(61);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Dspr::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..25 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(62);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Dspr::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 40);
    }

    #[test]
    fn scores_are_cosine_bounded() {
        let data = tiny_split(63);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Dspr::new(&data, TrainConfig::default(), &mut rng);
        let s = model.score_users(&[0, 1]);
        assert!(s.as_slice().iter().all(|&x| (-1.01..=1.01).contains(&x)));
    }
}
