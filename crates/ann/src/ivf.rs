//! IVF-Flat index with exact re-rank.
//!
//! Top-K retrieval is *maximum inner product* search, and k-means is an L2
//! quantizer, so the index first applies the standard MIPS-to-L2 reduction
//! (Bachrach et al., 2014): each item `x` is augmented to
//! `[x, sqrt(Φ² − ‖x‖²)]` with `Φ = max_i ‖x_i‖`, and the query to
//! `[q, 0]`. In the augmented space
//! `‖q̃ − x̃‖² = ‖q‖² + Φ² − 2·(q·x)` — monotone decreasing in the inner
//! product — so nearest-centroid clustering and probe ranking are both
//! geometry-correct for dot-product scoring, norms included.
//!
//! The index partitions the augmented item matrix into `nlist` inverted
//! lists by nearest k-means centroid (the same shared k-means the intent
//! module uses, see [`crate::kmeans`]). A query probes the `nprobe`
//! centroids closest (augmented L2) to the user embedding, scans only their
//! lists, and scores every surviving candidate **exactly** with the same
//! sequential dot-product accumulation the brute-force path uses.
//! Candidates come back as a compact, ascending-id slice plus a remapped
//! mask, so the caller can re-rank through the evaluator's own
//! `top_n_masked_with` selection: when every item is a candidate
//! (`nprobe == nlist`) the compact arrays *are* the brute-force arrays and
//! the output is bit-identical, tie order included.
//!
//! An optional int8 scalar-quantized list storage (`AnnConfig::quantized`)
//! scans candidates through per-item-scaled i8 codes (4x smaller memory
//! traffic for memory-bound catalogs), shortlists by approximate score, and
//! then re-scores the shortlist from f32 — quantization can only affect
//! which candidates survive the shortlist, never the final ordering of the
//! returned list.
//!
//! ## Error-bounded int8 scoring
//!
//! Each quantized entry also persists a *unit error bound*: the maximum
//! per-coordinate dequantization error `max_d |x_d − scale·code_d|` plus a
//! float-summation slack (`8·d·ε·max|x|`) that dominates the rounding error
//! of both the int8 and the f32 dot products. Multiplying by the query's L1
//! norm bounds `|exact − approx|` for that entry. [`IvfIndex::probe`] uses
//! this to *certify* the top-K straight from int8 scores: when the ranked
//! approximate scores of the K winners are pairwise separated — and
//! separated from every remaining candidate — by more than the summed
//! bounds, the exact ranking provably equals the approximate one, and the
//! probe skips the shortlist re-rank, exact-scoring only the K winners (so
//! returned scores are still exact f32 bits). Any overlap — including every
//! exact-score tie, whose margin is zero — falls back to the full shortlist
//! re-rank, which is also available unconditionally as
//! [`IvfIndex::probe_rerank`]. The two paths return bit-identical results;
//! `ann_parity` and the quantization proptests assert it.

use std::io;

use imcat_ckpt::{Checkpoint, Decoder, Encoder};
use imcat_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kmeans::{assign_nearest, kmeans_centers};

/// Section holding the index geometry, build seed, and storage flavor.
pub const SEC_ANN_META: &str = "ann.meta";
/// Section holding the `[nlist, d+1]` coarse-quantizer centroids (trained
/// in the MIPS-augmented space, hence the extra column).
pub const SEC_ANN_CENTROIDS: &str = "ann.centroids";
/// Section holding the inverted lists (offsets + item-id entries).
pub const SEC_ANN_LISTS: &str = "ann.lists";
/// Section holding the optional int8 codes, per-item scales, and per-item
/// quantization-error bounds.
pub const SEC_ANN_CODES: &str = "ann.codes";

/// Index format version inside [`SEC_ANN_META`]. Version 2 added persisted
/// per-entry error bounds to [`SEC_ANN_CODES`]; version 3 added the frozen
/// MIPS-augmentation constant `Φ²` so streamed items can be inserted into
/// the lists with the same geometry the index was built under. Older
/// versions are rejected at decode (the engine then rebuilds and counts
/// `ann.index.rebuilds`).
const ANN_VERSION: u32 = 3;
/// Lloyd iterations used when training the coarse quantizer.
const BUILD_ITERS: usize = 10;
/// Candidates per parallel exact-scoring chunk.
const SCORE_GRAIN: usize = 256;
/// Default RNG seed for index builds: fixed so a rebuild from the same
/// embedding matrix is bit-identical across processes and machines.
pub const DEFAULT_BUILD_SEED: u64 = 0x1517_ACE5;

/// ANN retrieval configuration.
///
/// Every numeric field at `0` means "auto". For IVF: `nlist` defaults to
/// roughly `2·√n_items` (finer partitions than the classic `√n` rule, which
/// at these catalog scales buys a better recall/latency frontier), and
/// `nprobe` to `nlist / 8` — the knee of the measured recall/QPS frontier on
/// the largest synthetic catalog (recall@10 ≈ 0.97 at ≈ 5× brute-force QPS;
/// see EXPERIMENTS.md). Raise `nprobe` for recall, lower it for speed.
///
/// For HNSW ([`crate::index::AnnKind::Hnsw`]): `m` / `ef_construction` /
/// `ef_search` at `0` first consult the `IMCAT_HNSW_M` / `IMCAT_HNSW_EFC` /
/// `IMCAT_HNSW_EFS` knobs, then auto-tune from the catalog size (see the
/// `resolved_*` methods). `ef_search` is query-time only — sweeping it
/// reuses one graph, exactly like `nprobe` reuses one set of lists.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnnConfig {
    /// Which concrete backend to build (IVF-Flat by default; see
    /// [`crate::index::AnnKind`]).
    pub kind: crate::index::AnnKind,
    /// Number of inverted lists (0 = auto). IVF only.
    pub nlist: usize,
    /// Lists probed per query (0 = auto). Query-time only: sweeping `nprobe`
    /// reuses one index. IVF only.
    pub nprobe: usize,
    /// Store int8 scalar-quantized list codes and shortlist through them
    /// before the exact f32 re-rank. IVF only.
    pub quantized: bool,
    /// HNSW max neighbors per node per level (level 0 holds `2·m`); 0 =
    /// `IMCAT_HNSW_M`, then auto.
    pub m: usize,
    /// HNSW construction-time beam width; 0 = `IMCAT_HNSW_EFC`, then auto.
    pub ef_construction: usize,
    /// HNSW query-time beam width; 0 = `IMCAT_HNSW_EFS`, then auto. At
    /// `ef_search >= n_items` the probe is exhaustive and bit-identical to
    /// [`crate::index::BruteIndex`].
    pub ef_search: usize,
}

impl AnnConfig {
    /// The list count this configuration resolves to for an `n_items`
    /// catalog (auto: `~2·√n_items`, clamped to `[1, n_items]`).
    pub fn resolved_nlist(&self, n_items: usize) -> usize {
        let raw = if self.nlist > 0 {
            self.nlist
        } else {
            (2.0 * (n_items.max(1) as f64).sqrt()).round() as usize
        };
        raw.clamp(1, n_items.max(1))
    }

    /// The probe count this configuration resolves to (auto: `nlist / 8`,
    /// minimum 1, clamped to the resolved `nlist`).
    pub fn resolved_nprobe(&self, n_items: usize) -> usize {
        let nlist = self.resolved_nlist(n_items);
        let raw = if self.nprobe > 0 { self.nprobe } else { (nlist / 8).max(1) };
        raw.clamp(1, nlist)
    }

    /// The HNSW degree bound this configuration resolves to: the explicit
    /// field, else the `IMCAT_HNSW_M` knob, else auto (8 below ~1k items,
    /// 16 above — small catalogs don't earn dense graphs), clamped to
    /// `[2, 128]`.
    pub fn resolved_m(&self, n_items: usize) -> usize {
        let mut raw = self.m;
        if raw == 0 {
            raw = imcat_obs::knobs::knob_usize("IMCAT_HNSW_M", 0);
        }
        if raw == 0 {
            raw = if n_items < 1024 { 8 } else { 16 };
        }
        raw.clamp(2, 128)
    }

    /// The HNSW construction beam this configuration resolves to: the
    /// explicit field, else the `IMCAT_HNSW_EFC` knob, else `8·m` (at the
    /// auto `m = 16` that is the conventional 128), never below `m`.
    pub fn resolved_ef_construction(&self, n_items: usize) -> usize {
        let mut raw = self.ef_construction;
        if raw == 0 {
            raw = imcat_obs::knobs::knob_usize("IMCAT_HNSW_EFC", 0);
        }
        if raw == 0 {
            raw = 8 * self.resolved_m(n_items);
        }
        raw.max(self.resolved_m(n_items))
    }

    /// The HNSW search beam this configuration resolves to: the explicit
    /// field, else the `IMCAT_HNSW_EFS` knob, else `√n_items` clamped to
    /// `[48, 128]` — wide enough for recall@10 ≥ 0.95 on the measured
    /// frontier, far below the `nlist/8`-of-the-catalog an IVF probe scans.
    /// Values at or above `n_items` make the probe exhaustive (brute-force
    /// bit-identity), so tiny catalogs resolve to exact search.
    pub fn resolved_ef_search(&self, n_items: usize) -> usize {
        let mut raw = self.ef_search;
        if raw == 0 {
            raw = imcat_obs::knobs::knob_usize("IMCAT_HNSW_EFS", 0);
        }
        if raw == 0 {
            raw = ((n_items.max(1) as f64).sqrt().round() as usize).clamp(48, 128);
        }
        raw.max(1)
    }

    /// The probe width the serving engine should pass to
    /// [`crate::index::AnnIndex::probe`] for this configuration's kind:
    /// `nprobe` for the list-based backends, `ef_search` for the graph.
    pub fn resolved_probe_width(&self, n_items: usize) -> usize {
        match self.kind {
            crate::index::AnnKind::Hnsw => self.resolved_ef_search(n_items),
            _ => self.resolved_nprobe(n_items),
        }
    }
}

/// Reusable probe buffers plus the compact result of the last probe. One
/// scratch per engine serializes per-query allocation away; reuse never
/// changes results (every buffer is fully overwritten per probe).
#[derive(Default)]
pub struct ProbeScratch {
    /// `(score, centroid)` ranking buffer.
    order: Vec<(f32, u32)>,
    /// Candidate item ids, ascending — the compact index space.
    cand: Vec<u32>,
    /// Entry positions aligned with `cand` while shortlisting (quantized).
    approx: Vec<(f32, u32, u32)>,
    /// Unmasked entries ranked by approximate score while attempting a
    /// certified skip (quantized).
    ranked: Vec<(f32, u32, u32)>,
    /// Exact scores aligned with `cand`.
    scores: Vec<f32>,
    /// The caller's mask remapped into compact candidate indices.
    mask: Vec<u32>,
    /// Whether the last probe certified its top-K from int8 scores and
    /// skipped the shortlist re-rank.
    certified: bool,
    /// Graph-traversal state for [`crate::hnsw::HnswIndex`] probes (visited
    /// stamps, frontier heaps); unused by the list-based backends.
    pub(crate) graph: crate::hnsw::GraphSearch,
}

impl ProbeScratch {
    /// Candidate item ids of the last probe, ascending.
    pub fn candidates(&self) -> &[u32] {
        &self.cand
    }

    /// Exact dot-product scores aligned with [`ProbeScratch::candidates`].
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// The query mask remapped to compact candidate indices (ascending).
    pub fn mask(&self) -> &[u32] {
        &self.mask
    }

    /// True when the last probe certified its top-K entirely from int8
    /// scores and skipped the shortlist re-rank ([`IvfIndex::probe`] on a
    /// quantized index only; always false after
    /// [`IvfIndex::probe_rerank`]).
    pub fn certified_skip(&self) -> bool {
        self.certified
    }

    /// Fills the scratch with the exhaustive candidate set `0..n_items`,
    /// exact scores (the same `imcat_simd::dot` kernel and pool fan-out the
    /// IVF re-rank uses, so bit-identical to it at `nprobe == nlist`), and
    /// the mask verbatim (candidate index == item id). The whole probe of
    /// [`crate::index::BruteIndex`].
    pub(crate) fn set_brute(&mut self, query: &[f32], items: &Tensor, mask: &[u32]) {
        self.certified = false;
        let n = items.rows();
        self.cand.clear();
        self.cand.extend(0..n as u32);
        self.scores.clear();
        self.scores.resize(n, 0.0);
        imcat_par::global().parallel_chunks_mut(&mut self.scores, SCORE_GRAIN, |ci, slots| {
            for (off, slot) in slots.iter_mut().enumerate() {
                *slot = imcat_simd::dot(query, items.row(ci * SCORE_GRAIN + off));
            }
        });
        self.mask.clear();
        self.mask.extend_from_slice(mask);
    }

    /// Fills the scratch from an explicit candidate id set (any order,
    /// duplicate-free): ids are sorted ascending into the compact index
    /// space, exact-scored with the same pooled `imcat_simd::dot` fan-out
    /// the other paths use, and the caller's `mask` is remapped to compact
    /// candidate indices. The back half of a graph probe.
    pub(crate) fn set_candidates(
        &mut self,
        ids: &[u32],
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
    ) {
        self.certified = false;
        self.cand.clear();
        self.cand.extend_from_slice(ids);
        self.cand.sort_unstable();
        self.scores.clear();
        self.scores.resize(self.cand.len(), 0.0);
        let cand = &self.cand;
        imcat_par::global().parallel_chunks_mut(&mut self.scores, SCORE_GRAIN, |ci, slots| {
            for (off, slot) in slots.iter_mut().enumerate() {
                let id = cand[ci * SCORE_GRAIN + off] as usize;
                *slot = imcat_simd::dot(query, items.row(id));
            }
        });
        self.mask.clear();
        let mut m = 0usize;
        for (ci, &id) in self.cand.iter().enumerate() {
            while m < mask.len() && mask[m] < id {
                m += 1;
            }
            if m < mask.len() && mask[m] == id {
                self.mask.push(ci as u32);
            }
        }
    }
}

/// An IVF-Flat index over one frozen item-embedding matrix.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    dim: usize,
    n_items: usize,
    seed: u64,
    quantized: bool,
    /// The squared MIPS-augmentation constant `Φ² = max_i ‖x_i‖²` frozen at
    /// build time. Streamed inserts augment against this value (clamping the
    /// completion coordinate at 0 for items that out-norm the build set) so
    /// their list assignment lives in the same geometry as the build.
    phi2: f64,
    /// `[nlist, dim + 1]` coarse-quantizer centroids in the MIPS-augmented
    /// space (last column is the norm-completion coordinate).
    centroids: Tensor,
    /// `nlist + 1` prefix offsets into `entries`.
    offsets: Vec<u32>,
    /// Item ids, grouped by list, ascending within each list. The lists
    /// partition `0..n_items`: every id appears exactly once.
    entries: Vec<u32>,
    /// Int8 codes aligned with `entries` (`entries.len() * dim`), empty when
    /// not quantized.
    codes: Vec<i8>,
    /// Per-entry dequantization scales, empty when not quantized.
    scales: Vec<f32>,
    /// Per-entry unit error bounds (multiply by the query's L1 norm to bound
    /// `|exact − approx|`), empty when not quantized. Computed once at build
    /// time and persisted with the codes.
    bounds: Vec<f32>,
}

impl IvfIndex {
    /// Trains the coarse quantizer and buckets every item. Deterministic: the
    /// same `(items, cfg, seed)` produces a bit-identical index at any
    /// `IMCAT_THREADS` setting.
    pub fn build(items: &Tensor, cfg: &AnnConfig, seed: u64) -> Self {
        let sp = imcat_obs::span("ann.build.seconds");
        let (n_items, dim) = items.shape();
        if n_items == 0 {
            // Degenerate catalog: a single zero centroid with an empty list,
            // so probes produce an empty candidate set instead of panicking.
            // Streamed inserts still work (everything lands in list 0).
            drop(sp);
            if imcat_obs::enabled() {
                imcat_obs::counter_add("ann.builds", 1);
            }
            return Self {
                dim,
                n_items: 0,
                seed,
                quantized: cfg.quantized,
                phi2: 0.0,
                centroids: Tensor::zeros(1, dim + 1),
                offsets: vec![0, 0],
                entries: Vec::new(),
                codes: Vec::new(),
                scales: Vec::new(),
                bounds: Vec::new(),
            };
        }
        let nlist = cfg.resolved_nlist(n_items);
        // MIPS-to-L2 augmentation: [x, sqrt(Φ² − ‖x‖²)] equalizes norms so
        // L2 k-means clusters by inner-product relevance, not just
        // direction. Norms accumulate in f64: squared f32 magnitudes can
        // overflow f32 while their square roots are still representable.
        let norms2: Vec<f64> =
            (0..n_items).map(|i| items.row(i).iter().map(|&x| x as f64 * x as f64).sum()).collect();
        let max2 = norms2.iter().fold(0f64, |m, &v| m.max(v));
        let mut aug = Tensor::zeros(n_items, dim + 1);
        for (i, &n2) in norms2.iter().enumerate() {
            aug.row_mut(i)[..dim].copy_from_slice(items.row(i));
            aug.row_mut(i)[dim] = (max2 - n2).max(0.0).sqrt() as f32;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let centroids = kmeans_centers(&aug, nlist, BUILD_ITERS, &mut rng);
        let assign = assign_nearest(&aug, &centroids);
        let mut counts = vec![0u32; nlist];
        for &a in &assign {
            counts[a] += 1;
        }
        let mut offsets = Vec::with_capacity(nlist + 1);
        offsets.push(0u32);
        for &c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let mut cursor: Vec<u32> = offsets[..nlist].to_vec();
        let mut entries = vec![0u32; n_items];
        // Ascending item order per list falls out of the ascending scan.
        for (i, &a) in assign.iter().enumerate() {
            entries[cursor[a] as usize] = i as u32;
            cursor[a] += 1;
        }
        let (codes, scales, bounds) = if cfg.quantized {
            let mut codes = vec![0i8; n_items * dim];
            let mut scales = vec![0f32; n_items];
            let mut bounds = vec![0f32; n_items];
            for (pos, &id) in entries.iter().enumerate() {
                let row = items.row(id as usize);
                let max_abs = row.iter().fold(0f32, |m, &x| m.max(x.abs()));
                let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
                scales[pos] = scale;
                if scale > 0.0 {
                    for (c, &x) in codes[pos * dim..(pos + 1) * dim].iter_mut().zip(row) {
                        *c = (x / scale).round().clamp(-127.0, 127.0) as i8;
                    }
                }
                // Unit error bound: the worst per-coordinate dequantization
                // error, plus a summation slack that dominates the f32
                // rounding error of both the int8 and the exact dot product
                // (each is a length-`dim` accumulation of terms no larger
                // than `max_abs·|q_d|`, so `8·dim·ε·max_abs` per unit of
                // query L1 mass covers both with a wide margin). Multiplied
                // by `‖q‖₁` at probe time this bounds `|exact − approx|`.
                let eps = codes[pos * dim..(pos + 1) * dim]
                    .iter()
                    .zip(row)
                    .map(|(&c, &x)| (x - scale * c as f32).abs())
                    .fold(0f32, f32::max);
                bounds[pos] = eps + 8.0 * dim as f32 * f32::EPSILON * max_abs;
            }
            (codes, scales, bounds)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        drop(sp);
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ann.builds", 1);
        }
        Self {
            dim,
            n_items,
            seed,
            quantized: cfg.quantized,
            phi2: max2,
            centroids,
            offsets,
            entries,
            codes,
            scales,
            bounds,
        }
    }

    /// Appends one item to the index without retraining the coarse
    /// quantizer: the embedding is MIPS-augmented against the frozen build
    /// `Φ²`, assigned to its nearest centroid, and appended to that list
    /// (its id is the current maximum, so ascending list order is
    /// preserved). On a quantized index the int8 code, scale, and certified
    /// error bound are recomputed with the identical per-row formulas the
    /// build uses, so certified-skip stays exact for streamed items.
    ///
    /// Ids stay dense: `id` must equal the current catalog size. Items whose
    /// norm exceeds the build `Φ` get a clamped completion coordinate of 0 —
    /// list assignment degrades gracefully and probe scoring stays exact
    /// (candidates are always re-scored from f32); a background rebuild
    /// restores the invariant.
    pub fn insert(&mut self, id: u32, embedding: &[f32]) -> io::Result<()> {
        if embedding.len() != self.dim {
            return Err(bad(format!(
                "insert embedding dim {} != index dim {}",
                embedding.len(),
                self.dim
            )));
        }
        if id as usize != self.n_items {
            return Err(bad(format!(
                "ids are dense: insert expected id {} got {id}",
                self.n_items
            )));
        }
        if embedding.iter().any(|x| !x.is_finite()) {
            return Err(bad("insert embedding contains nonfinite values"));
        }
        let n2: f64 = embedding.iter().map(|&x| x as f64 * x as f64).sum();
        let tail = (self.phi2 - n2).max(0.0).sqrt() as f32;
        // Nearest centroid over the augmented coordinates, same accumulation
        // shape as `kmeans::assign_nearest` (ties to the lower list id).
        let mut best = 0usize;
        let mut best_d2 = f32::INFINITY;
        for c in 0..self.nlist() {
            let crow = self.centroids.row(c);
            let mut d2 = 0f32;
            for (&a, &b) in embedding.iter().chain(std::iter::once(&tail)).zip(crow) {
                d2 += (a - b) * (a - b);
            }
            if d2 < best_d2 {
                best = c;
                best_d2 = d2;
            }
        }
        let pos = self.offsets[best + 1] as usize;
        self.entries.insert(pos, id);
        for o in &mut self.offsets[best + 1..] {
            *o += 1;
        }
        if self.quantized {
            let max_abs = embedding.iter().fold(0f32, |m, &x| m.max(x.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
            let mut code = vec![0i8; self.dim];
            if scale > 0.0 {
                for (c, &x) in code.iter_mut().zip(embedding) {
                    *c = (x / scale).round().clamp(-127.0, 127.0) as i8;
                }
            }
            let eps = code
                .iter()
                .zip(embedding)
                .map(|(&c, &x)| (x - scale * c as f32).abs())
                .fold(0f32, f32::max);
            let bound = eps + 8.0 * self.dim as f32 * f32::EPSILON * max_abs;
            self.codes.splice(pos * self.dim..pos * self.dim, code);
            self.scales.insert(pos, scale);
            self.bounds.insert(pos, bound);
        }
        self.n_items += 1;
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ann.inserts", 1);
        }
        Ok(())
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Catalog size the index was built over.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Embedding dimension the index was built over.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the lists carry int8 scalar-quantized codes.
    pub fn quantized(&self) -> bool {
        self.quantized
    }

    /// The build seed (part of the identity checked by
    /// [`IvfIndex::matches`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when this index is exactly what [`IvfIndex::build`] would produce
    /// for `cfg` over an `n_items`-catalog with `seed` — the staleness check
    /// used when deciding whether a persisted index can be reused.
    pub fn matches(&self, cfg: &AnnConfig, n_items: usize, dim: usize, seed: u64) -> bool {
        self.n_items == n_items
            && self.dim == dim
            && self.seed == seed
            && self.quantized == cfg.quantized
            && self.nlist() == cfg.resolved_nlist(n_items)
    }

    /// Probes the `nprobe` best lists for `query` and scores every candidate
    /// exactly against `items` (the f32 matrix the index was built from),
    /// leaving a compact ascending-id candidate set, exact scores, and the
    /// remapped `mask` in `scratch`.
    ///
    /// Candidate scoring uses the identical `imcat_simd::dot` kernel as
    /// brute force and fans out over the `imcat-par` pool bit-identically.
    /// With `nprobe >= nlist` on a non-quantized index the compact arrays
    /// equal the full brute-force score row and mask, so downstream
    /// `top_n_masked_with` selection is bit-identical, tie order included.
    ///
    /// On a quantized index this entry point may take the certified skip
    /// path (see the module docs): when the int8 error bounds prove the
    /// exact top-`k` unmasked candidates and their order, only those `k`
    /// are exact-scored and left in `scratch` — downstream selection of the
    /// top `k` then returns bit-identical ids and scores to the full
    /// re-rank, proven by `ann_parity` and the quantization proptests.
    /// [`ProbeScratch::certified_skip`] reports which path ran.
    pub fn probe(
        &self,
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
        k: usize,
        nprobe: usize,
        scratch: &mut ProbeScratch,
    ) {
        self.probe_impl(query, items, mask, k, nprobe, scratch, true);
    }

    /// [`IvfIndex::probe`] with the certified int8 skip disabled: quantized
    /// indices always shortlist + exact re-rank, exactly the historical
    /// behavior. The reference path the skip is verified against.
    pub fn probe_rerank(
        &self,
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
        k: usize,
        nprobe: usize,
        scratch: &mut ProbeScratch,
    ) {
        self.probe_impl(query, items, mask, k, nprobe, scratch, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn probe_impl(
        &self,
        query: &[f32],
        items: &Tensor,
        mask: &[u32],
        k: usize,
        nprobe: usize,
        scratch: &mut ProbeScratch,
        allow_skip: bool,
    ) {
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        // The item matrix may run *ahead* of the index during streaming
        // (items registered but not yet folded into the lists are simply
        // unreachable through the probe until they are inserted); it can
        // never run behind.
        assert!(
            items.rows() >= self.n_items && items.cols() == self.dim,
            "item matrix {:?} smaller than index ({}, {})",
            items.shape(),
            self.n_items,
            self.dim
        );
        let sp = imcat_obs::span("ann.probe.seconds");
        let nprobe = nprobe.clamp(1, self.nlist());
        scratch.certified = false;
        // Rank centroids by L2 distance to the augmented query `[q, 0]`
        // (ascending, ties to lower id) — in the augmented space, closer
        // means higher attainable inner product.
        scratch.order.clear();
        for c in 0..self.nlist() {
            let crow = self.centroids.row(c);
            let tail = crow[self.dim];
            let acc = imcat_simd::l2_sq(query, &crow[..self.dim]) + tail * tail;
            scratch.order.push((acc, c as u32));
        }
        scratch.order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Gather candidate entries from the probed lists; quantized lists
        // are scanned entirely in int8 through the fused kernel.
        scratch.cand.clear();
        scratch.approx.clear();
        for &(_, c) in scratch.order.iter().take(nprobe) {
            let lo = self.offsets[c as usize] as usize;
            let hi = self.offsets[c as usize + 1] as usize;
            if self.quantized {
                for pos in lo..hi {
                    let id = self.entries[pos];
                    let approx = imcat_simd::dot_i8_scaled(
                        &self.codes[pos * self.dim..(pos + 1) * self.dim],
                        query,
                        self.scales[pos],
                    );
                    scratch.approx.push((approx, id, pos as u32));
                }
            } else {
                scratch.cand.extend_from_slice(&self.entries[lo..hi]);
            }
        }
        if self.quantized {
            if allow_skip && k > 0 && self.try_certified_skip(query, mask, k, scratch) {
                scratch.cand.sort_unstable();
                self.exact_scores(query, items, scratch);
                // All certified candidates are unmasked by construction.
                scratch.mask.clear();
                scratch.certified = true;
                drop(sp);
                if imcat_obs::enabled() {
                    imcat_obs::counter_add("ann.probes", 1);
                    imcat_obs::counter_add("ann.rerank_skips", 1);
                    imcat_obs::observe("ann.candidates", scratch.cand.len() as f64);
                }
                return;
            }
            if allow_skip && imcat_obs::enabled() {
                imcat_obs::counter_add("ann.reranks", 1);
            }
            // Shortlist by approximate score (descending, ties to lower id),
            // sized so the exact re-rank still has k unmasked survivors with
            // margin; the final ordering comes from exact f32 scores only.
            let masked = scratch
                .approx
                .iter()
                .filter(|&&(_, id, _)| mask.binary_search(&id).is_ok())
                .count();
            let shortlist = (4 * k + masked + 32).min(scratch.approx.len());
            if shortlist > 0 && shortlist < scratch.approx.len() {
                scratch.approx.select_nth_unstable_by(shortlist - 1, |a, b| {
                    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
                });
                scratch.approx.truncate(shortlist);
            }
            scratch.cand.extend(scratch.approx.iter().map(|&(_, id, _)| id));
        }
        // Compact index space: ascending item ids (lists are disjoint, so no
        // duplicates). When every list is probed this is exactly 0..n_items.
        scratch.cand.sort_unstable();

        self.exact_scores(query, items, scratch);

        // Remap the (ascending) mask into compact candidate indices.
        scratch.mask.clear();
        let mut m = 0usize;
        for (ci, &id) in scratch.cand.iter().enumerate() {
            while m < mask.len() && mask[m] < id {
                m += 1;
            }
            if m < mask.len() && mask[m] == id {
                scratch.mask.push(ci as u32);
            }
        }
        drop(sp);
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ann.probes", 1);
            imcat_obs::observe("ann.candidates", scratch.cand.len() as f64);
        }
    }

    /// Attempts to certify the exact top-`k` unmasked candidates from the
    /// int8 scores in `scratch.approx` alone. On success, `scratch.cand`
    /// holds exactly those `k` ids (unsorted) and the method returns true.
    ///
    /// Soundness: `|exact_i − approx_i| ≤ err_i = bounds[pos_i]·‖q‖₁`. If
    /// adjacent ranked winners satisfy `approxⱼ − errⱼ > approxⱼ₊₁ +
    /// errⱼ₊₁`, their exact scores are strictly ordered the same way; if
    /// the last winner clears every remaining candidate's `approx + err`
    /// the same way, no outsider can reach the top `k`. All inequalities
    /// are strict, so exact-score ties (margin 0) always fail and fall back
    /// to the re-rank — certification never has to break a tie.
    fn try_certified_skip(
        &self,
        query: &[f32],
        mask: &[u32],
        k: usize,
        scratch: &mut ProbeScratch,
    ) -> bool {
        let l1q = imcat_simd::l1_norm(query);
        if !l1q.is_finite() {
            return false;
        }
        scratch.ranked.clear();
        scratch
            .ranked
            .extend(scratch.approx.iter().filter(|&&(_, id, _)| mask.binary_search(&id).is_err()));
        let top = k.min(scratch.ranked.len());
        if top == 0 {
            return false;
        }
        // Rank by approximate score (descending, ties to lower id): the
        // candidate exact ordering the margins below certify.
        if top < scratch.ranked.len() {
            scratch
                .ranked
                .select_nth_unstable_by(top - 1, |a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        }
        scratch.ranked[..top].sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let err = |e: &(f32, u32, u32)| self.bounds[e.2 as usize] * l1q;
        // Comparisons are phrased as "strictly greater, else refuse" so NaN
        // anywhere (incomparable) also falls back to the re-rank.
        for w in scratch.ranked[..top].windows(2) {
            let separated = w[0].0 - err(&w[0]) > w[1].0 + err(&w[1]);
            if !separated {
                return false;
            }
        }
        let last = scratch.ranked[top - 1];
        let floor = last.0 - err(&last);
        if !scratch.ranked[top..].iter().all(|e| floor > e.0 + err(e)) {
            return false;
        }
        scratch.cand.clear();
        scratch.cand.extend(scratch.ranked[..top].iter().map(|&(_, id, _)| id));
        true
    }

    /// Exact f32 scores for `scratch.cand`, the same `imcat_simd::dot`
    /// kernel as brute force, sharded over the pool (each slot is one
    /// candidate).
    fn exact_scores(&self, query: &[f32], items: &Tensor, scratch: &mut ProbeScratch) {
        scratch.scores.clear();
        scratch.scores.resize(scratch.cand.len(), 0.0);
        let cand = &scratch.cand;
        imcat_par::global().parallel_chunks_mut(&mut scratch.scores, SCORE_GRAIN, |ci, slots| {
            for (off, slot) in slots.iter_mut().enumerate() {
                let id = cand[ci * SCORE_GRAIN + off] as usize;
                *slot = imcat_simd::dot(query, items.row(id));
            }
        });
    }

    /// Structural validation mirroring `Artifact::validate`: consistent
    /// shapes, finite centroids, offsets that tile `entries`, lists that are
    /// strictly increasing and partition `0..n_items`, and quantization
    /// arrays sized and finite. Decode goes through this, so an index that
    /// loads is an index the engine can trust blindly.
    pub fn validate(&self) -> io::Result<()> {
        let nlist = self.centroids.rows();
        if nlist == 0 || self.centroids.cols() != self.dim + 1 {
            return Err(bad(format!(
                "index centroids shape {:?} invalid for dim {} (+1 augmented)",
                self.centroids.shape(),
                self.dim
            )));
        }
        if self.centroids.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(bad("index centroids contain nonfinite values"));
        }
        if self.offsets.len() != nlist + 1
            || self.offsets[0] != 0
            || *self.offsets.last().unwrap() as usize != self.entries.len()
        {
            return Err(bad("index offsets do not tile the entry array"));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad("index offsets are not monotone"));
        }
        if self.entries.len() != self.n_items {
            return Err(bad(format!(
                "index holds {} entries for {} items",
                self.entries.len(),
                self.n_items
            )));
        }
        let mut seen = vec![false; self.n_items];
        for w in self.offsets.windows(2) {
            let list = &self.entries[w[0] as usize..w[1] as usize];
            if !list.windows(2).all(|p| p[0] < p[1]) {
                return Err(bad("an inverted list is not strictly increasing"));
            }
            for &id in list {
                let slot = seen
                    .get_mut(id as usize)
                    .ok_or_else(|| bad(format!("list entry {id} out of range")))?;
                if *slot {
                    return Err(bad(format!("item {id} appears in two lists")));
                }
                *slot = true;
            }
        }
        // entries.len() == n_items and no duplicates => full coverage.
        if self.quantized {
            if self.codes.len() != self.n_items * self.dim {
                return Err(bad("quantized codes length mismatch"));
            }
            if self.scales.len() != self.n_items {
                return Err(bad("quantization scales length mismatch"));
            }
            if self.scales.iter().any(|s| !s.is_finite() || *s < 0.0) {
                return Err(bad("quantization scales must be finite and non-negative"));
            }
            if self.bounds.len() != self.n_items {
                return Err(bad("quantization error bounds length mismatch"));
            }
            if self.bounds.iter().any(|b| !b.is_finite() || *b < 0.0) {
                return Err(bad("quantization error bounds must be finite and non-negative"));
            }
        } else if !self.codes.is_empty() || !self.scales.is_empty() || !self.bounds.is_empty() {
            return Err(bad("non-quantized index carries quantization arrays"));
        }
        Ok(())
    }

    /// Serializes the index into named `ann.*` sections of `ck`, alongside
    /// whatever (artifact) sections it already holds.
    pub fn add_to_checkpoint(&self, ck: &mut Checkpoint) {
        let mut meta = Encoder::new();
        meta.put_u32(ANN_VERSION);
        meta.put_u64(self.seed);
        meta.put_u64(self.nlist() as u64);
        meta.put_u64(self.dim as u64);
        meta.put_u64(self.n_items as u64);
        meta.put_u32(self.quantized as u32);
        meta.put_u64(self.phi2.to_bits());
        ck.insert(SEC_ANN_META, meta.into_bytes());
        let mut ce = Encoder::new();
        ce.put_tensor(&self.centroids);
        ck.insert(SEC_ANN_CENTROIDS, ce.into_bytes());
        let mut le = Encoder::new();
        le.put_u32s(&self.offsets);
        le.put_u32s(&self.entries);
        ck.insert(SEC_ANN_LISTS, le.into_bytes());
        if self.quantized {
            let mut qe = Encoder::new();
            let raw: Vec<u8> = self.codes.iter().map(|&c| c as u8).collect();
            qe.put_bytes(&raw);
            qe.put_u64(self.scales.len() as u64);
            for &s in &self.scales {
                qe.put_f32(s);
            }
            qe.put_u64(self.bounds.len() as u64);
            for &b in &self.bounds {
                qe.put_f32(b);
            }
            ck.insert(SEC_ANN_CODES, qe.into_bytes());
        }
    }

    /// Decodes and validates the `ann.*` sections of `ck`, resolving each
    /// name through the container's committed generation (if any).
    /// `Ok(None)` when the container carries no index; any malformed,
    /// truncated, or semantically invalid section is an error — nothing
    /// partial escapes.
    pub fn from_checkpoint(ck: &Checkpoint) -> io::Result<Option<Self>> {
        let Some(meta_bytes) = ck.resolve(SEC_ANN_META) else {
            return Ok(None);
        };
        let mut meta = Decoder::new(meta_bytes);
        let version = meta.u32()?;
        if version != ANN_VERSION {
            return Err(bad(format!("unsupported ann index version {version}")));
        }
        let seed = meta.u64()?;
        let nlist = meta.u64()? as usize;
        let dim = meta.u64()? as usize;
        let n_items = meta.u64()? as usize;
        let quantized = match meta.u32()? {
            0 => false,
            1 => true,
            v => return Err(bad(format!("invalid quantized flag {v}"))),
        };
        let phi2 = f64::from_bits(meta.u64()?);
        if !phi2.is_finite() || phi2 < 0.0 {
            return Err(bad("index Φ² must be finite and non-negative"));
        }
        meta.finish()?;
        let mut ce = Decoder::new(ck.require_resolved(SEC_ANN_CENTROIDS)?);
        let centroids = ce.tensor()?;
        ce.finish()?;
        if centroids.shape() != (nlist, dim + 1) {
            return Err(bad(format!(
                "index centroid shape {:?} contradicts meta ({nlist}, {} augmented)",
                centroids.shape(),
                dim + 1
            )));
        }
        let mut le = Decoder::new(ck.require_resolved(SEC_ANN_LISTS)?);
        let offsets = le.u32s()?;
        let entries = le.u32s()?;
        le.finish()?;
        let (codes, scales, bounds) = if quantized {
            let mut qe = Decoder::new(ck.require_resolved(SEC_ANN_CODES)?);
            let codes: Vec<i8> = qe.bytes()?.iter().map(|&b| b as i8).collect();
            let n = qe.u64()? as usize;
            // Overflow-proof form of `4 * n > remaining` (scales are 4-byte f32s).
            if n > qe.remaining() / 4 {
                return Err(bad("quantization scales exceed remaining section bytes"));
            }
            let mut scales = Vec::with_capacity(n);
            for _ in 0..n {
                scales.push(qe.f32()?);
            }
            let nb = qe.u64()? as usize;
            if nb > qe.remaining() / 4 {
                return Err(bad("quantization bounds exceed remaining section bytes"));
            }
            let mut bounds = Vec::with_capacity(nb);
            for _ in 0..nb {
                bounds.push(qe.f32()?);
            }
            qe.finish()?;
            (codes, scales, bounds)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let idx = Self {
            dim,
            n_items,
            seed,
            quantized,
            phi2,
            centroids,
            offsets,
            entries,
            codes,
            scales,
            bounds,
        };
        idx.validate()?;
        Ok(Some(idx))
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}
