//! Property-based tests for graph invariants.

use imcat_graph::{degree_groups, jaccard_sorted, joint_normalized_adjacency, Bipartite};
use imcat_tensor::Csr;
use proptest::prelude::*;

/// Strategy: a random bipartite adjacency with `rows` users and `cols` items.
fn adjacency(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::btree_set(0..cols as u32, 0..cols.min(8)), rows)
        .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_preserves_edges(adj in adjacency(6, 9)) {
        let g = Bipartite::new(Csr::from_adjacency(6, 9, &adj));
        prop_assert_eq!(g.forward().nnz(), g.backward().nnz());
        for (u, v, _) in g.forward().iter() {
            prop_assert!(g.backward().contains(v, u));
        }
    }

    #[test]
    fn degrees_sum_to_edge_count(adj in adjacency(5, 7)) {
        let g = Bipartite::new(Csr::from_adjacency(5, 7, &adj));
        let row_sum: usize = g.row_degrees().iter().sum();
        let col_sum: usize = g.col_degrees().iter().sum();
        prop_assert_eq!(row_sum, g.n_edges());
        prop_assert_eq!(col_sum, g.n_edges());
    }

    #[test]
    fn mean_aggregators_are_row_stochastic(adj in adjacency(6, 6)) {
        let g = Bipartite::new(Csr::from_adjacency(6, 6, &adj));
        for agg in [g.col_mean_aggregator(), g.row_mean_aggregator()] {
            for r in 0..agg.rows() {
                let s: f32 = agg.row_values(r).iter().sum();
                if agg.row_nnz(r) > 0 {
                    prop_assert!((s - 1.0).abs() < 1e-5);
                } else {
                    prop_assert_eq!(s, 0.0);
                }
            }
        }
    }

    #[test]
    fn joint_adjacency_symmetric(adj in adjacency(4, 6)) {
        let g = Bipartite::new(Csr::from_adjacency(4, 6, &adj));
        let a = joint_normalized_adjacency(&g);
        let at = a.transpose();
        prop_assert_eq!(a, at);
    }

    #[test]
    fn jaccard_bounds_and_symmetry(
        a in proptest::collection::btree_set(0u32..40, 0..12),
        b in proptest::collection::btree_set(0u32..40, 0..12),
    ) {
        let av: Vec<u32> = a.into_iter().collect();
        let bv: Vec<u32> = b.into_iter().collect();
        let j = jaccard_sorted(&av, &bv);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard_sorted(&bv, &av));
        if !av.is_empty() {
            prop_assert_eq!(jaccard_sorted(&av, &av), 1.0);
        }
    }

    #[test]
    fn degree_groups_are_monotone(degs in proptest::collection::vec(0usize..100, 10..50)) {
        let groups = degree_groups(&degs, 5);
        prop_assert_eq!(groups.len(), degs.len());
        // Any item in a higher group has degree >= any item in a lower group
        // ... only guaranteed across group boundaries after sorting;
        // check group-mean monotonicity instead.
        let mut sums = [0usize; 5];
        let mut counts = [0usize; 5];
        for (i, &g) in groups.iter().enumerate() {
            sums[g] += degs[i];
            counts[g] += 1;
        }
        let mut last = -1.0f64;
        for g in 0..5 {
            if counts[g] == 0 { continue; }
            let mean = sums[g] as f64 / counts[g] as f64;
            prop_assert!(mean >= last - 1e-9, "group means not monotone");
            last = mean;
        }
    }
}
