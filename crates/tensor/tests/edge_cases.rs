//! Edge-case and failure-injection tests for the tensor substrate: shape
//! mismatches must panic loudly, numerical edge inputs must stay finite, and
//! optimizer state must survive pathological gradients.

use imcat_tensor::{Adam, AdamConfig, Csr, ParamStore, Tape, Tensor};

#[test]
#[should_panic(expected = "matmul inner dimension mismatch")]
fn matmul_shape_mismatch_panics() {
    let a = Tensor::zeros(2, 3);
    let b = Tensor::zeros(4, 2);
    let _ = a.matmul(&b);
}

#[test]
#[should_panic(expected = "add shape mismatch")]
fn tape_add_shape_mismatch_panics() {
    let mut tape = Tape::new();
    let a = tape.constant(Tensor::zeros(2, 2));
    let b = tape.constant(Tensor::zeros(2, 3));
    let _ = tape.add(a, b);
}

#[test]
#[should_panic(expected = "loss must be a scalar")]
fn backward_requires_scalar_loss() {
    let mut store = ParamStore::new();
    let p = store.add("p", Tensor::zeros(2, 2));
    let mut tape = Tape::new();
    let v = tape.leaf(&store, p);
    tape.backward(v, &mut store);
}

#[test]
#[should_panic(expected = "bad slice bounds")]
fn slice_cols_out_of_range_panics() {
    let mut tape = Tape::new();
    let a = tape.constant(Tensor::zeros(2, 4));
    let _ = tape.slice_cols(a, 3, 6);
}

#[test]
fn log_sigmoid_extreme_inputs_stay_finite() {
    let mut tape = Tape::new();
    let x = tape.constant(Tensor::from_vec(1, 4, vec![-100.0, -30.0, 30.0, 100.0]));
    let y = tape.log_sigmoid(x);
    for &v in tape.value(y).as_slice() {
        assert!(v.is_finite(), "log_sigmoid produced {v}");
    }
    // log σ(-100) ≈ -100; log σ(100) ≈ 0.
    assert!((tape.value(y).get(0, 0) + 100.0).abs() < 1e-3);
    assert!(tape.value(y).get(0, 3).abs() < 1e-3);
}

#[test]
fn softmax_handles_large_logits() {
    let mut tape = Tape::new();
    let x = tape.constant(Tensor::from_vec(1, 3, vec![1000.0, 999.0, -1000.0]));
    let s = tape.softmax_rows(x);
    let row = tape.value(s).row(0).to_vec();
    assert!(row.iter().all(|v| v.is_finite()));
    assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    assert!(row[0] > row[1] && row[1] > row[2]);
}

#[test]
fn l2_normalize_zero_row_is_safe() {
    let mut tape = Tape::new();
    let x = tape.constant(Tensor::zeros(2, 3));
    let y = tape.l2_normalize_rows(x, 1e-12);
    assert!(tape.value(y).as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn row_normalize_zero_row_is_safe() {
    let mut tape = Tape::new();
    let x = tape.constant(Tensor::zeros(2, 3));
    let y = tape.row_normalize(x);
    assert!(tape.value(y).as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn adam_survives_huge_gradients() {
    let mut store = ParamStore::new();
    let p = store.add("p", Tensor::scalar(1.0));
    let mut adam = Adam::new(AdamConfig::default(), &store);
    for _ in 0..5 {
        let mut tape = Tape::new();
        let v = tape.leaf(&store, p);
        let big = tape.scale(v, 1e20);
        let loss = tape.sum_all(big);
        tape.backward(loss, &mut store);
        adam.step(&mut store);
        assert!(store.value(p).item().is_finite(), "Adam produced non-finite weight");
    }
}

#[test]
fn empty_csr_spmm_is_zero() {
    let c = Csr::empty(3, 4);
    let x = Tensor::full(4, 2, 7.0);
    let y = c.spmm(&x);
    assert_eq!(y.shape(), (3, 2));
    assert!(y.as_slice().iter().all(|&v| v == 0.0));
}

#[test]
fn select_rows_on_empty_rows() {
    let c = Csr::from_triplets(3, 3, &[(0, 0, 1.0)]);
    let s = c.select_rows(&[1, 2]);
    assert_eq!(s.nnz(), 0);
    assert_eq!(s.rows(), 2);
}

#[test]
fn gather_empty_rows_list() {
    let mut store = ParamStore::new();
    let p = store.add("p", Tensor::full(3, 2, 1.0));
    let mut tape = Tape::new();
    let g = tape.gather(&store, p, &[]);
    assert_eq!(tape.value(g).shape(), (0, 2));
}

#[test]
fn dropout_zero_probability_is_identity() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let x = tape.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    let y = tape.dropout(x, 0.0, &mut rng);
    assert_eq!(tape.value(y).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn gradients_accessor_exposes_intermediates() {
    let mut store = ParamStore::new();
    let p = store.add("p", Tensor::scalar(2.0));
    let mut tape = Tape::new();
    let v = tape.leaf(&store, p);
    let sq = tape.mul(v, v);
    let loss = tape.sum_all(sq);
    let grads = tape.backward(loss, &mut store);
    // d(loss)/d(sq) = 1, d(loss)/d(v) = 2v = 4.
    assert_eq!(grads.wrt(sq).unwrap().item(), 1.0);
    assert_eq!(grads.wrt(v).unwrap().item(), 4.0);
    assert!(grads.wrt(loss).is_some());
}

#[test]
fn concat_rows_then_gather_roundtrip() {
    let mut tape = Tape::new();
    let a = tape.constant(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
    let b = tape.constant(Tensor::from_vec(1, 2, vec![5., 6.]));
    let cat = tape.concat_rows(&[a, b]);
    assert_eq!(tape.value(cat).shape(), (3, 2));
    assert_eq!(tape.value(cat).row(2), &[5., 6.]);
    let back = tape.gather_rows(cat, &[2, 0]);
    assert_eq!(tape.value(back).row(0), &[5., 6.]);
    assert_eq!(tape.value(back).row(1), &[1., 2.]);
}
