//! RippleNet baseline (Wang et al. 2018): propagating user preferences over
//! the knowledge graph rooted at the user's history.
//!
//! In the tag-enhanced setting the 1-hop ripple set of a user is the set of
//! tags attached to her training items. For a candidate item `v`, attention
//! `softmax_t(v · t)` over the ripple set produces a preference read-out
//! `o_u(v)`, and the score is `(u + o_u(v)) · v` — preference mass flows from
//! history through KG links toward the candidate, RippleNet's defining
//! mechanism. Simplification: one hop with fixed-size sampled ripple sets
//! (the original uses 2–3 hops with sampled sets of the same flavor).

use std::rc::Rc;

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{xavier_uniform, Csr, ParamId, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::Rng;

use crate::common::{bpr_loss, EmbeddingCore, EpochStats, RecModel, TrainConfig};

/// Ripple-set size sampled per user per step.
const RIPPLE: usize = 8;
/// Ripple-set cap used at evaluation time.
const EVAL_RIPPLE: usize = 16;

/// RippleNet-style preference propagation recommender.
pub struct RippleNet {
    core: EmbeddingCore,
    cfg: TrainConfig,
    sampler: BprSampler,
    tag_emb: ParamId,
    /// Per-user candidate ripple tags (tags of the user's training items).
    user_tags: Vec<Vec<u32>>,
    n_items: usize,
}

impl RippleNet {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let mut core = EmbeddingCore::new(data.n_users(), data.n_items(), &cfg, rng);
        let tag_emb = core.store.add("tag_emb", xavier_uniform(data.n_tags(), cfg.dim, rng));
        core.rebuild_optimizer(&cfg);
        let ut = data.train.forward().matmul_csr(data.item_tag.forward());
        let user_tags: Vec<Vec<u32>> =
            (0..data.n_users()).map(|u| ut.row_indices(u).to_vec()).collect();
        Self {
            core,
            cfg,
            sampler: BprSampler::for_user_items(data),
            tag_emb,
            user_tags,
            n_items: data.n_items(),
        }
    }

    /// Samples a fixed-size ripple set for each batch user (with
    /// replacement; users without tags fall back to tag 0, which contributes
    /// a constant read-out).
    fn sample_ripples(&self, users: &[u32], rng: &mut impl Rng) -> Vec<u32> {
        let mut flat = Vec::with_capacity(users.len() * RIPPLE);
        for &u in users {
            let tags = &self.user_tags[u as usize];
            for _ in 0..RIPPLE {
                flat.push(if tags.is_empty() { 0 } else { tags[rng.gen_range(0..tags.len())] });
            }
        }
        flat
    }

    /// Attention read-out `o_u(v)` on the tape: `[B, d]`.
    fn readout(&self, tape: &mut Tape, ripple_tags: &[u32], v: Var, b: usize) -> Var {
        let t_emb = tape.gather(&self.core.store, self.tag_emb, ripple_tags); // [B*R, d]
                                                                              // Repeat each candidate item embedding RIPPLE times.
        let rep_ids: Vec<u32> =
            (0..b as u32).flat_map(|i| std::iter::repeat_n(i, RIPPLE)).collect();
        let v_rep = tape.gather_rows(v, &rep_ids); // [B*R, d]
        let logits = tape.rowwise_dot(t_emb, v_rep); // [B*R, 1]
        let logits = tape.reshape(logits, b, RIPPLE);
        let att = tape.softmax_rows(logits);
        let att_flat = tape.reshape(att, b * RIPPLE, 1);
        let weighted = tape.mul_col_vec(t_emb, att_flat); // [B*R, d]
                                                          // Block-sum back to [B, d].
        let block = block_sum_csr(b, RIPPLE);
        let block_t = Rc::new(block.transpose());
        tape.spmm(&Rc::new(block), &block_t, weighted)
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let b = batch.len();
        let ripples = self.sample_ripples(&batch.anchors, rng);
        let mut tape = Tape::new();
        let u = tape.gather(&self.core.store, self.core.user_emb, &batch.anchors);
        let vp = tape.gather(&self.core.store, self.core.item_emb, &batch.positives);
        let vn = tape.gather(&self.core.store, self.core.item_emb, &batch.negatives);
        let op = self.readout(&mut tape, &ripples, vp, b);
        let on = self.readout(&mut tape, &ripples, vn, b);
        let up = tape.add(u, op);
        let un = tape.add(u, on);
        let sp = tape.rowwise_dot(up, vp);
        let sn = tape.rowwise_dot(un, vn);
        let loss = bpr_loss(&mut tape, sp, sn);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.core.store);
        self.core.adam.step(&mut self.core.store);
        value
    }
}

/// `[b, b*r]` CSR summing each block of `r` consecutive rows.
fn block_sum_csr(b: usize, r: usize) -> Csr {
    let triplets: Vec<(u32, u32, f32)> = (0..b as u32)
        .flat_map(|i| (0..r as u32).map(move |j| (i, i * r as u32 + j, 1.0)))
        .collect();
    Csr::from_triplets(b, b * r, &triplets)
}

impl RecModel for RippleNet {
    fn name(&self) -> String {
        "RippleNet".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn score_users(&self, users: &[u32]) -> Tensor {
        let ue = self.core.store.value(self.core.user_emb);
        let ve = self.core.store.value(self.core.item_emb);
        let te = self.core.store.value(self.tag_emb);
        let d = self.core.dim;
        let mut out = Tensor::zeros(users.len(), self.n_items);
        for (row, &u) in users.iter().enumerate() {
            let tags: Vec<u32> =
                self.user_tags[u as usize].iter().copied().take(EVAL_RIPPLE).collect();
            let urow = ue.row(u as usize);
            if tags.is_empty() {
                // Pure dot-product fallback.
                for j in 0..self.n_items {
                    let s: f32 = urow.iter().zip(ve.row(j)).map(|(a, b)| a * b).sum();
                    out.set(row, j, s);
                }
                continue;
            }
            let mut t_sel = Tensor::zeros(tags.len(), d);
            for (i, &t) in tags.iter().enumerate() {
                t_sel.row_mut(i).copy_from_slice(te.row(t as usize));
            }
            // [n_items, |T|] attention logits, softmax per item row.
            let mut logits = ve.matmul_nt(&t_sel);
            for j in 0..self.n_items {
                let rowj = logits.row_mut(j);
                let m = rowj.iter().fold(f32::NEG_INFINITY, |a, &x| a.max(x));
                let mut s = 0.0;
                for x in rowj.iter_mut() {
                    *x = (*x - m).exp();
                    s += *x;
                }
                for x in rowj.iter_mut() {
                    *x /= s;
                }
            }
            let o = logits.matmul(&t_sel); // [n_items, d]
            for j in 0..self.n_items {
                let s: f32 = urow
                    .iter()
                    .zip(o.row(j))
                    .zip(ve.row(j))
                    .map(|((&uu, &oo), &vv)| (uu + oo) * vv)
                    .sum();
                out.set(row, j, s);
            }
        }
        out
    }

    fn num_params(&self) -> usize {
        self.core.store.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn block_sum_csr_sums_blocks() {
        let c = block_sum_csr(2, 3);
        let x = Tensor::from_vec(6, 1, vec![1., 2., 3., 10., 20., 30.]);
        let y = c.spmm(&x);
        assert_eq!(y.as_slice(), &[6., 60.]);
    }

    #[test]
    fn loss_decreases() {
        let data = tiny_split(101);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = RippleNet::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..20 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(102);
        let mut rng = StdRng::seed_from_u64(0);
        let model = RippleNet::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 40);
    }

    #[test]
    fn every_user_has_ripple_candidates() {
        let data = tiny_split(103);
        let mut rng = StdRng::seed_from_u64(0);
        let model = RippleNet::new(&data, TrainConfig::default(), &mut rng);
        let with_tags = model.user_tags.iter().filter(|t| !t.is_empty()).count();
        assert!(with_tags as f64 > 0.95 * data.n_users() as f64);
    }
}
