//! `imcat` command-line interface: generate datasets, train any of the main
//! models, evaluate, checkpoint, and produce recommendations — all on
//! HetRec-style TSV files.
//!
//! ```text
//! imcat generate --preset del --seed 7 --out-dir data/
//! imcat stats    --user-item data/user_item.tsv --item-tag data/item_tag.tsv
//! imcat train    --user-item data/user_item.tsv --item-tag data/item_tag.tsv \
//!                --model l-imcat --epochs 80 --checkpoint model.imct
//! imcat recommend --user-item data/user_item.tsv --item-tag data/item_tag.tsv \
//!                --model l-imcat --checkpoint model.imct --user 3 --top 10
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use imcat::core::{trainer, Imcat, ImcatConfig};
use imcat::data::{
    generate, load_dataset, save_dataset, Dataset, FilterConfig, SplitDataset, SynthConfig,
};
use imcat::eval::{evaluate, evaluate_extended, top_n_masked, EvalSpec};
use imcat::models::{Backbone, Bprmf, EpochStats, LightGcn, Neumf, RecModel, TrainConfig};
use imcat::tensor::{load_params_from, restore_into, save_params_to, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  imcat generate  --preset <mv|fm|del|cite|lastfm|amz|yelp|tiny> [--scale F] [--seed N] --out-dir DIR
  imcat stats     --user-item FILE --item-tag FILE [--min-degree N] [--min-tag-items N]
  imcat train     --user-item FILE --item-tag FILE --model NAME [--epochs N] [--dim N]
                  [--intents K] [--seed N] [--checkpoint FILE]
  imcat recommend --user-item FILE --item-tag FILE --model NAME --checkpoint FILE
                  --user ID [--top N] [--dim N] [--intents K] [--seed N]

models: bprmf | neumf | lightgcn | b-imcat | n-imcat | l-imcat";

/// Parsed `--key value` flags.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
            let value = args.get(i + 1).ok_or_else(|| format!("missing value for --{key}"))?;
            map.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "train" => cmd_train(&flags),
        "recommend" => cmd_recommend(&flags),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn preset(name: &str) -> Result<SynthConfig, String> {
    let cfg = match name {
        "mv" => SynthConfig::hetrec_mv(),
        "fm" => SynthConfig::hetrec_fm(),
        "del" => SynthConfig::hetrec_del(),
        "cite" => SynthConfig::citeulike(),
        "lastfm" => SynthConfig::lastfm_tag(),
        "amz" => SynthConfig::amzbook_tag(),
        "yelp" => SynthConfig::yelp_tag(),
        "tiny" => SynthConfig::tiny(),
        other => return Err(format!("unknown preset '{other}'")),
    };
    Ok(cfg)
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let cfg = preset(flags.require("preset")?)?;
    let scale: f64 = flags.num("scale", 1.0)?;
    let seed: u64 = flags.num("seed", 0)?;
    let out_dir = std::path::PathBuf::from(flags.require("out-dir")?);
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let data = generate(&cfg.scaled(scale), seed);
    let ui = out_dir.join("user_item.tsv");
    let it = out_dir.join("item_tag.tsv");
    save_dataset(&data.dataset, &ui, &it).map_err(|e| e.to_string())?;
    println!("{}", data.dataset.stats());
    println!("wrote {} and {}", ui.display(), it.display());
    Ok(())
}

fn load(flags: &Flags) -> Result<Dataset, String> {
    let filter = FilterConfig {
        min_degree: flags.num("min-degree", 10)?,
        min_tag_items: flags.num("min-tag-items", 5)?,
    };
    load_dataset("cli", flags.require("user-item")?, flags.require("item-tag")?, filter)
        .map_err(|e| e.to_string())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let data = load(flags)?;
    println!("{}", data.stats());
    Ok(())
}

/// Concrete model wrapper giving the CLI checkpoint access without
/// trait-object downcasts.
enum CliModel {
    Bprmf(Bprmf),
    Neumf(Neumf),
    LightGcn(LightGcn),
    BImcat(Imcat<Bprmf>),
    NImcat(Imcat<Neumf>),
    LImcat(Imcat<LightGcn>),
}

impl CliModel {
    fn build(
        name: &str,
        split: &SplitDataset,
        dim: usize,
        intents: usize,
        seed: u64,
    ) -> Result<CliModel, String> {
        let tcfg = TrainConfig { dim, ..TrainConfig::default() };
        let icfg = ImcatConfig { k_intents: intents, pretrain_epochs: 5, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(match name {
            "bprmf" => CliModel::Bprmf(Bprmf::new(split, tcfg, &mut rng)),
            "neumf" => CliModel::Neumf(Neumf::new(split, tcfg, &mut rng)),
            "lightgcn" => CliModel::LightGcn(LightGcn::new(split, tcfg, &mut rng)),
            "b-imcat" => CliModel::BImcat(Imcat::new(
                Bprmf::new(split, tcfg, &mut rng),
                split,
                icfg,
                &mut rng,
            )),
            "n-imcat" => CliModel::NImcat(Imcat::new(
                Neumf::new(split, tcfg, &mut rng),
                split,
                icfg,
                &mut rng,
            )),
            "l-imcat" => CliModel::LImcat(Imcat::new(
                LightGcn::new(split, tcfg, &mut rng),
                split,
                icfg,
                &mut rng,
            )),
            other => return Err(format!("unknown model '{other}' (see usage)")),
        })
    }

    fn as_rec_model(&mut self) -> &mut dyn RecModel {
        match self {
            CliModel::Bprmf(m) => m,
            CliModel::Neumf(m) => m,
            CliModel::LightGcn(m) => m,
            CliModel::BImcat(m) => m,
            CliModel::NImcat(m) => m,
            CliModel::LImcat(m) => m,
        }
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        self.as_rec_model().train_epoch(rng)
    }

    fn score_users(&self, users: &[u32]) -> Tensor {
        match self {
            CliModel::Bprmf(m) => m.score_users(users),
            CliModel::Neumf(m) => m.score_users(users),
            CliModel::LightGcn(m) => m.score_users(users),
            CliModel::BImcat(m) => m.score_users(users),
            CliModel::NImcat(m) => m.score_users(users),
            CliModel::LImcat(m) => m.score_users(users),
        }
    }

    fn save(&self, path: &str) -> Result<(), String> {
        let store = match self {
            CliModel::Bprmf(m) => m.store(),
            CliModel::Neumf(m) => m.store(),
            CliModel::LightGcn(m) => m.store(),
            CliModel::BImcat(m) => m.backbone().store(),
            CliModel::NImcat(m) => m.backbone().store(),
            CliModel::LImcat(m) => m.backbone().store(),
        };
        save_params_to(store, path).map_err(|e| e.to_string())
    }

    fn restore(&mut self, path: &str) -> Result<(), String> {
        match self {
            CliModel::BImcat(m) => return m.load_checkpoint(path).map_err(|e| e.to_string()),
            CliModel::NImcat(m) => return m.load_checkpoint(path).map_err(|e| e.to_string()),
            CliModel::LImcat(m) => return m.load_checkpoint(path).map_err(|e| e.to_string()),
            _ => {}
        }
        let loaded = load_params_from(path).map_err(|e| e.to_string())?;
        let store = match self {
            CliModel::Bprmf(m) => m.store_mut(),
            CliModel::Neumf(m) => m.store_mut(),
            CliModel::LightGcn(m) => m.store_mut(),
            _ => unreachable!(),
        };
        restore_into(store, &loaded)?;
        Ok(())
    }
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let data = load(flags)?;
    let seed: u64 = flags.num("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let split = data.split((0.7, 0.1, 0.2), &mut rng);
    println!("{}", data.stats());
    let dim: usize = flags.num("dim", 32)?;
    let intents: usize = flags.num("intents", 4)?;
    let epochs: usize = flags.num("epochs", 80)?;
    let name = flags.require("model")?;
    let mut model = CliModel::build(name, &split, dim, intents, seed)?;
    let report = trainer::train(
        model.as_rec_model(),
        &split,
        &trainer::TrainerConfig {
            max_epochs: epochs,
            eval_every: 10,
            patience: 3,
            ..Default::default()
        },
    );
    println!(
        "trained {} for {} epochs in {:.1}s (best val R@20 {:.4})",
        report.model, report.epochs_run, report.train_seconds, report.best_val_recall
    );
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let m = evaluate(&mut score_fn, &split, &EvalSpec::at(20));
    let ext = evaluate_extended(&mut score_fn, &split, &EvalSpec::at(20));
    println!(
        "test  R@20 {:.4}  N@20 {:.4}  P@20 {:.4}  MAP {:.4}  MRR {:.4}  coverage {:.3}  diversity {:.3}",
        m.recall,
        m.ndcg,
        ext.precision,
        ext.map,
        ext.mrr,
        ext.coverage,
        ext.intra_list_diversity
    );
    if let Some(path) = flags.get("checkpoint") {
        model.save(path)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

fn cmd_recommend(flags: &Flags) -> Result<(), String> {
    let data = load(flags)?;
    let seed: u64 = flags.num("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let split = data.split((0.7, 0.1, 0.2), &mut rng);
    let dim: usize = flags.num("dim", 32)?;
    let intents: usize = flags.num("intents", 4)?;
    let name = flags.require("model")?;
    let mut model = CliModel::build(name, &split, dim, intents, seed)?;
    // Run one cheap epoch on IMCAT wrappers so cluster state exists, then
    // overwrite all weights from the checkpoint.
    let mut warm_rng = StdRng::seed_from_u64(seed);
    let _ = model.train_epoch(&mut warm_rng);
    model.restore(flags.require("checkpoint")?)?;
    let user: u32 = flags.num("user", 0)?;
    if user as usize >= split.n_users() {
        return Err(format!("user {user} out of range (0..{})", split.n_users()));
    }
    let top_n: usize = flags.num("top", 10)?;
    let scores = model.score_users(&[user]);
    let top = top_n_masked(scores.row(0), split.train_items(user as usize), top_n);
    println!("top-{top_n} items for user {user}:");
    for (rank, j) in top.iter().enumerate() {
        let tags = split.item_tag.forward().row_indices(*j as usize);
        println!(
            "  {:>2}. item {:<6} score {:>8.4} tags {:?}",
            rank + 1,
            j,
            scores.get(0, *j as usize),
            tags
        );
    }
    Ok(())
}
