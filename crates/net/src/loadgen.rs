//! Socket-level load generators for the serving front-end.
//!
//! Two disciplines, because they answer different questions:
//!
//! * [`closed_loop`] — `conns` persistent keep-alive connections, each
//!   issuing its next request the moment the previous response lands.
//!   Measures the *capacity* frontier: the highest QPS the server sustains
//!   at that concurrency.
//! * [`open_loop`] — requests fire on a fixed schedule (`rate` QPS)
//!   regardless of how slow responses are, one connection per request, and
//!   latency is measured from the request's *scheduled* send time. A slow
//!   server therefore accrues queueing delay in the numbers instead of
//!   silently throttling the generator — the coordinated-omission trap a
//!   closed loop falls into.
//!
//! Shed responses (`503`) are counted separately from errors and excluded
//! from the latency distribution: they measure the admission controller,
//! not the serving path.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::http::read_response;

const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// One load-generation run's outcome.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Requests attempted.
    pub requests: usize,
    /// `200` responses.
    pub ok: u64,
    /// `503` responses (admission control shed the request).
    pub shed: u64,
    /// Everything else: connect failures, resets, non-200/503 statuses.
    pub errors: u64,
    /// Wall-clock of the whole run in seconds.
    pub wall_secs: f64,
    /// Offered rate (open loop) or 0 (closed loop offers "as fast as
    /// responses return").
    pub offered_qps: f64,
    /// Successful answers per second of wall-clock.
    pub achieved_qps: f64,
    /// Latency quantiles over successful requests, microseconds. Open loop
    /// measures from the scheduled send time.
    pub p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
}

imcat_obs::impl_to_json!(LoadReport {
    mode,
    requests,
    ok,
    shed,
    errors,
    wall_secs,
    offered_qps,
    achieved_qps,
    p50_us,
    p95_us,
    p99_us,
    mean_us,
});

struct Tally {
    latencies: Vec<f64>,
    ok: u64,
    shed: u64,
    errors: u64,
}

impl Tally {
    fn new() -> Self {
        Self { latencies: Vec::new(), ok: 0, shed: 0, errors: 0 }
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn report(
    mode: &str,
    requests: usize,
    offered_qps: f64,
    wall: f64,
    tallies: Vec<Tally>,
) -> LoadReport {
    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    for t in tallies {
        latencies.extend(t.latencies);
        ok += t.ok;
        shed += t.shed;
        errors += t.errors;
    }
    latencies.sort_unstable_by(f64::total_cmp);
    let mean = if latencies.is_empty() {
        f64::NAN
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    LoadReport {
        mode: mode.to_string(),
        requests,
        ok,
        shed,
        errors,
        wall_secs: wall,
        offered_qps,
        achieved_qps: ok as f64 / wall.max(1e-9),
        p50_us: percentile(&latencies, 0.50) * 1e6,
        p95_us: percentile(&latencies, 0.95) * 1e6,
        p99_us: percentile(&latencies, 0.99) * 1e6,
        mean_us: mean * 1e6,
    }
}

fn send_request(stream: &mut TcpStream, user: u32, k: usize) -> io::Result<()> {
    let head = format!("GET /recommend?user={user}&k={k} HTTP/1.1\r\nHost: loadgen\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Replays `stream` over `conns` persistent connections, each issuing its
/// share back-to-back. Returns the capacity-side [`LoadReport`].
pub fn closed_loop(addr: SocketAddr, stream: &[(u32, usize)], conns: usize) -> LoadReport {
    let conns = conns.max(1);
    let t0 = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = Tally::new();
                    let Ok(mut tcp) = connect(addr) else {
                        tally.errors = stream.iter().skip(c).step_by(conns).count() as u64;
                        return tally;
                    };
                    let mut buf = Vec::new();
                    for &(user, k) in stream.iter().skip(c).step_by(conns) {
                        let sent = Instant::now();
                        if send_request(&mut tcp, user, k).is_err() {
                            tally.errors += 1;
                            break;
                        }
                        match read_response(&mut tcp, &mut buf) {
                            Ok((200, _)) => {
                                tally.ok += 1;
                                tally.latencies.push(sent.elapsed().as_secs_f64());
                            }
                            Ok((503, _)) => tally.shed += 1,
                            Ok(_) => tally.errors += 1,
                            Err(_) => {
                                tally.errors += 1;
                                break;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen thread")).collect()
    });
    report("closed", stream.len(), 0.0, t0.elapsed().as_secs_f64(), tallies)
}

/// Fires `stream` at a fixed `rate` (QPS) spread over `senders` threads,
/// one connection per request. Latency is measured from each request's
/// scheduled time, so server-side queueing shows up instead of throttling
/// the generator.
pub fn open_loop(
    addr: SocketAddr,
    stream: &[(u32, usize)],
    rate: f64,
    senders: usize,
) -> LoadReport {
    let senders = senders.max(1);
    let rate = rate.max(1.0);
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..senders)
            .map(|_| {
                scope.spawn(move || {
                    let mut tally = Tally::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= stream.len() {
                            return tally;
                        }
                        let (user, k) = stream[i];
                        let offset = Duration::from_secs_f64(i as f64 / rate);
                        if let Some(ahead) = (t0 + offset).checked_duration_since(Instant::now()) {
                            std::thread::sleep(ahead);
                        }
                        let outcome = (|| -> io::Result<(u16, String)> {
                            let mut tcp = connect(addr)?;
                            send_request(&mut tcp, user, k)?;
                            let mut buf = Vec::new();
                            read_response(&mut tcp, &mut buf)
                        })();
                        // Coordinated-omission-aware: latency from the
                        // *scheduled* send, not the actual one.
                        let waited = t0.elapsed().saturating_sub(offset).as_secs_f64();
                        match outcome {
                            Ok((200, _)) => {
                                tally.ok += 1;
                                tally.latencies.push(waited);
                            }
                            Ok((503, _)) => tally.shed += 1,
                            _ => tally.errors += 1,
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen thread")).collect()
    });
    report("open", stream.len(), rate, t0.elapsed().as_secs_f64(), tallies)
}

fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    stream.set_read_timeout(Some(CONNECT_TIMEOUT))?;
    stream.set_write_timeout(Some(CONNECT_TIMEOUT))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}
