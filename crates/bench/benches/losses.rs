//! Criterion microbenches for the per-step cost of each loss term of Eq. 18:
//! `L_UV` (BPR), `L_VT` (tag BPR), `L_CA*` (intent-aware masked InfoNCE) and
//! `L_KL` (Student-t clustering). These are the per-iteration costs behind
//! the Fig. 9 efficiency comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use imcat_core::imca::{masked_info_nce, PositiveMask};
use imcat_core::irm::{kl_loss, soft_assignment, soft_assignment_tensor, target_distribution};
use imcat_data::{generate, BprSampler, SynthConfig};
use imcat_models::{bpr_loss, info_nce};
use imcat_tensor::{normal, xavier_uniform, ParamStore, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bpr_step(c: &mut Criterion) {
    let data = generate(&SynthConfig::hetrec_del(), 7).dataset;
    let mut rng = StdRng::seed_from_u64(0);
    let split = data.split((0.7, 0.1, 0.2), &mut rng);
    let sampler = BprSampler::for_user_items(&split);
    let mut store = ParamStore::new();
    let user = store.add("u", xavier_uniform(split.n_users(), 32, &mut rng));
    let item = store.add("v", xavier_uniform(split.n_items(), 32, &mut rng));
    c.bench_function("loss_bpr_batch512_forward_backward", |b| {
        b.iter(|| {
            let batch = sampler.sample(512, &mut rng);
            let mut tape = Tape::new();
            let u = tape.gather(&store, user, &batch.anchors);
            let vp = tape.gather(&store, item, &batch.positives);
            let vn = tape.gather(&store, item, &batch.negatives);
            let sp = tape.rowwise_dot(u, vp);
            let sn = tape.rowwise_dot(u, vn);
            let loss = bpr_loss(&mut tape, sp, sn);
            tape.backward(loss, &mut store);
            store.zero_grads();
        });
    });
}

fn bench_infonce(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let a = store.add("a", xavier_uniform(128, 8, &mut rng));
    let b2 = store.add("b", xavier_uniform(128, 8, &mut rng));
    c.bench_function("loss_infonce_128x128_d8", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let av = tape.leaf(&store, a);
            let bv = tape.leaf(&store, b2);
            let loss = info_nce(&mut tape, av, bv, 1.0, None);
            tape.backward(loss, &mut store);
            store.zero_grads();
        });
    });
}

fn bench_masked_infonce_with_isa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let anchors = store.add("anchors", xavier_uniform(128, 8, &mut rng));
    let targets = store.add("targets", xavier_uniform(192, 8, &mut rng));
    // Each anchor has itself + one extra ISA positive.
    let positives: Vec<Vec<usize>> = (0..128).map(|j| vec![j, 128 + (j % 64)]).collect();
    let mask = PositiveMask::from_lists(128, 192, &positives);
    let aw = Tensor::full(128, 1, 0.25);
    let tw = Tensor::full(192, 1, 0.25);
    c.bench_function("loss_masked_infonce_isa_128x192_d8", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let av = tape.leaf(&store, anchors);
            let tv = tape.leaf(&store, targets);
            let loss = masked_info_nce(&mut tape, av, tv, &mask, &aw, &tw, 1.0);
            tape.backward(loss, &mut store);
            store.zero_grads();
        });
    });
}

fn bench_kl_clustering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let tags = store.add("tags", normal(450, 32, 0.5, &mut rng));
    let centers = store.add("centers", normal(4, 32, 0.5, &mut rng));
    c.bench_function("loss_kl_clustering_450tags_k4", |b| {
        b.iter(|| {
            let q_plain = soft_assignment_tensor(store.value(tags), store.value(centers), 1.0);
            let target = target_distribution(&q_plain);
            let mut tape = Tape::new();
            let tv = tape.leaf(&store, tags);
            let cv = tape.leaf(&store, centers);
            let q = soft_assignment(&mut tape, tv, cv, 1.0);
            let loss = kl_loss(&mut tape, q, &target);
            tape.backward(loss, &mut store);
            store.zero_grads();
        });
    });
}

criterion_group!(
    name = losses;
    config = Criterion::default().sample_size(20);
    targets = bench_bpr_step, bench_infonce, bench_masked_infonce_with_isa, bench_kl_clustering
);
criterion_main!(losses);
