//! Quickstart: generate a tag-enhanced dataset, train L-IMCAT, and evaluate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use imcat::prelude::*;

fn main() {
    // 1. Data: a synthetic dataset whose interactions are driven by latent
    //    intents that also shape the item tags (see imcat-data docs).
    let mut rng = StdRng::seed_from_u64(42);
    let synth = generate(&SynthConfig::tiny().scaled(2.0), 42);
    let split = synth.dataset.split((0.7, 0.1, 0.2), &mut rng);
    println!("{}", synth.dataset.stats());

    // 2. Model: LightGCN backbone wrapped with IMCAT (intent-aware
    //    multi-source contrastive alignment, K = 4 intents).
    let backbone = LightGcn::new(&split, TrainConfig::default(), &mut rng);
    let mut model = Imcat::new(
        backbone,
        &split,
        ImcatConfig { pretrain_epochs: 5, ..Default::default() },
        &mut rng,
    );

    // 3. Train with validation-based early stopping.
    let report = trainer::train(
        &mut model,
        &split,
        &TrainerConfig { max_epochs: 60, eval_every: 5, patience: 3, ..Default::default() },
    );
    println!(
        "trained {} for {} epochs in {:.1}s (best validation R@20 = {:.4})",
        report.model, report.epochs_run, report.train_seconds, report.best_val_recall
    );

    // 4. Evaluate on the held-out test interactions.
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let test = evaluate(&mut score_fn, &split, &EvalSpec::at(20));
    println!(
        "test Recall@20 = {:.4}, NDCG@20 = {:.4} over {} users",
        test.recall, test.ndcg, test.evaluated_users
    );

    // 5. Produce top-5 recommendations for one user.
    let user = 0u32;
    let scores = model.score_users(&[user]);
    let top = imcat::eval::top_n_masked(scores.row(0), split.train_items(user as usize), 5);
    println!("top-5 items for user {user}: {top:?}");
}
