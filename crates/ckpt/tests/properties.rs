//! Property-based tests for the checkpoint format: arbitrary tensors,
//! optimizer moments, and last-update step tables survive a roundtrip
//! **bit-exactly** (including NaN payloads, infinities, and subnormals drawn
//! from raw bit patterns), while truncated or corrupted containers are
//! rejected without partially applying state.

use imcat_ckpt::{
    encode_adam, encode_store, restore_adam, restore_store, Checkpoint, Decoder, Encoder,
};
use imcat_tensor::{Adam, AdamConfig, ParamStore, Tensor};
use proptest::prelude::*;

/// A tensor filled with raw bit patterns — exercises every f32 class.
fn bit_tensor(rows: usize, cols: usize, gen: &mut Gen) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| f32::from_bits(gen.next_u64() as u32)).collect(),
    )
}

fn assert_bits_eq(a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// A store of `n` params with drawn shapes and arbitrary-bit contents, plus a
/// shape-identical zeroed twin (the restore target).
fn store_pair(n: usize, seed: u64) -> (ParamStore, ParamStore) {
    let mut gen = Gen::new(seed);
    let mut a = ParamStore::new();
    let mut b = ParamStore::new();
    for i in 0..n {
        let rows = 1 + gen.below(5) as usize;
        let cols = 1 + gen.below(6) as usize;
        a.add(format!("p{i}"), bit_tensor(rows, cols, &mut gen));
        b.add(format!("p{i}"), Tensor::zeros(rows, cols));
    }
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Scalars and slices written through the encoder come back bit-exactly,
    /// in order, with nothing left over.
    #[test]
    fn encoder_decoder_roundtrip(a in 0u64..u64::MAX, b in 0u32..u32::MAX, seed in 0u64..1_000_000) {
        let mut gen = Gen::new(seed);
        let f32_bits = gen.next_u64() as u32;
        let f64_bits = gen.next_u64();
        let words: Vec<u64> = (0..gen.below(9)).map(|_| gen.next_u64()).collect();
        let floats: Vec<f64> = (0..gen.below(7)).map(|_| f64::from_bits(gen.next_u64())).collect();

        let mut enc = Encoder::new();
        enc.put_u64(a);
        enc.put_u32(b);
        enc.put_f32(f32::from_bits(f32_bits));
        enc.put_f64(f64::from_bits(f64_bits));
        enc.put_str("section-name");
        enc.put_u64s(&words);
        enc.put_f64s(&floats);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.u64().unwrap(), a);
        prop_assert_eq!(dec.u32().unwrap(), b);
        prop_assert_eq!(dec.f32().unwrap().to_bits(), f32_bits);
        prop_assert_eq!(dec.f64().unwrap().to_bits(), f64_bits);
        prop_assert_eq!(dec.str().unwrap(), "section-name");
        prop_assert_eq!(dec.u64s().unwrap(), words);
        let got: Vec<u64> = dec.f64s().unwrap().iter().map(|f| f.to_bits()).collect();
        let want: Vec<u64> = floats.iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(got, want);
        prop_assert!(dec.finish().is_ok());
    }

    /// Arbitrary parameter stores roundtrip bit-exactly through
    /// `encode_store`/`restore_store`.
    #[test]
    fn store_roundtrip_is_bit_exact(n in 1usize..5, seed in 0u64..1_000_000) {
        let (src, mut dst) = store_pair(n, seed);
        restore_store(&mut dst, &encode_store(&src)).unwrap();
        for ((_, pa), (_, pb)) in src.iter().zip(dst.iter()) {
            assert_bits_eq(pa.value(), pb.value());
        }
    }

    /// Arbitrary Adam moments and per-row last-update steps roundtrip
    /// bit-exactly, including the global step counter.
    #[test]
    fn adam_roundtrip_is_bit_exact(n in 1usize..4, seed in 0u64..1_000_000, t in 0u64..u64::MAX) {
        let (store, _) = store_pair(n, seed);
        let mut gen = Gen::new(seed ^ 0x5eed);
        let mut src = Adam::new(AdamConfig::default(), &store);
        let mut dst = Adam::new(AdamConfig::default(), &store);

        // Fill the source optimizer with arbitrary moments via its own
        // validated restore path.
        let (m0, v0, last0, _) = src.export_state();
        let m: Vec<Tensor> =
            m0.iter().map(|x| bit_tensor(x.shape().0, x.shape().1, &mut gen)).collect();
        let v: Vec<Tensor> =
            v0.iter().map(|x| bit_tensor(x.shape().0, x.shape().1, &mut gen)).collect();
        let last: Vec<Vec<u64>> =
            last0.iter().map(|l| l.iter().map(|_| gen.next_u64()).collect()).collect();
        src.restore_state(m, v, last, t).unwrap();

        restore_adam(&mut dst, &encode_adam(&src)).unwrap();
        let (ma, va, la, ta) = src.export_state();
        let (mb, vb, lb, tb) = dst.export_state();
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(la, lb);
        for (x, y) in ma.iter().zip(mb).chain(va.iter().zip(vb)) {
            assert_bits_eq(x, y);
        }
    }

    /// Any strict truncation of a container is rejected, and any single-byte
    /// corruption is rejected; a failed restore leaves the target store
    /// untouched (all-or-nothing).
    #[test]
    fn truncation_and_corruption_never_partially_apply(n in 1usize..4, seed in 0u64..1_000_000) {
        let (src, mut dst) = store_pair(n, seed);
        let mut ck = Checkpoint::new();
        ck.insert("store", encode_store(&src));
        let bytes = ck.to_bytes();

        let mut gen = Gen::new(seed ^ 0xdead);
        let cut = gen.below(bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err());

        let mut flipped = bytes.clone();
        let at = gen.below(bytes.len() as u64) as usize;
        flipped[at] ^= 1 + gen.below(255) as u8;
        prop_assert!(Checkpoint::from_bytes(&flipped).is_err());

        // A payload with a corrupted interior must not half-apply: build a
        // valid container whose store section is itself truncated.
        let store_bytes = encode_store(&src);
        let cut2 = gen.below(store_bytes.len() as u64) as usize;
        prop_assert!(restore_store(&mut dst, &store_bytes[..cut2]).is_err());
        for (_, p) in dst.iter() {
            prop_assert!(p.value().as_slice().iter().all(|&x| x == 0.0), "restore must be all-or-nothing");
        }
    }
}
