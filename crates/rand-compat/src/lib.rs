//! Offline drop-in replacement for the subset of the `rand 0.8` API this
//! workspace uses. The container that builds this repository has no access to
//! crates.io, so the workspace resolves `rand` to this path crate instead.
//!
//! Implemented surface (everything the repo actually calls):
//!
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer/float
//!   ranges), `gen_bool`.
//! * [`SeedableRng::seed_from_u64`].
//! * [`rngs::StdRng`], [`rngs::SmallRng`] (both xoshiro256++ seeded through
//!   SplitMix64) and [`rngs::mock::StepRng`].
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic for a given seed but intentionally do **not**
//! match upstream `rand`; nothing in the repo depends on upstream streams.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
signed_int_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic default generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_key(seed: u64) -> Self {
            let mut k = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut k);
            }
            Self { s }
        }

        /// The exact generator state, for checkpointing a stream position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured by
        /// [`StdRng::state`]. The all-zero state is the one fixed point of
        /// xoshiro256++ (it only ever emits zeros) and cannot come from
        /// [`SeedableRng::seed_from_u64`]; reject it rather than construct a
        /// degenerate stream from corrupted input.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "all-zero xoshiro256++ state is degenerate");
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_key(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Same generator as [`StdRng`]; kept for API compatibility with the
    /// `small_rng` feature of upstream `rand`.
    pub type SmallRng = StdRng;

    /// Deterministic mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// Generator returning `start`, `start + incr`, `start + 2·incr`, …
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            incr: u64,
        }

        impl StepRng {
            /// Creates the stepping generator.
            pub fn new(start: u64, incr: u64) -> Self {
                Self { v: start, incr }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.incr);
                out
            }
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_uniformish() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| c.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let z = rng.gen_range(0u32..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
