//! Adam optimizer with lazy (touched-row-only) updates.
//!
//! The paper trains every model with Adam, learning rate and weight decay both
//! `1e-3` (§V-D). For embedding tables only a handful of rows receive gradient
//! per step; the optimizer therefore walks [`ParamStore::drain_touched`] and
//! pays cost proportional to the number of touched rows, not the table size.
//! Bias correction uses the global step count, matching the sparse-Adam
//! convention of mainstream frameworks.

use crate::store::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Hyper-parameters for [`Adam`].
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate (paper: 1e-3).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay (paper: 1e-3).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 1e-3 }
    }
}

/// Adam state: first/second moment buffers parallel to the parameter store.
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Allocates moment buffers for every parameter currently in `store`.
    pub fn new(cfg: AdamConfig, store: &ParamStore) -> Self {
        let mut m = Vec::with_capacity(store.len());
        let mut v = Vec::with_capacity(store.len());
        for (_, p) in store.iter() {
            let (r, c) = p.value().shape();
            m.push(Tensor::zeros(r, c));
            v.push(Tensor::zeros(r, c));
        }
        Self { cfg, m, v, t: 0 }
    }

    /// Current global step count.
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Learning rate accessor (for schedules).
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Overrides the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Applies one Adam step to every touched row of every parameter, then
    /// clears gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        let sp = imcat_obs::span("phase.optimizer");
        let telemetry = sp.active();
        // Gradient health is tracked here rather than per-model because every
        // model funnels its updates through this one optimizer.
        let mut grad_sq_sum = 0.0f64;
        let mut nonfinite = 0u64;
        self.t += 1;
        let t = self.t as f32;
        let cfg = self.cfg;
        let bc1 = 1.0 - cfg.beta1.powf(t);
        let bc2 = 1.0 - cfg.beta2.powf(t);
        for idx in 0..self.m.len() {
            let pid = ParamId(idx);
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            store.drain_touched(pid, |row, value, grad| {
                if telemetry {
                    for &g in grad.iter() {
                        if g.is_finite() {
                            grad_sq_sum += (g as f64) * (g as f64);
                        } else {
                            nonfinite += 1;
                        }
                    }
                }
                let mr = m.row_mut(row as usize);
                let vr = v.row_mut(row as usize);
                for ((w, &g), (mi, vi)) in
                    value.iter_mut().zip(grad).zip(mr.iter_mut().zip(vr.iter_mut()))
                {
                    *mi = cfg.beta1 * *mi + (1.0 - cfg.beta1) * g;
                    *vi = cfg.beta2 * *vi + (1.0 - cfg.beta2) * g * g;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *w -= cfg.lr * (m_hat / (v_hat.sqrt() + cfg.eps) + cfg.weight_decay * *w);
                }
            });
        }
        if telemetry {
            imcat_obs::counter_add("op.optimizer.count", 1);
            imcat_obs::gauge_set("grad.norm", grad_sq_sum.sqrt());
            if nonfinite > 0 {
                imcat_obs::counter_add("guard.nonfinite_grad", nonfinite);
                imcat_obs::emit(
                    "nonfinite_grad",
                    vec![
                        ("step", imcat_obs::Json::Num(self.t as f64)),
                        ("elements", imcat_obs::Json::Num(nonfinite as f64)),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizing (w - 3)^2 should converge to w = 3.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        let cfg = AdamConfig { lr: 0.1, weight_decay: 0.0, ..AdamConfig::default() };
        let mut adam = Adam::new(cfg, &store);
        for _ in 0..500 {
            let mut tape = Tape::new();
            let wv = tape.leaf(&store, w);
            let c = tape.constant(Tensor::scalar(3.0));
            let d = tape.sub(wv, c);
            let sq = tape.mul(d, d);
            let loss = tape.sum_all(sq);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert!((store.value(w).item() - 3.0).abs() < 1e-2);
    }

    /// Rows that never receive gradient must remain exactly unchanged.
    #[test]
    fn untouched_rows_are_not_updated() {
        let mut store = ParamStore::new();
        let table = store.add("emb", Tensor::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let mut adam = Adam::new(AdamConfig::default(), &store);
        let mut tape = Tape::new();
        let rows = tape.gather(&store, table, &[1]);
        let s = tape.sum_all(rows);
        tape.backward(s, &mut store);
        adam.step(&mut store);
        // Row 0 and 2 untouched.
        assert_eq!(store.value(table).row(0), &[1., 1.]);
        assert_eq!(store.value(table).row(2), &[3., 3.]);
        // Row 1 moved.
        assert_ne!(store.value(table).row(1), &[2., 2.]);
    }

    #[test]
    fn weight_decay_shrinks_touched_weights() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(10.0));
        let cfg = AdamConfig { lr: 0.0, weight_decay: 0.0, ..Default::default() };
        // lr = 0 means only decay acts... but decay is multiplied by lr, so use
        // lr > 0 with a gradient-free touch instead.
        let cfg2 = AdamConfig { lr: 0.1, weight_decay: 0.5, ..cfg };
        let mut adam = Adam::new(cfg2, &store);
        let mut tape = Tape::new();
        let wv = tape.leaf(&store, w);
        let loss = tape.scale(wv, 0.0); // zero gradient, still touches the row
        let loss = tape.sum_all(loss);
        tape.backward(loss, &mut store);
        adam.step(&mut store);
        assert!(store.value(w).item() < 10.0);
    }
}
