//! # imcat-models
//!
//! Recommendation backbones and comparison baselines for the IMCAT
//! reproduction (paper §V-C):
//!
//! * **Backbones** (plug-in targets for IMCAT): [`Bprmf`], [`Neumf`],
//!   [`LightGcn`] — all implementing [`Backbone`].
//! * **Tag-enhanced baselines**: [`Cfa`], [`Dspr`], [`Tgcn`].
//! * **KG-enhanced baselines** (tags treated as KG entities, §II-B):
//!   [`Cke`], [`RippleNet`], [`Kgat`], [`Kgin`].
//! * **SSL-based baselines**: [`Sgl`], [`Kgcl`].
//!
//! Every model implements [`RecModel`] (train an epoch, score users) and is
//! unit-tested for loss descent plus recall improvement over random ranking.

#![warn(missing_docs)]

pub mod baselines;
pub mod common;
pub mod test_util;

mod bprmf;
mod lightgcn;
mod neumf;

pub use baselines::{Cfa, Cke, Dspr, Kgat, Kgcl, Kgin, RippleNet, Sgl, Tgcn};
pub use bprmf::Bprmf;
pub use common::{
    bpr_loss, dot_score_all, info_nce, propagate_mean, propagate_mean_tensor, Backbone,
    EmbeddingCore, EpochStats, Linear, Mlp, RecModel, TrainConfig,
};
pub use lightgcn::LightGcn;
pub use neumf::Neumf;
