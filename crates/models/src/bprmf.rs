//! BPRMF backbone: matrix factorization trained with the pairwise BPR loss
//! (Rendle et al. 2009; paper baseline "BPRMF", Eq. 1).

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;

use crate::common::{bpr_loss, Backbone, EmbeddingCore, EpochStats, RecModel, TrainConfig};

/// Matrix-factorization recommender with BPR ranking loss.
pub struct Bprmf {
    core: EmbeddingCore,
    cfg: TrainConfig,
    sampler: BprSampler,
}

impl Bprmf {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let core = EmbeddingCore::new(data.n_users(), data.n_items(), &cfg, rng);
        let sampler = BprSampler::for_user_items(data);
        Self { core, cfg, sampler }
    }

    /// Shared BPR step on raw embedding tables with sparse gathers.
    fn bpr_step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let u = tape.gather(&self.core.store, self.core.user_emb, &batch.anchors);
        let vp = tape.gather(&self.core.store, self.core.item_emb, &batch.positives);
        let vn = tape.gather(&self.core.store, self.core.item_emb, &batch.negatives);
        let sp = tape.rowwise_dot(u, vp);
        let sn = tape.rowwise_dot(u, vn);
        let loss = bpr_loss(&mut tape, sp, sn);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.core.store);
        self.core.adam.step(&mut self.core.store);
        value
    }
}

impl RecModel for Bprmf {
    fn name(&self) -> String {
        "BPRMF".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.bpr_step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        Some((
            self.core.store.value(self.core.user_emb).clone(),
            self.core.store.value(self.core.item_emb).clone(),
        ))
    }

    fn num_params(&self) -> usize {
        self.core.store.num_weights()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.core.save_state())
    }

    fn load_state(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.core.load_state(bytes)
    }
}

impl Backbone for Bprmf {
    fn dim(&self) -> usize {
        self.core.dim
    }

    fn store(&self) -> &ParamStore {
        &self.core.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.core.store
    }

    fn rebuild_optimizer(&mut self) {
        self.core.rebuild_optimizer(&self.cfg);
    }

    fn optimizer(&self) -> &imcat_tensor::Adam {
        &self.core.adam
    }

    fn store_and_optimizer_mut(&mut self) -> (&mut ParamStore, &mut imcat_tensor::Adam) {
        (&mut self.core.store, &mut self.core.adam)
    }

    fn embed_all(&self, tape: &mut Tape) -> (Var, Var) {
        let u = tape.leaf(&self.core.store, self.core.user_emb);
        let v = tape.leaf(&self.core.store, self.core.item_emb);
        (u, v)
    }

    fn score_pairs(
        &self,
        tape: &mut Tape,
        all_users: Var,
        users: &[u32],
        all_items: Var,
        items: &[u32],
    ) -> Var {
        let u = tape.gather_rows(all_users, users);
        let v = tape.gather_rows(all_items, items);
        tape.rowwise_dot(u, v)
    }

    fn opt_step(&mut self) {
        self.core.adam.step(&mut self.core.store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn loss_decreases_over_epochs() {
        let data = tiny_split(11);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..20 {
            model.train_epoch(&mut rng);
        }
        let last = model.train_epoch(&mut rng).loss;
        assert!(last < first, "BPR loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(42);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 40);
    }

    #[test]
    fn score_matrix_shape() {
        let data = tiny_split(13);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let s = model.score_users(&[0, 3, 5]);
        assert_eq!(s.shape(), (3, data.n_items()));
    }

    #[test]
    fn backbone_pair_scores_match_dot() {
        let data = tiny_split(14);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let (au, ai) = model.embed_all(&mut tape);
        let s = model.score_pairs(&mut tape, au, &[1, 2], ai, &[0, 4]);
        let expect0: f32 = model
            .core
            .store
            .value(model.core.user_emb)
            .row(1)
            .iter()
            .zip(model.core.store.value(model.core.item_emb).row(0))
            .map(|(a, b)| a * b)
            .sum();
        assert!((tape.value(s).get(0, 0) - expect0).abs() < 1e-6);
    }
}
