//! Grid search over IMCAT's scaling factors, following the paper's tuning
//! protocol (§V-D: α, β, γ from {1e-3, 1e-2, 1e-1, 1, 5, 10}, selected on
//! validation Recall@20).
//!
//! Usage:
//!   cargo run --release -p imcat-bench --bin sweep_hyperparams -- \
//!       [--dataset del] [--model L-IMCAT] [--grid coarse|paper]
//!
//! `coarse` (default) sweeps a 12-point subgrid; `paper` sweeps the full
//! 6×6×6 grid (216 training runs — budget accordingly).

use imcat_bench::{logln, preset_by_key, write_json, Env, ExpLog, ModelKind};
use imcat_core::{train, ImcatConfig};

#[derive(Clone)]
struct SweepPoint {
    alpha: f32,
    beta: f32,
    gamma: f32,
    val_recall: f64,
    epochs: usize,
    train_seconds: f64,
}
imcat_obs::impl_to_json!(SweepPoint { alpha, beta, gamma, val_recall, epochs, train_seconds });

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let env = Env::from_env();
    let dataset_key = flag(&args, "--dataset").unwrap_or_else(|| "del".into());
    let model_name = flag(&args, "--model").unwrap_or_else(|| "L-IMCAT".into());
    let kind =
        ModelKind::parse(&model_name).unwrap_or_else(|| panic!("unknown model {model_name}"));
    assert!(kind.is_imcat(), "the sweep only applies to IMCAT variants");
    let grid_kind = flag(&args, "--grid").unwrap_or_else(|| "coarse".into());
    let (alphas, betas, gammas): (Vec<f32>, Vec<f32>, Vec<f32>) = match grid_kind.as_str() {
        "paper" => {
            let full = vec![1e-3, 1e-2, 1e-1, 1.0, 5.0, 10.0];
            (full.clone(), full.clone(), full)
        }
        _ => (vec![0.1, 1.0], vec![0.01, 0.1, 1.0], vec![0.01, 0.1]),
    };

    let data = env.dataset(&preset_by_key(&dataset_key).unwrap());
    let mut log = ExpLog::new("sweep_hyperparams");
    logln!(
        log,
        "sweeping {} on {} ({} grid: {} points)\n",
        kind.name(),
        data.name,
        grid_kind,
        alphas.len() * betas.len() * gammas.len()
    );
    logln!(log, "{:>8} {:>8} {:>8} {:>10} {:>7}", "alpha", "beta", "gamma", "val R@20", "epochs");
    let mut points = Vec::new();
    let mut best: Option<SweepPoint> = None;
    for &alpha in &alphas {
        for &beta in &betas {
            for &gamma in &gammas {
                let icfg = ImcatConfig { alpha, beta, gamma, ..env.imcat_config() };
                let mut model = kind.build(&data, &env.train_config(), &icfg, 1);
                let report = train(model.as_mut(), &data, &env.trainer_config(7));
                logln!(
                    log,
                    "{:>8} {:>8} {:>8} {:>10.4} {:>7}",
                    alpha,
                    beta,
                    gamma,
                    report.best_val_recall,
                    report.epochs_run
                );
                let p = SweepPoint {
                    alpha,
                    beta,
                    gamma,
                    val_recall: report.best_val_recall,
                    epochs: report.epochs_run,
                    train_seconds: report.train_seconds,
                };
                if best.as_ref().is_none_or(|b| p.val_recall > b.val_recall) {
                    best = Some(p.clone());
                }
                points.push(p);
            }
        }
    }
    if let Some(b) = &best {
        logln!(
            log,
            "\nbest: alpha={} beta={} gamma={} (val R@20 {:.4})",
            b.alpha,
            b.beta,
            b.gamma,
            b.val_recall
        );
    }
    let path = write_json("sweep_hyperparams", &points);
    logln!(log, "wrote {}", path.display());
}
