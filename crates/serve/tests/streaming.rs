//! Streaming ingestion contracts:
//!
//! * interleaved ingest/registration/fold traffic never perturbs an
//!   untouched user's recommendations (bit-for-bit, ANN path included);
//! * the background log-replay rebuild is byte-identical to the same
//!   replay run offline — at 1 and 4 threads;
//! * the two-save generation swap is crash-safe: a loader between the
//!   stage and the commit sees the *old* generation, after the commit the
//!   new one;
//! * cold users fold into useful embeddings (their interacted items'
//!   neighborhood ranks above the rest).

use std::sync::{Mutex, OnceLock};

use imcat_ckpt::Checkpoint;
use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_models::{Bprmf, RecModel, TrainConfig};
use imcat_serve::{rebuild_artifact, AnnConfig, Artifact, Engine, Interaction, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_split(seed: u64) -> SplitDataset {
    let synth = generate(&SynthConfig::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    synth.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

/// The pool is process-global, so tests that reconfigure it must not overlap.
fn pool_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    imcat_par::set_threads(threads);
    let out = f();
    imcat_par::set_threads(imcat_par::default_threads());
    out
}

fn trained_artifact(seed: u64) -> Artifact {
    let data = tiny_split(seed);
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
    for _ in 0..3 {
        model.train_epoch(&mut rng);
    }
    model.export_artifact(&data).unwrap()
}

fn lists_bits(recs: &[imcat_serve::Recommendation]) -> Vec<(u32, u32)> {
    recs.iter().map(|r| (r.item, r.score.to_bits())).collect()
}

/// Property: whatever traffic other users generate — interactions, new
/// users joining and interacting, fold ticks — a user nobody touched gets
/// bit-identical recommendations throughout the generation.
#[test]
fn untouched_users_survive_interleaved_ingest_bitwise() {
    let _guard = pool_lock().lock().unwrap();
    let artifact = trained_artifact(41);
    let n_users = artifact.user_emb.rows() as u32;
    let n_items = artifact.item_emb.rows() as u32;
    let cfg = ServeConfig {
        cache_capacity: 64,
        ann: Some(AnnConfig { nlist: 8, nprobe: 4, ..AnnConfig::default() }),
        ..Default::default()
    };
    let mut engine = Engine::new(artifact, cfg).unwrap();
    // First quarter of the trained users are the untouched controls.
    let controls: Vec<u32> = (0..n_users / 4).collect();
    let touched_lo = n_users / 4;
    let baseline: Vec<Vec<(u32, u32)>> =
        controls.iter().map(|&u| lists_bits(&engine.recommend(u, 10).unwrap())).collect();
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for round in 0..30 {
        match rng.gen_range(0..10u32) {
            0 => {
                let u = engine.register_user();
                assert!(u >= n_users);
            }
            1..=2 => {
                engine.fold_pending();
            }
            _ => {
                let hi = engine.n_users() as u32;
                let user = rng.gen_range(touched_lo..hi);
                let item = rng.gen_range(0..n_items);
                engine.ingest(Interaction { user, item }).unwrap();
            }
        }
        if round % 5 == 4 {
            for (i, &u) in controls.iter().enumerate() {
                let now = lists_bits(&engine.recommend(u, 10).unwrap());
                assert_eq!(now, baseline[i], "round {round}: untouched user {u} list changed");
            }
        }
    }
    engine.fold_pending();
    for (i, &u) in controls.iter().enumerate() {
        let now = lists_bits(&engine.recommend(u, 10).unwrap());
        assert_eq!(now, baseline[i], "untouched user {u} list changed after final fold");
    }
}

/// Drives one full streaming scenario against `engine` and returns the log
/// it generated. Deterministic in `seed`.
fn drive_stream(engine: &mut Engine, seed: u64) {
    let base_items = engine.n_items() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..120 {
        match rng.gen_range(0..12u32) {
            0 => {
                engine.register_user();
            }
            1 => {
                engine.register_item();
            }
            2..=3 => {
                engine.fold_pending();
            }
            _ => {
                let user = rng.gen_range(0..engine.n_users() as u32);
                let lo_bias = rng.gen_range(0..4u32);
                // Bias toward the trained catalog so cold items also get
                // evidence from warm users, but keep cold-cold pairs in.
                let item = if lo_bias == 0 && engine.n_items() as u32 > base_items {
                    rng.gen_range(base_items..engine.n_items() as u32)
                } else {
                    rng.gen_range(0..base_items)
                };
                engine.ingest(Interaction { user, item }).unwrap();
            }
        }
        if step % 40 == 39 {
            // Live traffic must keep flowing mid-stream.
            let u = rng.gen_range(0..engine.n_users() as u32);
            engine.recommend(u, 5).unwrap();
        }
    }
}

fn artifact_bytes(a: &Artifact) -> Vec<u8> {
    a.to_checkpoint().to_bytes()
}

/// Acceptance criterion: replaying the stream log offline through
/// `rebuild_artifact` produces a byte-identical artifact to the background
/// rebuild the engine commits — at 1 and at 4 threads, and identical
/// *across* the two thread counts.
#[test]
fn replay_rebuild_is_bit_identical_to_offline_build_at_1_and_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let run = |threads: usize| -> (Vec<u8>, Vec<u8>) {
        with_threads(threads, || {
            let artifact = trained_artifact(43);
            let base = artifact.clone();
            let cfg = ServeConfig {
                cache_capacity: 16,
                ann: Some(AnnConfig { nlist: 8, nprobe: 8, ..AnnConfig::default() }),
                ..Default::default()
            };
            let mut engine = Engine::new(artifact, cfg).unwrap();
            drive_stream(&mut engine, 0xabcd);
            let log = engine.stream_log().to_vec();
            let offline = rebuild_artifact(&base, &log, &engine.fold_options()).unwrap();
            let task = engine.spawn_rebuild(None).unwrap();
            let gen_before = engine.generation();
            engine.commit_rebuild(task).unwrap();
            assert!(engine.generation() > gen_before, "commit did not bump the generation");
            assert!(engine.stream_log().is_empty(), "commit did not consume the log");
            (artifact_bytes(engine.artifact()), artifact_bytes(&offline))
        })
    };
    let (live_1, offline_1) = run(1);
    assert_eq!(live_1, offline_1, "1 thread: rebuild != offline replay");
    let (live_4, offline_4) = run(4);
    assert_eq!(live_4, offline_4, "4 threads: rebuild != offline replay");
    assert_eq!(live_1, live_4, "rebuild bytes differ across thread counts");
}

/// Crash-injection for the two-save generation swap: after the worker
/// stages the next generation (save #1) but before the engine commits
/// (save #2), a loader must recover the *old* generation, complete and
/// consistent. After the commit it must see the new one. Requests keep
/// succeeding throughout.
#[test]
fn generation_swap_is_crash_safe_between_stage_and_commit() {
    let _guard = pool_lock().lock().unwrap();
    let dir = std::env::temp_dir().join(format!("imcat_stream_swap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.imck");
    let artifact = trained_artifact(47);
    artifact.save(&path).unwrap();
    let cfg = ServeConfig {
        cache_capacity: 16,
        ann: Some(AnnConfig { nlist: 8, nprobe: 8, ..AnnConfig::default() }),
        ..Default::default()
    };
    let mut engine = Engine::load(&path, cfg.clone()).unwrap();
    let old_bytes = artifact_bytes(engine.artifact());
    drive_stream(&mut engine, 0x1337);
    let task = engine.spawn_rebuild(Some(path.clone())).unwrap();
    // Serving continues while the worker runs.
    while !task.is_finished() {
        engine.recommend(0, 5).unwrap();
    }
    // Crash point: staged but not committed. A fresh load recovers the old
    // generation bit-for-bit (the staged gen sections are simply ignored).
    {
        let recovered = Engine::load(&path, cfg.clone()).unwrap();
        assert_eq!(
            artifact_bytes(recovered.artifact()),
            old_bytes,
            "loader between stage and commit did not recover the old generation"
        );
    }
    engine.commit_rebuild(task).unwrap();
    let new_bytes = artifact_bytes(engine.artifact());
    assert_ne!(new_bytes, old_bytes, "rebuild with a nonempty log should change the artifact");
    // After the commit the pointer names the new generation.
    {
        let ck = Checkpoint::load(&path).unwrap();
        let committed = ck.generation().unwrap();
        assert!(committed.is_some(), "commit did not write a generation pointer");
        let recovered = Engine::load(&path, cfg).unwrap();
        assert_eq!(
            artifact_bytes(recovered.artifact()),
            new_bytes,
            "loader after commit did not see the new generation"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A cold user who interacts with a warm item neighborhood folds into an
/// embedding that ranks that neighborhood's remaining items highly — and
/// their own interacted items are masked out of their recommendations.
#[test]
fn cold_user_fold_in_reaches_their_neighborhood() {
    let _guard = pool_lock().lock().unwrap();
    let artifact = trained_artifact(53);
    let cfg = ServeConfig { cache_capacity: 0, ..Default::default() };
    let mut engine = Engine::new(artifact, cfg).unwrap();
    // Pick the warm user with the most training items; the cold user mimics
    // half their history.
    let donor = (0..engine.n_users()).max_by_key(|&u| engine.artifact().masks[u].len()).unwrap();
    let history: Vec<u32> = engine.artifact().masks[donor].clone();
    assert!(history.len() >= 4, "synthetic data gave no usable donor");
    let (seen, holdout) = history.split_at(history.len() / 2);
    let cold = engine.register_user();
    for &item in seen {
        engine.ingest(Interaction { user: cold, item }).unwrap();
    }
    engine.fold_pending();
    let emb: &[f32] = engine.artifact().user_emb.row(cold as usize);
    assert!(emb.iter().any(|&x| x != 0.0), "fold-in left the cold user at zero");
    let recs = engine.recommend(cold, 10).unwrap();
    assert!(!recs.is_empty());
    for r in &recs {
        assert!(!seen.contains(&r.item), "recommended an item the cold user already consumed");
    }
    // Recall@10 against the donor's holdout must beat zero: the fold-in
    // embedding points into the right neighborhood.
    let hits = recs.iter().filter(|r| holdout.contains(&r.item)).count();
    assert!(hits > 0, "cold-user fold-in found none of the donor's holdout items");
}
