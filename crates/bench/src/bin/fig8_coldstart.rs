//! Fig. 8 — cold-start analysis: R@20 over users with fewer than 10 training
//! interactions, normalized per dataset by the best model (as in the paper),
//! on CiteULike and AMZBook-Tag.
//!
//! Usage: `cargo run --release -p imcat-bench --bin fig8_coldstart`

use imcat_bench::{logln, preset_by_key, write_json, Env, ExpLog, ModelKind};
use imcat_core::train;
use imcat_eval::{cold_start_users, evaluate_user_subset};

struct Row {
    model: String,
    dataset: String,
    cold_users: usize,
    recall: f64,
    ndcg: f64,
    normalized_recall: f64,
}
imcat_obs::impl_to_json!(Row { model, dataset, cold_users, recall, ndcg, normalized_recall });

fn main() {
    let env = Env::from_env();
    let models = [
        ModelKind::LightGcn,
        ModelKind::Tgcn,
        ModelKind::Kgin,
        ModelKind::Sgl,
        ModelKind::Kgcl,
        ModelKind::LImcat,
    ];
    let mut log = ExpLog::new("fig8_coldstart");
    let mut rows = Vec::new();
    logln!(log, "Fig. 8: cold-start users (< 10 training interactions)\n");
    for key in ["cite", "amz"] {
        let data = env.dataset(&preset_by_key(key).unwrap());
        let cold = cold_start_users(&data, 10);
        logln!(log, "== {} ({} cold users) ==", data.name, cold.len());
        logln!(log, "{:<10} {:>8} {:>8} {:>11}", "model", "R@20", "N@20", "normalized");
        let mut dataset_rows: Vec<Row> = Vec::new();
        for kind in models {
            let icfg = env.imcat_config();
            let mut model = kind.build(&data, &env.train_config(), &icfg, 1);
            train(model.as_mut(), &data, &env.trainer_config(7));
            let mut score_fn = |users: &[u32]| model.score_users(users);
            let m = evaluate_user_subset(&mut score_fn, &data, 20, &cold).aggregate();
            dataset_rows.push(Row {
                model: kind.name().to_string(),
                dataset: data.name.clone(),
                cold_users: cold.len(),
                recall: m.recall,
                ndcg: m.ndcg,
                normalized_recall: 0.0,
            });
        }
        let best = dataset_rows.iter().map(|r| r.recall).fold(0.0f64, f64::max).max(1e-12);
        for r in &mut dataset_rows {
            r.normalized_recall = r.recall / best;
            logln!(
                log,
                "{:<10} {:>8.2} {:>8.2} {:>11.3}",
                r.model,
                r.recall * 100.0,
                r.ndcg * 100.0,
                r.normalized_recall
            );
        }
        logln!(log);
        rows.extend(dataset_rows);
    }
    let path = write_json("fig8_coldstart", &rows);
    logln!(log, "wrote {}", path.display());
}
