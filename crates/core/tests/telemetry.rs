//! Telemetry integration: the instrumented trainer must decompose the epoch
//! loss into per-term contributions that add back up to the total, record
//! nonzero op-level counters, and survive a JSONL round-trip.

use imcat_core::{trainer, Imcat, ImcatConfig, TrainerConfig};
use imcat_models::test_util::tiny_split;
use imcat_models::{Bprmf, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-epoch `loss_terms` events must satisfy `uv + vt + ca + kl +
/// independence == total` (the terms are recorded already scaled).
#[test]
fn loss_terms_sum_to_total() {
    // The obs registry is process-global; the guard serialises the
    // telemetry-asserting tests and resets state around each.
    let _guard = imcat_obs::exclusive(true);
    let data = tiny_split(501);
    let mut rng = StdRng::seed_from_u64(0);
    let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
    let mut model =
        Imcat::new(bb, &data, ImcatConfig { pretrain_epochs: 1, ..Default::default() }, &mut rng);
    trainer::train(
        &mut model,
        &data,
        &TrainerConfig { max_epochs: 3, eval_every: 1, patience: 10, ..Default::default() },
    );
    let events = imcat_obs::events();
    let loss_events: Vec<_> = events.iter().filter(|e| e.kind == "loss_terms").collect();
    assert_eq!(loss_events.len(), 3, "one loss_terms event per epoch");
    let mut saw_full_objective = false;
    for e in &loss_events {
        let f = |k: &str| {
            e.fields
                .iter()
                .find(|(name, _)| name == k)
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or_else(|| panic!("loss_terms missing field {k}"))
        };
        let sum = f("uv") + f("vt") + f("ca") + f("kl") + f("independence");
        let total = f("total");
        assert!(
            (sum - total).abs() <= 1e-6 * total.abs().max(1.0),
            "terms {sum} do not add up to total {total}"
        );
        assert!(total.is_finite() && total > 0.0);
        if f("ca") > 0.0 {
            saw_full_objective = true;
        }
    }
    assert!(saw_full_objective, "post-pretrain epochs should include L_CA");
}

/// Training must leave nonzero op counters for the hot tape ops and the
/// backward pass, and per-phase span times must be recorded.
#[test]
fn op_counters_and_phases_are_recorded() {
    let _guard = imcat_obs::exclusive(true);
    let data = tiny_split(502);
    let mut rng = StdRng::seed_from_u64(0);
    let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
    let mut model =
        Imcat::new(bb, &data, ImcatConfig { pretrain_epochs: 0, ..Default::default() }, &mut rng);
    trainer::train(
        &mut model,
        &data,
        &TrainerConfig { max_epochs: 2, eval_every: 1, patience: 10, ..Default::default() },
    );
    let snap = imcat_obs::snapshot();
    for c in [
        "op.matmul.count",
        "op.spmm.count",
        "op.spmm.nnz",
        "op.gather.count",
        "op.elementwise.count",
        "op.backward.count",
        "sampler.bpr.batches",
    ] {
        assert!(snap.counter(c) > 0, "counter {c} was never incremented");
    }
    for p in [
        "phase.sampling",
        "phase.forward",
        "phase.backward",
        "phase.optimizer",
        "phase.refresh",
        "phase.eval",
    ] {
        assert!(snap.hist_count(p) > 0, "span {p} never recorded");
        assert!(snap.hist_sum(p) > 0.0, "span {p} has zero accumulated time");
    }
    // The disjoint training phases must account for a sane, positive share of
    // wall time without exceeding it wildly (they are non-overlapping).
    let train_time = snap.hist_sum("phase.sampling")
        + snap.hist_sum("phase.forward")
        + snap.hist_sum("phase.backward")
        + snap.hist_sum("phase.optimizer");
    assert!(train_time > 0.0);
}

/// Telemetry off must record nothing, even while training runs.
#[test]
fn disabled_telemetry_stays_empty() {
    let _guard = imcat_obs::exclusive(false);
    let data = tiny_split(503);
    let mut rng = StdRng::seed_from_u64(0);
    let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
    let mut model =
        Imcat::new(bb, &data, ImcatConfig { pretrain_epochs: 1, ..Default::default() }, &mut rng);
    trainer::train(
        &mut model,
        &data,
        &TrainerConfig { max_epochs: 1, eval_every: 1, patience: 10, ..Default::default() },
    );
    let snap = imcat_obs::snapshot();
    assert_eq!(snap.counter("op.matmul.count"), 0);
    assert_eq!(snap.hist_count("phase.forward"), 0);
    assert!(imcat_obs::events().is_empty());
}
