//! Fig. 9 — training efficiency vs recommendation quality: wall-clock
//! training time (to early stop) against test R@20 for the main methods on
//! two datasets. The paper's headline: N-IMCAT reaches GNN-level quality in a
//! fraction of the training time.
//!
//! Also emits a thread-scaling table: the evaluation hot path (dense scoring
//! matmul + per-user ranking) timed at 1/2/4/8 pool threads, with a
//! bit-identity check that the metrics do not depend on the thread count.
//!
//! Usage: `cargo run --release -p imcat-bench --bin fig9_efficiency`

use imcat_bench::ModelKind;
use imcat_bench::{logln, obs_finish, obs_init, preset_by_key, run_one, write_json, Env, ExpLog};
use imcat_eval::{evaluate_per_user, EvalSpec};
use std::time::Instant;

struct Point {
    model: String,
    dataset: String,
    train_seconds: f64,
    epochs: usize,
    recall: f64,
    seconds_per_epoch: f64,
}

imcat_obs::impl_to_json!(Point {
    model,
    dataset,
    train_seconds,
    epochs,
    recall,
    seconds_per_epoch
});

struct ScalePoint {
    dataset: String,
    threads: usize,
    seconds: f64,
    speedup_vs_1: f64,
    recall_bits: u64,
    ndcg_bits: u64,
}

imcat_obs::impl_to_json!(ScalePoint {
    dataset,
    threads,
    seconds,
    speedup_vs_1,
    recall_bits,
    ndcg_bits
});

/// Time the evaluation hot path (batched scoring matmuls + per-user ranking
/// fan-out) at several pool sizes and verify the metrics are bit-identical.
fn thread_scaling(env: &Env, log: &mut ExpLog) -> Vec<ScalePoint> {
    let data = env.dataset(&preset_by_key("amz").unwrap());
    let icfg = env.imcat_config();
    // An untrained BPR-MF is enough: the workload (dense scoring matmul plus
    // the ranking fan-out) is identical to the trained case.
    let model = ModelKind::Bprmf.build(&data, &env.train_config(), &icfg, 1);
    let reps = 3usize;

    logln!(log, "== thread scaling ({}; eval hot path, {reps} reps) ==", data.name);
    logln!(log, "{:>7} {:>9} {:>9}", "threads", "time(s)", "speedup");
    let mut rows: Vec<ScalePoint> = Vec::new();
    let mut base_secs = 0.0f64;
    let mut base_bits: Option<(u64, u64)> = None;
    for threads in [1usize, 2, 4, 8] {
        imcat_par::set_threads(threads);
        let t0 = Instant::now();
        let mut last = None;
        for _ in 0..reps {
            let mut score_fn = |users: &[u32]| model.score_users(users);
            last = Some(evaluate_per_user(&mut score_fn, &data, &EvalSpec::at(20)).aggregate());
        }
        let secs = t0.elapsed().as_secs_f64();
        let m = last.unwrap();
        let bits = (m.recall.to_bits(), m.ndcg.to_bits());
        match base_bits {
            None => {
                base_secs = secs;
                base_bits = Some(bits);
            }
            Some(b) => {
                assert_eq!(b, bits, "metrics must be bit-identical regardless of thread count")
            }
        }
        let speedup = if secs > 0.0 { base_secs / secs } else { 0.0 };
        logln!(log, "{threads:>7} {secs:>9.3} {speedup:>9.2}");
        rows.push(ScalePoint {
            dataset: data.name.clone(),
            threads,
            seconds: secs,
            speedup_vs_1: speedup,
            recall_bits: bits.0,
            ndcg_bits: bits.1,
        });
    }
    imcat_par::set_threads(imcat_par::default_threads());
    logln!(log);
    rows
}

fn main() {
    // The efficiency figure is about where training time goes, so telemetry
    // (and its per-phase breakdown events) is always on here.
    obs_init(true);
    let env = Env::from_env();
    let models = [
        ModelKind::Neumf,
        ModelKind::LightGcn,
        ModelKind::Tgcn,
        ModelKind::Kgat,
        ModelKind::Kgin,
        ModelKind::Kgcl,
        ModelKind::NImcat,
        ModelKind::LImcat,
    ];
    let mut log = ExpLog::new("fig9_efficiency");
    let mut points = Vec::new();
    logln!(log, "Fig. 9: training time vs quality\n");
    for key in ["del", "cite"] {
        let data = env.dataset(&preset_by_key(key).unwrap());
        logln!(log, "== {} ==", data.name);
        logln!(
            log,
            "{:<10} {:>9} {:>7} {:>8} {:>9}",
            "model",
            "time(s)",
            "epochs",
            "R@20",
            "s/epoch"
        );
        for kind in models {
            let icfg = env.imcat_config();
            let (r, _) = run_one(kind, &data, &env, &icfg, 1);
            logln!(
                log,
                "{:<10} {:>9.2} {:>7} {:>8.2} {:>9.3}",
                r.model,
                r.train_seconds,
                r.epochs,
                r.recall * 100.0,
                r.train_seconds / r.epochs.max(1) as f64
            );
            points.push(Point {
                model: r.model.clone(),
                dataset: r.dataset.clone(),
                train_seconds: r.train_seconds,
                epochs: r.epochs,
                recall: r.recall,
                seconds_per_epoch: r.train_seconds / r.epochs.max(1) as f64,
            });
        }
        logln!(log);
    }
    let path = write_json("fig9_efficiency", &points);
    logln!(log, "wrote {}", path.display());

    let scaling = thread_scaling(&env, &mut log);
    let spath = write_json("fig9_thread_scaling", &scaling);
    logln!(log, "wrote {}", spath.display());
    obs_finish();
}
