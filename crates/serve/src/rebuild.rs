//! Background full rebuild: log replay → fold-in → fresh index →
//! generation-staged persistence.
//!
//! ## The canonical rebuild function
//!
//! [`rebuild_artifact`] is a *pure, deterministic* function of the
//! generation base artifact and its [`StreamEvent`] log: replay the
//! registrations and mask updates, then fold every cold entity in two
//! ordered phases — items first (against the trained user rows), then users
//! (against the item matrix with the fresh item folds in place). The
//! streaming engine's background rebuild and an offline build over the same
//! `(base, log)` both call this one function, so the two are bit-identical
//! by construction — asserted byte-for-byte at 1 and 4 threads in
//! `tests/streaming.rs`.
//!
//! ## Crash-safe generation swap
//!
//! When a persistence path is given, the rebuild worker *stages* the next
//! generation: every `artifact.*`/`ann.*` section is written under a
//! `gen<N>.` prefix while the container's committed-generation pointer still
//! names the old sections, and the whole file is saved atomically
//! (tmp+fsync+rename). The engine commits only after swapping its in-memory
//! state, with a second atomic save that flips the pointer and prunes the
//! superseded sections. A crash between the two saves recovers to the *old*
//! generation — complete and consistent; a crash after the second recovers
//! to the new one. There is no instant at which a loader can observe half a
//! generation.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::thread::JoinHandle;

use imcat_ann::{AnnConfig, AnnIndex, DEFAULT_BUILD_SEED};
use imcat_ckpt::{Artifact, Checkpoint};
use imcat_tensor::Tensor;

use crate::foldin::{fold_embedding, FoldOptions};
use crate::ingest::{mask_insert, StreamEvent};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Replays `log` over `base` into a fresh artifact: registrations grow the
/// matrices, interactions grow the masks, and every cold entity is folded in
/// ([`fold_embedding`]) — items first against the trained user rows, then
/// users against the updated item matrix, each in ascending-id order with
/// evidence rows visited in log-arrival order (duplicates kept: a repeated
/// interaction is weighted evidence). Pure and deterministic: the same
/// `(base, log, opts)` produces a bit-identical artifact at any
/// `IMCAT_THREADS` setting.
pub fn rebuild_artifact(
    base: &Artifact,
    log: &[StreamEvent],
    opts: &FoldOptions,
) -> io::Result<Artifact> {
    let dim = base.dim();
    let base_users = base.n_users();
    let base_items = base.n_items();
    let mut n_users = base_users;
    let mut n_items = base_items;
    let mut masks = base.masks.clone();
    // Fold evidence for cold entities: opposite-side ids in arrival order.
    let mut item_users: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut user_items: HashMap<u32, Vec<u32>> = HashMap::new();
    for ev in log {
        match *ev {
            StreamEvent::RegisterUser => {
                n_users += 1;
                masks.push(Vec::new());
            }
            StreamEvent::RegisterItem => {
                n_items += 1;
            }
            StreamEvent::Interaction(x) => {
                if (x.user as usize) >= n_users {
                    return Err(bad(format!("log interaction user {} out of range", x.user)));
                }
                if (x.item as usize) >= n_items {
                    return Err(bad(format!("log interaction item {} out of range", x.item)));
                }
                mask_insert(&mut masks[x.user as usize], x.item);
                if (x.item as usize) >= base_items {
                    item_users.entry(x.item).or_default().push(x.user);
                }
                if (x.user as usize) >= base_users {
                    user_items.entry(x.user).or_default().push(x.item);
                }
            }
        }
    }
    let mut user_emb = Tensor::zeros(n_users, dim);
    user_emb.as_mut_slice()[..base_users * dim].copy_from_slice(base.user_emb.as_slice());
    let mut item_emb = Tensor::zeros(n_items, dim);
    item_emb.as_mut_slice()[..base_items * dim].copy_from_slice(base.item_emb.as_slice());
    // Phase A: cold items fold against the user matrix as trained (cold
    // users are still zero rows here, which contribute no evidence).
    for id in base_items..n_items {
        if let Some(users) = item_users.get(&(id as u32)) {
            let rows: Vec<&[f32]> = users.iter().map(|&u| user_emb.row(u as usize)).collect();
            let emb = fold_embedding(&rows, dim, opts);
            item_emb.row_mut(id).copy_from_slice(&emb);
        }
    }
    // Phase B: cold users fold against the item matrix *with* the phase-A
    // folds in place, so a cold user benefits from the cold items they
    // interacted with.
    for id in base_users..n_users {
        if let Some(items) = user_items.get(&(id as u32)) {
            let rows: Vec<&[f32]> = items.iter().map(|&i| item_emb.row(i as usize)).collect();
            let emb = fold_embedding(&rows, dim, opts);
            user_emb.row_mut(id).copy_from_slice(&emb);
        }
    }
    let art = Artifact::new(base.model.clone(), user_emb, item_emb, masks);
    art.validate()?;
    Ok(art)
}

/// Everything the background worker hands back on success.
pub(crate) struct RebuildOutput {
    pub artifact: Artifact,
    pub index: Option<Box<dyn AnnIndex>>,
    /// `(path, generation)` when the new generation was staged on disk.
    pub staged: Option<(PathBuf, u64)>,
}

/// A rebuild running off the request path. Poll [`RebuildTask::is_finished`]
/// between ticks and hand the task to `Engine::commit_rebuild` when ready
/// (committing blocks on the remaining work, which is nothing once the poll
/// reports finished).
pub struct RebuildTask {
    pub(crate) handle: JoinHandle<io::Result<RebuildOutput>>,
    /// Length of the engine log captured in the rebuild snapshot; events
    /// past it are replayed onto the new generation at commit.
    pub(crate) snap_len: usize,
}

impl RebuildTask {
    /// Whether the worker thread has finished (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Spawns the rebuild worker over a snapshot of the engine's streaming
/// state. With `persist`, the worker also stages the next generation into
/// the container at that path (atomic save, committed pointer untouched).
pub(crate) fn spawn(
    base: Artifact,
    log: Vec<StreamEvent>,
    opts: FoldOptions,
    ann: Option<AnnConfig>,
    persist: Option<PathBuf>,
) -> io::Result<RebuildTask> {
    let snap_len = log.len();
    if imcat_obs::enabled() {
        imcat_obs::counter_add("serve.rebuilds", 1);
    }
    let handle = std::thread::Builder::new().name("imcat-rebuild".into()).spawn(move || {
        let sp = imcat_obs::span("serve.rebuild.seconds");
        let artifact = rebuild_artifact(&base, &log, &opts)?;
        let index = ann.map(|c| c.build_index(&artifact.item_emb, DEFAULT_BUILD_SEED));
        let staged = match persist {
            None => None,
            Some(path) => {
                let mut ck = match Checkpoint::load(&path) {
                    Ok(ck) => ck,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => Checkpoint::new(),
                    Err(e) => return Err(e),
                };
                let gen = ck.generation()?.unwrap_or(0) + 1;
                let mut staged_ck = artifact.to_checkpoint();
                if let Some(ix) = &index {
                    ix.save_sections(&mut staged_ck);
                }
                ck.stage_generation(gen, &staged_ck);
                // Atomic save #1: the new generation's sections exist, the
                // committed pointer still names the old one. A crash from
                // here until commit recovers to the old generation.
                ck.save(&path)?;
                Some((path, gen))
            }
        };
        drop(sp);
        Ok(RebuildOutput { artifact, index, staged })
    })?;
    Ok(RebuildTask { handle, snap_len })
}
