//! Property-based tests for dataset splitting and sampling invariants.

use imcat_data::{BprSampler, Dataset, ItemBatcher};
use imcat_tensor::Csr;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_dataset(users: usize, items: usize, tags: usize) -> impl Strategy<Value = Dataset> {
    let ui = proptest::collection::vec(
        proptest::collection::btree_set(0..items as u32, 1..items.min(10)),
        users,
    );
    let it = proptest::collection::vec(
        proptest::collection::btree_set(0..tags as u32, 1..tags.min(4)),
        items,
    );
    (ui, it).prop_map(move |(ui, it)| {
        let ui: Vec<Vec<u32>> = ui.into_iter().map(|s| s.into_iter().collect()).collect();
        let it: Vec<Vec<u32>> = it.into_iter().map(|s| s.into_iter().collect()).collect();
        Dataset::new(
            "prop",
            Csr::from_adjacency(users, items, &ui),
            Csr::from_adjacency(items, tags, &it),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The split must partition every user's items exactly.
    #[test]
    fn split_partitions_interactions(data in random_dataset(8, 14, 5), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = data.split((0.7, 0.1, 0.2), &mut rng);
        for u in 0..data.n_users() {
            let mut all: Vec<u32> = s.train_items(u).to_vec();
            all.extend(&s.val[u]);
            all.extend(&s.test[u]);
            all.sort_unstable();
            let mut expected: Vec<u32> = data.user_item.forward().row_indices(u).to_vec();
            expected.sort_unstable();
            prop_assert_eq!(all, expected);
            // No leakage between train and test.
            for t in &s.test[u] {
                prop_assert!(!s.train_items(u).contains(t));
            }
            // Users with >= 2 interactions keep train and test non-empty.
            if data.user_item.forward().row_nnz(u) >= 2 {
                prop_assert!(!s.train_items(u).is_empty());
                prop_assert!(!s.test[u].is_empty());
            }
        }
    }

    /// BPR samples: positives observed, negatives unobserved.
    #[test]
    fn bpr_samples_respect_interactions(data in random_dataset(8, 14, 5), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = data.split((0.7, 0.1, 0.2), &mut rng);
        let sampler = BprSampler::for_user_items(&s);
        let batch = sampler.sample(64, &mut rng);
        for i in 0..batch.len() {
            prop_assert!(s.train.forward().contains(batch.anchors[i], batch.positives[i]));
            prop_assert!(!s.train.forward().contains(batch.anchors[i], batch.negatives[i]));
        }
    }

    /// Item batches cover each item exactly once per epoch (minus a possible
    /// dropped singleton tail).
    #[test]
    fn item_batches_partition_items(n_items in 4usize..60, batch in 2usize..16, seed in 0u64..1000) {
        let b = ItemBatcher::new(n_items, batch);
        let mut rng = StdRng::seed_from_u64(seed);
        let batches = b.epoch(&mut rng);
        let mut seen: Vec<u32> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), batches.iter().map(Vec::len).sum::<usize>());
        prop_assert!(n_items - seen.len() <= 1); // at most the dropped singleton
    }

    /// Dataset statistics are internally consistent.
    #[test]
    fn stats_consistent(data in random_dataset(6, 10, 4)) {
        let s = data.stats();
        prop_assert_eq!(s.n_ui, data.user_item.n_edges());
        prop_assert!((s.ui_density - s.n_ui as f64 / (s.n_users * s.n_items) as f64).abs() < 1e-12);
        prop_assert!((s.ui_avg_degree - s.n_ui as f64 / s.n_users as f64).abs() < 1e-12);
    }
}
