//! Unified user–item–tag graph utilities shared by the graph baselines
//! (TGCN, KGAT, KGCL). Nodes are laid out as `[users | items | tags]`.

use imcat_data::SplitDataset;
use imcat_tensor::Csr;

/// Node layout of the unified graph.
#[derive(Clone, Copy, Debug)]
pub struct UnifiedLayout {
    /// Number of user nodes (rows `0..n_users`).
    pub n_users: usize,
    /// Number of item nodes (rows `n_users..n_users + n_items`).
    pub n_items: usize,
    /// Number of tag nodes (final rows).
    pub n_tags: usize,
}

impl UnifiedLayout {
    /// Builds the layout from a split dataset.
    pub fn of(data: &SplitDataset) -> Self {
        Self { n_users: data.n_users(), n_items: data.n_items(), n_tags: data.n_tags() }
    }

    /// Total node count.
    pub fn total(&self) -> usize {
        self.n_users + self.n_items + self.n_tags
    }

    /// Global node id of an item.
    pub fn item(&self, v: u32) -> u32 {
        self.n_users as u32 + v
    }

    /// Global node id of a tag.
    pub fn tag(&self, t: u32) -> u32 {
        (self.n_users + self.n_items) as u32 + t
    }
}

/// Symmetrically normalized adjacency over the unified node set containing
/// only the user–item edges.
pub fn ui_adjacency(data: &SplitDataset, layout: UnifiedLayout) -> Csr {
    let n = layout.total();
    let udeg: Vec<f32> = data.train.row_degrees().iter().map(|&d| d as f32).collect();
    let ideg: Vec<f32> = data.train.col_degrees().iter().map(|&d| d as f32).collect();
    let mut triplets = Vec::with_capacity(2 * data.train.n_edges());
    for (u, v, w) in data.train.forward().iter() {
        let norm = w / (udeg[u as usize].max(1.0).sqrt() * ideg[v as usize].max(1.0).sqrt());
        triplets.push((u, layout.item(v), norm));
        triplets.push((layout.item(v), u, norm));
    }
    Csr::from_triplets(n, n, &triplets)
}

/// Symmetrically normalized adjacency over the unified node set containing
/// only the item–tag edges.
pub fn it_adjacency(data: &SplitDataset, layout: UnifiedLayout) -> Csr {
    let n = layout.total();
    let ideg: Vec<f32> = data.item_tag.row_degrees().iter().map(|&d| d as f32).collect();
    let tdeg: Vec<f32> = data.item_tag.col_degrees().iter().map(|&d| d as f32).collect();
    let mut triplets = Vec::with_capacity(2 * data.item_tag.n_edges());
    for (v, t, w) in data.item_tag.forward().iter() {
        let norm = w / (ideg[v as usize].max(1.0).sqrt() * tdeg[t as usize].max(1.0).sqrt());
        triplets.push((layout.item(v), layout.tag(t), norm));
        triplets.push((layout.tag(t), layout.item(v), norm));
    }
    Csr::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_split;

    #[test]
    fn layout_offsets() {
        let data = tiny_split(71);
        let l = UnifiedLayout::of(&data);
        assert_eq!(l.total(), data.n_users() + data.n_items() + data.n_tags());
        assert_eq!(l.item(0), data.n_users() as u32);
        assert_eq!(l.tag(0), (data.n_users() + data.n_items()) as u32);
    }

    #[test]
    fn adjacencies_are_disjoint_blocks() {
        let data = tiny_split(72);
        let l = UnifiedLayout::of(&data);
        let ui = ui_adjacency(&data, l);
        let it = it_adjacency(&data, l);
        assert_eq!(ui.nnz(), 2 * data.train.n_edges());
        assert_eq!(it.nnz(), 2 * data.item_tag.n_edges());
        // UI edges never touch tag nodes.
        for (r, c, _) in ui.iter() {
            assert!((r as usize) < l.n_users + l.n_items);
            assert!((c as usize) < l.n_users + l.n_items);
        }
        // IT edges never touch user nodes.
        for (r, c, _) in it.iter() {
            assert!(r as usize >= l.n_users);
            assert!(c as usize >= l.n_users);
        }
    }
}
