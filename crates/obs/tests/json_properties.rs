//! Property tests for the hand-rolled JSON writer/parser pair: random
//! documents (escape-heavy strings, astral-plane characters, deep nesting)
//! must round-trip exactly through both the compact and pretty renderers,
//! and malformed inputs must be rejected.

use imcat_obs::Json;
use proptest::prelude::*;

/// Character pool biased toward what the escaper has to work hardest on:
/// quotes, backslashes, control characters, multi-byte and astral scalars.
const CHAR_POOL: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{8}',
    '\u{c}',
    '\u{1}',
    '\u{1f}',
    'é',
    'ß',
    '中',
    '\u{2028}',
    '😀',
    '𝔘',
    '\u{10FFFF}',
];

/// Strategy for arbitrary [`Json`] documents with nesting up to `depth`.
/// `proptest-compat` has no recursion combinator, so recursion is explicit.
struct JsonStrategy {
    depth: usize,
}

fn gen_string(gen: &mut proptest::Gen) -> String {
    let len = gen.below(9) as usize;
    (0..len).map(|_| CHAR_POOL[gen.below(CHAR_POOL.len() as u64) as usize]).collect()
}

fn gen_number(gen: &mut proptest::Gen) -> f64 {
    match gen.below(4) {
        0 => gen.below(2_000_000) as f64 - 1_000_000.0,
        1 => gen.unit_f64() * 2.0 - 1.0,
        2 => (gen.unit_f64() - 0.5) * 1.0e18,
        _ => gen.unit_f64() * 1.0e-12,
    }
}

fn gen_value(gen: &mut proptest::Gen, depth: usize) -> Json {
    let kinds = if depth == 0 { 4 } else { 6 };
    match gen.below(kinds) {
        0 => Json::Null,
        1 => Json::Bool(gen.below(2) == 0),
        2 => Json::Num(gen_number(gen)),
        3 => Json::Str(gen_string(gen)),
        4 => {
            let n = gen.below(4) as usize;
            Json::Arr((0..n).map(|_| gen_value(gen, depth - 1)).collect())
        }
        _ => {
            let n = gen.below(4) as usize;
            Json::Obj(
                (0..n)
                    .map(|i| (format!("k{i}_{}", gen_string(gen)), gen_value(gen, depth - 1)))
                    .collect(),
            )
        }
    }
}

impl Strategy for JsonStrategy {
    type Value = Json;

    fn generate(&self, gen: &mut proptest::Gen) -> Json {
        gen_value(gen, self.depth)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn roundtrip_compact_and_pretty(v in JsonStrategy { depth: 4 }) {
        let compact = Json::parse(&v.render());
        prop_assert_eq!(compact.as_ref(), Ok(&v), "compact: {}", v.render());
        let pretty = Json::parse(&v.pretty());
        prop_assert_eq!(pretty.as_ref(), Ok(&v), "pretty: {}", v.pretty());
    }

    #[test]
    fn trailing_garbage_always_rejected(v in JsonStrategy { depth: 2 }) {
        // No digit suffix: appending a digit to a bare-number document just
        // extends the number into another valid document.
        for suffix in ["x", "{}", " ]", ",null"] {
            let text = format!("{}{suffix}", v.render());
            prop_assert!(Json::parse(&text).is_err(), "accepted: {text}");
        }
    }
}

#[test]
fn escape_sequences_roundtrip() {
    let s = "quote:\" backslash:\\ slash:/ nl:\n cr:\r tab:\t bs:\u{8} ff:\u{c} nul-ish:\u{1}";
    let v = Json::Str(s.to_string());
    assert_eq!(Json::parse(&v.render()).unwrap(), v);
    // All standard short escapes parse.
    assert_eq!(
        Json::parse(r#""\" \\ \/ \n \r \t \b \f""#).unwrap(),
        Json::Str("\" \\ / \n \r \t \u{8} \u{c}".to_string())
    );
}

#[test]
fn unicode_forms_agree() {
    // The same scalar via literal, BMP escape, and surrogate-pair escape.
    assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::parse("\"é\"").unwrap());
    assert_eq!(Json::parse("\"\\uD83D\\uDE00\"").unwrap(), Json::parse("\"😀\"").unwrap());
    // Escaped control characters re-render escaped and round-trip.
    let v = Json::parse("\"\\u0007\"").unwrap();
    assert_eq!(v, Json::Str("\u{7}".to_string()));
    assert_eq!(Json::parse(&v.render()).unwrap(), v);
}

#[test]
fn deeply_nested_documents_roundtrip() {
    let mut v = Json::Num(1.0);
    for i in 0..64 {
        v = if i % 2 == 0 { Json::Arr(vec![v]) } else { Json::Obj(vec![("k".to_string(), v)]) };
    }
    assert_eq!(Json::parse(&v.render()).unwrap(), v);
    assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
}
