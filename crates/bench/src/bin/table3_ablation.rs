//! Table III — ablation of the IMCA module designs: w/o UIT, w/o UT, w/o UI,
//! w/o NLT, for N-IMCAT and L-IMCAT on HetRec-Del, CiteULike, and Yelp-Tag.
//!
//! Usage: `cargo run --release -p imcat-bench --bin table3_ablation`
//! Environment: `IMCAT_SCALE`, `IMCAT_EPOCHS`, `IMCAT_TRIALS`, `IMCAT_DIM`.

use imcat_bench::{logln, preset_by_key, run_trials, write_json, Env, ExpLog, ModelKind};
use imcat_core::ImcatConfig;

struct Row {
    model: String,
    variant: String,
    dataset: String,
    recall: f64,
    ndcg: f64,
}
imcat_obs::impl_to_json!(Row { model, variant, dataset, recall, ndcg });

/// A named configuration transformer.
type Variant = (&'static str, fn(ImcatConfig) -> ImcatConfig);

fn main() {
    let env = Env::from_env();
    let variants: Vec<Variant> = vec![
        ("full", |c| c),
        ("w/o UIT", ImcatConfig::without_uit),
        ("w/o UT", ImcatConfig::without_ut),
        ("w/o UI", ImcatConfig::without_ui),
        ("w/o NLT", ImcatConfig::without_nlt),
    ];
    let mut log = ExpLog::new("table3_ablation");
    let mut rows = Vec::new();
    logln!(log, "Table III: IMCA design ablations (R@20 / N@20, %)\n");
    for key in ["del", "cite", "yelp"] {
        let data = env.dataset(&preset_by_key(key).unwrap());
        logln!(log, "== {} ==", data.name);
        logln!(log, "{:<10} {:<9} {:>8} {:>8}", "model", "variant", "R@20", "N@20");
        for kind in [ModelKind::NImcat, ModelKind::LImcat] {
            for (vname, make) in &variants {
                let icfg = make(env.imcat_config());
                let (results, _) = run_trials(kind, &data, &env, &icfg);
                let recall = imcat_bench::mean_of(&results, |r| r.recall);
                let ndcg = imcat_bench::mean_of(&results, |r| r.ndcg);
                logln!(
                    log,
                    "{:<10} {:<9} {:>8.2} {:>8.2}",
                    kind.name(),
                    vname,
                    recall * 100.0,
                    ndcg * 100.0
                );
                rows.push(Row {
                    model: kind.name().to_string(),
                    variant: vname.to_string(),
                    dataset: data.name.clone(),
                    recall,
                    ndcg,
                });
            }
        }
        logln!(log);
    }
    let path = write_json("table3_ablation", &rows);
    logln!(log, "wrote {}", path.display());
}
