//! Shared deterministic Lloyd k-means.
//!
//! This is the *single* k-means implementation in the workspace: IMCAT's
//! Intent Representation Module seeds its learnable cluster centers with it
//! (`imcat_core::irm::kmeans_centers` delegates here), and the IVF index uses
//! it as its coarse quantizer over item embeddings. Keeping one routine means
//! the intent machinery and the retrieval machinery can never drift apart.
//!
//! ## Determinism
//!
//! The assignment step fans out over the `imcat-par` pool, but every point's
//! nearest-center computation is an independent, serially-accumulated
//! reduction written to that point's own slot, and the update step folds
//! points in ascending index order on one thread. Centroids are therefore
//! **bit-identical at any `IMCAT_THREADS` setting** — the same discipline as
//! every other parallel hot path in the workspace (asserted by
//! `crates/ann/tests/determinism.rs`).

use imcat_tensor::Tensor;
use rand::Rng;

/// Points per parallel assignment chunk. Chunk boundaries depend only on the
/// point count, never the thread count, so results are reproducible.
const ASSIGN_GRAIN: usize = 64;

/// Nearest-center index for every row of `data` (squared Euclidean distance,
/// ties to the lower center index). Fans out over the global pool; each
/// point's distance loop runs serially, so the result is thread-count
/// independent.
pub fn assign_nearest(data: &Tensor, centers: &Tensor) -> Vec<usize> {
    let t = data.rows();
    let k = centers.rows();
    assert!(k > 0, "need at least one center");
    assert_eq!(data.cols(), centers.cols(), "point/center dims differ");
    let mut assign = vec![0usize; t];
    imcat_par::global().parallel_chunks_mut(&mut assign, ASSIGN_GRAIN, |ci, slots| {
        for (off, slot) in slots.iter_mut().enumerate() {
            let i = ci * ASSIGN_GRAIN + off;
            let mut best = (0usize, f32::INFINITY);
            for j in 0..k {
                let d2: f32 =
                    data.row(i).iter().zip(centers.row(j)).map(|(a, b)| (a - b) * (a - b)).sum();
                if d2 < best.1 {
                    best = (j, d2);
                }
            }
            *slot = best.0;
        }
    });
    assign
}

/// Lloyd k-means over the rows of `data`: `iters` assign/update rounds from
/// a random distinct-row initialization drawn from `rng`.
///
/// The RNG draw sequence and all floating-point accumulation orders are
/// identical to the historical serial implementation in `imcat-core`, so
/// seeded runs (and their checkpoints) reproduce exactly.
#[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
pub fn kmeans_centers(data: &Tensor, k: usize, iters: usize, rng: &mut impl Rng) -> Tensor {
    let (t, d) = data.shape();
    assert!(t >= k, "need at least K points");
    // Init: distinct random rows.
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    while chosen.len() < k {
        let c = rng.gen_range(0..t);
        if !chosen.contains(&c) {
            chosen.push(c);
        }
    }
    let mut centers = Tensor::zeros(k, d);
    for (j, &c) in chosen.iter().enumerate() {
        centers.row_mut(j).copy_from_slice(data.row(c));
    }
    for _ in 0..iters {
        // Assign (parallel, bit-identical to serial).
        let assign = assign_nearest(data, &centers);
        // Update (serial: accumulation order over points is part of the
        // determinism contract).
        let mut sums = Tensor::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..t {
            let j = assign[i];
            counts[j] += 1;
            for (s, &x) in sums.row_mut(j).iter_mut().zip(data.row(i)) {
                *s += x;
            }
        }
        for j in 0..k {
            if counts[j] > 0 {
                let inv = 1.0 / counts[j] as f32;
                for (c, &s) in centers.row_mut(j).iter_mut().zip(sums.row(j)) {
                    *c = s * inv;
                }
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_tensor::normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The historical serial implementation (verbatim from `imcat-core`),
    /// kept as an oracle: the shared routine must reproduce it bit-for-bit.
    #[allow(clippy::needless_range_loop)]
    fn kmeans_serial_oracle(data: &Tensor, k: usize, iters: usize, rng: &mut StdRng) -> Tensor {
        let (t, d) = data.shape();
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let c = rng.gen_range(0..t);
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        let mut centers = Tensor::zeros(k, d);
        for (j, &c) in chosen.iter().enumerate() {
            centers.row_mut(j).copy_from_slice(data.row(c));
        }
        let mut assign = vec![0usize; t];
        for _ in 0..iters {
            for i in 0..t {
                let mut best = (0usize, f32::INFINITY);
                for j in 0..k {
                    let d2: f32 = data
                        .row(i)
                        .iter()
                        .zip(centers.row(j))
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    if d2 < best.1 {
                        best = (j, d2);
                    }
                }
                assign[i] = best.0;
            }
            let mut sums = Tensor::zeros(k, d);
            let mut counts = vec![0usize; k];
            for i in 0..t {
                let j = assign[i];
                counts[j] += 1;
                for (s, &x) in sums.row_mut(j).iter_mut().zip(data.row(i)) {
                    *s += x;
                }
            }
            for j in 0..k {
                if counts[j] > 0 {
                    let inv = 1.0 / counts[j] as f32;
                    for (c, &s) in centers.row_mut(j).iter_mut().zip(sums.row(j)) {
                        *c = s * inv;
                    }
                }
            }
        }
        centers
    }

    #[test]
    fn matches_serial_oracle_bitwise() {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let data = normal(57, 8, 1.0, &mut rng);
            let mut r1 = StdRng::seed_from_u64(seed ^ 0xabc);
            let mut r2 = StdRng::seed_from_u64(seed ^ 0xabc);
            let shared = kmeans_centers(&data, 5, 7, &mut r1);
            let oracle = kmeans_serial_oracle(&data, 5, 7, &mut r2);
            let a: Vec<u32> = shared.as_slice().iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = oracle.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "shared k-means diverged from the serial oracle (seed {seed})");
        }
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise = normal(10, 3, 0.05, &mut rng);
        let mut data = Tensor::zeros(10, 3);
        for i in 0..10 {
            let c = if i < 5 { 3.0 } else { -3.0 };
            data.row_mut(i)[0] = c + noise.row(i)[0];
            data.row_mut(i)[1] = noise.row(i)[1];
            data.row_mut(i)[2] = noise.row(i)[2];
        }
        let centers = kmeans_centers(&data, 2, 10, &mut rng);
        let mut xs: Vec<f32> = (0..2).map(|j| centers.get(j, 0)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        assert!(xs[0] < -2.0 && xs[1] > 2.0, "centers: {xs:?}");
        let assign = assign_nearest(&data, &centers);
        assert!(assign[..5].iter().all(|&a| a == assign[0]));
        assert!(assign[5..].iter().all(|&a| a == assign[5]));
        assert_ne!(assign[0], assign[5]);
    }
}
