//! # imcat-tensor
//!
//! Training substrate for the IMCAT reproduction: dense 2-D tensors, CSR
//! sparse matrices, a reverse-mode autodiff tape, Xavier initialization, and
//! an Adam optimizer with lazy sparse-row updates.
//!
//! The IMCAT paper (Wu et al., ICDE 2023) trains embedding models with custom
//! contrastive (InfoNCE), ranking (BPR) and clustering (Student-t KL) losses.
//! No mature Rust deep-learning framework covers that combination with sparse
//! embedding gradients, so this crate implements exactly the needed op set —
//! every operator's analytic gradient is validated against central finite
//! differences by property tests (see `tests/gradcheck.rs`).
//!
//! ## Quick tour
//!
//! ```
//! use imcat_tensor::{ParamStore, Tape, Tensor, Adam, AdamConfig};
//!
//! let mut store = ParamStore::new();
//! let emb = store.add("emb", Tensor::from_vec(4, 2, vec![0.5; 8]));
//! let mut adam = Adam::new(AdamConfig::default(), &store);
//!
//! let mut tape = Tape::new();
//! let rows = tape.gather(&store, emb, &[0, 2]);      // embedding lookup
//! let sq = tape.mul(rows, rows);
//! let loss = tape.mean_all(sq);                      // scalar loss
//! tape.backward(loss, &mut store);                   // sparse grads
//! adam.step(&mut store);                             // lazy Adam
//! ```

#![warn(missing_docs)]

mod init;
mod optim;
mod persist;
mod sparse;
mod store;
mod tape;
mod tensor;

pub use init::{normal, uniform, xavier_uniform};
pub use optim::{Adam, AdamConfig};
pub use persist::{load_params, load_params_from, restore_into, save_params, save_params_to};
pub use sparse::Csr;
pub use store::{Param, ParamId, ParamStore};
pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;

static OBS_MATMUL_COUNT: imcat_obs::Counter = imcat_obs::Counter::new("op.matmul.count");
static OBS_MATMUL_FLOPS: imcat_obs::Counter = imcat_obs::Counter::new("op.matmul.flops");
static OBS_SPMM_COUNT: imcat_obs::Counter = imcat_obs::Counter::new("op.spmm.count");
static OBS_SPMM_NNZ: imcat_obs::Counter = imcat_obs::Counter::new("op.spmm.nnz");
static OBS_SPMM_FLOPS: imcat_obs::Counter = imcat_obs::Counter::new("op.spmm.flops");

/// Telemetry helper for the dense matmul kernels: times the kernel under
/// `op.matmul` and counts multiply-add FLOPs. Inert unless
/// [`imcat_obs::enabled`]. Uses static [`imcat_obs::Counter`] handles so the
/// hot path skips the per-call name lookup.
#[inline]
pub(crate) fn obs_matmul(m: usize, k: usize, n: usize) -> imcat_obs::Span {
    let sp = imcat_obs::span("op.matmul");
    if sp.active() {
        OBS_MATMUL_COUNT.add(1);
        OBS_MATMUL_FLOPS.add(2 * (m * k * n) as u64);
    }
    sp
}

/// Telemetry helper for SpMM: times under `op.spmm`, counts invocations,
/// processed non-zeros, and multiply-add FLOPs.
#[inline]
pub(crate) fn obs_spmm(nnz: usize, dense_cols: usize) -> imcat_obs::Span {
    let sp = imcat_obs::span("op.spmm");
    if sp.active() {
        OBS_SPMM_COUNT.add(1);
        OBS_SPMM_NNZ.add(nnz as u64);
        OBS_SPMM_FLOPS.add(2 * (nnz * dense_cols) as u64);
    }
    sp
}
