//! Runtime-dispatched SIMD kernels for the IMCAT hot paths.
//!
//! Every matmul, batch scorer, and ANN probe in the workspace bottoms out in
//! the same handful of inner loops: f32 `dot`, `axpy`, a fused int8
//! [`dot_i8_scaled`], squared L2 distance, and an L1 norm. This crate owns
//! those loops and picks one of two backends once per process:
//!
//! - [`Backend::Scalar`] — the plain sequential loops the workspace has
//!   always used, preserved bit-for-bit. `acc += a*b` in order, no fusing,
//!   no reassociation. This is the oracle every other path is tested
//!   against, and what `IMCAT_SIMD=scalar` forces for bit-identity
//!   debugging.
//! - [`Backend::Avx2`] — eight-lane kernels. On x86_64 hosts with AVX2+FMA
//!   these run as `std::arch` intrinsics; everywhere else they run as the
//!   [`portable`] mirror: an 8-lane-unrolled `f32::mul_add` loop with the
//!   exact lane assignment and horizontal-reduction tree of the intrinsics,
//!   so the two implementations of the Avx2 backend are bit-identical to
//!   each other (`fmaf` is correctly rounded, i.e. the same one-rounding
//!   result as the hardware `vfmadd` instruction).
//!
//! The backend is resolved once (first use) from `IMCAT_SIMD=scalar|avx2`,
//! defaulting to Avx2 when the CPU supports it. Avx2 results differ from
//! Scalar only by floating-point summation order; callers that promise
//! bit-identity across *processes* (checkpoint resume, thread-count
//! invariance, sharded serving) are safe because the backend is a pure
//! function of environment + hardware, identical in every process on the
//! same host — and `IMCAT_SIMD=scalar` recovers the historical bits exactly.
//!
//! Each kernel has a `_with(backend, ...)` variant so tests and
//! `kernel_bench` can exercise both paths inside one process.

use std::sync::OnceLock;

/// Kernel implementation family, chosen once per process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Historical sequential loops, bit-identical to the pre-SIMD kernels.
    Scalar,
    /// Eight-lane FMA kernels (AVX2 intrinsics, or their portable mirror).
    Avx2,
}

impl Backend {
    /// Stable lower-case name (`"scalar"` / `"avx2"`), as accepted by the
    /// `IMCAT_SIMD` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// Whether the running CPU supports the AVX2+FMA intrinsic path.
///
/// When this is false the [`Backend::Avx2`] backend still works — it runs
/// the bit-identical [`portable`] mirror instead of intrinsics.
pub fn avx2_detected() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The process-wide backend: `IMCAT_SIMD` if set (panics on other values),
/// otherwise Avx2 when the CPU has AVX2+FMA and Scalar elsewhere.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| match std::env::var("IMCAT_SIMD") {
        Ok(v) if v == "scalar" => Backend::Scalar,
        Ok(v) if v == "avx2" => Backend::Avx2,
        Ok(v) => panic!("IMCAT_SIMD must be `scalar` or `avx2`, got `{v}`"),
        Err(_) => {
            if avx2_detected() {
                Backend::Avx2
            } else {
                Backend::Scalar
            }
        }
    })
}

/// `sum_i a[i] * b[i]` under the process backend.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(backend(), a, b)
}

/// [`dot`] under an explicit backend.
#[inline]
pub fn dot_with(bk: Backend, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match bk {
        Backend::Scalar => scalar::dot(a, b),
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            if avx2_detected() {
                // SAFETY: AVX2+FMA presence was just checked.
                return unsafe { avx2::dot(a, b) };
            }
            portable::dot(a, b)
        }
    }
}

/// `y[i] += s * x[i]` under the process backend.
#[inline]
pub fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
    axpy_with(backend(), s, x, y)
}

/// [`axpy`] under an explicit backend.
#[inline]
pub fn axpy_with(bk: Backend, s: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match bk {
        Backend::Scalar => scalar::axpy(s, x, y),
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            if avx2_detected() {
                // SAFETY: AVX2+FMA presence was just checked.
                unsafe { avx2::axpy(s, x, y) };
                return;
            }
            portable::axpy(s, x, y)
        }
    }
}

/// Fused int8 dot: `scale * sum_i codes[i] as f32 * q[i]` under the process
/// backend. This is the quantized ANN scan kernel: codes are per-item int8
/// quantized embeddings, `scale` the item's dequantization factor.
#[inline]
pub fn dot_i8_scaled(codes: &[i8], q: &[f32], scale: f32) -> f32 {
    dot_i8_scaled_with(backend(), codes, q, scale)
}

/// [`dot_i8_scaled`] under an explicit backend.
#[inline]
pub fn dot_i8_scaled_with(bk: Backend, codes: &[i8], q: &[f32], scale: f32) -> f32 {
    assert_eq!(codes.len(), q.len(), "dot_i8_scaled: length mismatch");
    match bk {
        Backend::Scalar => scalar::dot_i8_scaled(codes, q, scale),
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            if avx2_detected() {
                // SAFETY: AVX2+FMA presence was just checked.
                return unsafe { avx2::dot_i8_scaled(codes, q, scale) };
            }
            portable::dot_i8_scaled(codes, q, scale)
        }
    }
}

/// `sum_i (a[i] - b[i])^2` under the process backend.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    l2_sq_with(backend(), a, b)
}

/// [`l2_sq`] under an explicit backend.
#[inline]
pub fn l2_sq_with(bk: Backend, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_sq: length mismatch");
    match bk {
        Backend::Scalar => scalar::l2_sq(a, b),
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            if avx2_detected() {
                // SAFETY: AVX2+FMA presence was just checked.
                return unsafe { avx2::l2_sq(a, b) };
            }
            portable::l2_sq(a, b)
        }
    }
}

/// `sum_i |x[i]|` under the process backend (the query-side factor of the
/// quantized-score error bound).
#[inline]
pub fn l1_norm(x: &[f32]) -> f32 {
    l1_norm_with(backend(), x)
}

/// [`l1_norm`] under an explicit backend.
#[inline]
pub fn l1_norm_with(bk: Backend, x: &[f32]) -> f32 {
    match bk {
        Backend::Scalar => scalar::l1_norm(x),
        Backend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            if avx2_detected() {
                // SAFETY: AVX2+FMA presence was just checked.
                return unsafe { avx2::l1_norm(x) };
            }
            portable::l1_norm(x)
        }
    }
}

/// The historical sequential kernels, preserved bit-for-bit. These are the
/// oracle for every other path and the `IMCAT_SIMD=scalar` escape hatch.
pub mod scalar {
    /// Sequential `acc += a*b` dot, in index order, no fusing.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for i in 0..a.len() {
            acc += a[i] * b[i];
        }
        acc
    }

    /// Sequential `y[i] += s * x[i]`, no fusing.
    pub fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
        for i in 0..x.len() {
            y[i] += s * x[i];
        }
    }

    /// Sequential quantized scan: widen each code, `acc += c * q`, scale at
    /// the end — exactly the loop `imcat-ann` shipped with.
    pub fn dot_i8_scaled(codes: &[i8], q: &[f32], scale: f32) -> f32 {
        let mut acc = 0.0f32;
        for i in 0..codes.len() {
            acc += codes[i] as f32 * q[i];
        }
        scale * acc
    }

    /// Sequential squared L2 distance.
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc += d * d;
        }
        acc
    }

    /// Sequential `acc += |x|`.
    pub fn l1_norm(x: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for &v in x {
            acc += v.abs();
        }
        acc
    }
}

/// Portable mirror of the AVX2 kernels: 8-lane-unrolled `f32::mul_add`
/// bodies with the same lane assignment (lane `l` accumulates elements `l`,
/// `l+8`, …) and the same horizontal-sum tree as the intrinsic reduction
/// (`((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`), followed by the same scalar
/// `mul_add` tail. Because `f32::mul_add` is correctly rounded — the same
/// single-rounding result the hardware `vfmadd` produces — this module is
/// bit-identical to [`avx2`](self) on every input, which the test suite
/// asserts on AVX2 hosts.
pub mod portable {
    /// Reduction tree matching the SSE `extractf128 / movehl / shuffle`
    /// horizontal sum used by the intrinsic kernels.
    #[inline]
    pub fn hsum8(l: [f32; 8]) -> f32 {
        ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
    }

    /// Eight-lane fused dot.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let mut lanes = [0.0f32; 8];
        for c in 0..chunks {
            let base = c * 8;
            for (l, lane) in lanes.iter_mut().enumerate() {
                *lane = a[base + l].mul_add(b[base + l], *lane);
            }
        }
        let mut total = hsum8(lanes);
        for i in chunks * 8..n {
            total = a[i].mul_add(b[i], total);
        }
        total
    }

    /// Elementwise fused `y[i] = fma(s, x[i], y[i])`.
    pub fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
        for i in 0..x.len() {
            y[i] = s.mul_add(x[i], y[i]);
        }
    }

    /// Eight-lane fused quantized scan.
    pub fn dot_i8_scaled(codes: &[i8], q: &[f32], scale: f32) -> f32 {
        let n = codes.len();
        let chunks = n / 8;
        let mut lanes = [0.0f32; 8];
        for c in 0..chunks {
            let base = c * 8;
            for (l, lane) in lanes.iter_mut().enumerate() {
                *lane = (codes[base + l] as f32).mul_add(q[base + l], *lane);
            }
        }
        let mut total = hsum8(lanes);
        for i in chunks * 8..n {
            total = (codes[i] as f32).mul_add(q[i], total);
        }
        scale * total
    }

    /// Eight-lane fused squared L2 distance.
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let mut lanes = [0.0f32; 8];
        for c in 0..chunks {
            let base = c * 8;
            for (l, lane) in lanes.iter_mut().enumerate() {
                let d = a[base + l] - b[base + l];
                *lane = d.mul_add(d, *lane);
            }
        }
        let mut total = hsum8(lanes);
        for i in chunks * 8..n {
            let d = a[i] - b[i];
            total = d.mul_add(d, total);
        }
        total
    }

    /// Eight-lane `|x|` accumulation (plain adds: the intrinsic path uses
    /// `andnot` + `add`, not FMA, so the mirror adds too).
    pub fn l1_norm(x: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / 8;
        let mut lanes = [0.0f32; 8];
        for c in 0..chunks {
            let base = c * 8;
            for (l, lane) in lanes.iter_mut().enumerate() {
                *lane += x[base + l].abs();
            }
        }
        let mut total = hsum8(lanes);
        for &v in &x[chunks * 8..n] {
            total += v.abs();
        }
        total
    }
}

/// AVX2/FMA intrinsic kernels. Callers must guarantee the CPU supports
/// `avx2` and `fma` (the public `_with` wrappers check [`avx2_detected`]).
/// Bit-identical to [`portable`] by construction; asserted by tests.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use std::arch::x86_64::*;

    /// Horizontal sum matching [`super::portable::hsum8`].
    ///
    /// # Safety
    /// Requires AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum256(v: __m256) -> f32 {
        // [l0+l4, l1+l5, l2+l6, l3+l7]
        let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
        // lane0 = (l0+l4)+(l2+l6), lane1 = (l1+l5)+(l3+l7)
        let s2 = _mm_add_ps(s, _mm_movehl_ps(s, s));
        _mm_cvtss_f32(_mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0b01)))
    }

    /// Fused 8-lane dot.
    ///
    /// # Safety
    /// Requires AVX2+FMA support; slices must be equal length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let av = _mm256_loadu_ps(ap.add(c * 8));
            let bv = _mm256_loadu_ps(bp.add(c * 8));
            acc = _mm256_fmadd_ps(av, bv, acc);
        }
        let mut total = hsum256(acc);
        for i in chunks * 8..n {
            total = a[i].mul_add(b[i], total);
        }
        total
    }

    /// Fused 8-lane `y += s * x`.
    ///
    /// # Safety
    /// Requires AVX2+FMA support; slices must be equal length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let chunks = n / 8;
        let sv = _mm256_set1_ps(s);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for c in 0..chunks {
            let xv = _mm256_loadu_ps(xp.add(c * 8));
            let yv = _mm256_loadu_ps(yp.add(c * 8));
            _mm256_storeu_ps(yp.add(c * 8), _mm256_fmadd_ps(sv, xv, yv));
        }
        for i in chunks * 8..n {
            y[i] = s.mul_add(x[i], y[i]);
        }
    }

    /// Fused 8-lane int8 scan: widen 8 codes to f32, FMA against the query.
    ///
    /// # Safety
    /// Requires AVX2+FMA support; slices must be equal length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_i8_scaled(codes: &[i8], q: &[f32], scale: f32) -> f32 {
        let n = codes.len();
        let chunks = n / 8;
        let cp = codes.as_ptr();
        let qp = q.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let raw = _mm_loadl_epi64(cp.add(c * 8) as *const __m128i);
            let cv = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
            let qv = _mm256_loadu_ps(qp.add(c * 8));
            acc = _mm256_fmadd_ps(cv, qv, acc);
        }
        let mut total = hsum256(acc);
        for i in chunks * 8..n {
            total = (codes[i] as f32).mul_add(q[i], total);
        }
        scale * total
    }

    /// Fused 8-lane squared L2 distance.
    ///
    /// # Safety
    /// Requires AVX2+FMA support; slices must be equal length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let d = _mm256_sub_ps(_mm256_loadu_ps(ap.add(c * 8)), _mm256_loadu_ps(bp.add(c * 8)));
            acc = _mm256_fmadd_ps(d, d, acc);
        }
        let mut total = hsum256(acc);
        for i in chunks * 8..n {
            let d = a[i] - b[i];
            total = d.mul_add(d, total);
        }
        total
    }

    /// 8-lane `|x|` accumulation (sign-mask `andnot`, plain adds).
    ///
    /// # Safety
    /// Requires AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn l1_norm(x: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / 8;
        let xp = x.as_ptr();
        let sign = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign, _mm256_loadu_ps(xp.add(c * 8))));
        }
        let mut total = hsum256(acc);
        for &v in &x[chunks * 8..n] {
            total += v.abs();
        }
        total
    }
}
