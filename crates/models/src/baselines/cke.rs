//! CKE baseline (Zhang et al. 2016): collaborative filtering regularized by
//! TransR structural knowledge embedding.
//!
//! In the tag-enhanced setting (paper §II-B) tags are entities connected to
//! items by a single "has-tag" relation. The TransR objective projects items
//! and tags into the relation space and asks `proj(v) + r ≈ proj(t)` for
//! observed assignments, ranked against corrupted tags — this regularization
//! of the shared item embedding is CKE's defining mechanism.

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{xavier_uniform, ParamId, Tape, Tensor, Var};
use rand::rngs::StdRng;

use crate::common::{bpr_loss, EmbeddingCore, EpochStats, RecModel, TrainConfig};

/// Collaborative knowledge-base embedding.
pub struct Cke {
    core: EmbeddingCore,
    cfg: TrainConfig,
    ui_sampler: BprSampler,
    it_sampler: BprSampler,
    tag_emb: ParamId,
    rel_emb: ParamId,
    rel_proj: ParamId,
    /// Weight of the TransR loss.
    pub kg_weight: f32,
}

impl Cke {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let mut core = EmbeddingCore::new(data.n_users(), data.n_items(), &cfg, rng);
        let d = cfg.dim;
        let tag_emb = core.store.add("tag_emb", xavier_uniform(data.n_tags(), d, rng));
        let rel_emb = core.store.add("rel_emb", xavier_uniform(1, d, rng));
        let rel_proj = core.store.add("rel_proj", xavier_uniform(d, d, rng));
        core.rebuild_optimizer(&cfg);
        Self {
            core,
            cfg,
            ui_sampler: BprSampler::for_user_items(data),
            it_sampler: BprSampler::for_item_tags(data),
            tag_emb,
            rel_emb,
            rel_proj,
            kg_weight: 0.5,
        }
    }

    /// TransR energy `||W v + r - W t||²` per row, `[B, 1]`.
    fn transr_energy(&self, tape: &mut Tape, items: Var, tags: Var) -> Var {
        let w = tape.leaf(&self.core.store, self.rel_proj);
        let r = tape.leaf(&self.core.store, self.rel_emb);
        let pv = tape.matmul(items, w);
        let pt = tape.matmul(tags, w);
        let diff = tape.sub(pv, pt);
        let shifted = tape.add_row_vec(diff, r);
        let sq = tape.mul(shifted, shifted);
        tape.sum_rows(sq)
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        // CF part.
        let batch = self.ui_sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let u = tape.gather(&self.core.store, self.core.user_emb, &batch.anchors);
        let vp = tape.gather(&self.core.store, self.core.item_emb, &batch.positives);
        let vn = tape.gather(&self.core.store, self.core.item_emb, &batch.negatives);
        let sp = tape.rowwise_dot(u, vp);
        let sn = tape.rowwise_dot(u, vn);
        let cf = bpr_loss(&mut tape, sp, sn);
        // TransR part on item-tag triples.
        let kg = self.it_sampler.sample(self.cfg.batch_size, rng);
        let items = tape.gather(&self.core.store, self.core.item_emb, &kg.anchors);
        let tp = tape.gather(&self.core.store, self.tag_emb, &kg.positives);
        let tn = tape.gather(&self.core.store, self.tag_emb, &kg.negatives);
        let e_pos = self.transr_energy(&mut tape, items, tp);
        let e_neg = self.transr_energy(&mut tape, items, tn);
        // Lower energy for observed triples: BPR on (-e_pos) vs (-e_neg).
        let kg_loss = bpr_loss(&mut tape, e_neg, e_pos);
        let kg_loss = tape.scale(kg_loss, self.kg_weight);
        let loss = tape.add(cf, kg_loss);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.core.store);
        self.core.adam.step(&mut self.core.store);
        value
    }
}

impl RecModel for Cke {
    fn name(&self) -> String {
        "CKE".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.ui_sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        Some((
            self.core.store.value(self.core.user_emb).clone(),
            self.core.store.value(self.core.item_emb).clone(),
        ))
    }

    fn num_params(&self) -> usize {
        self.core.store.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn loss_decreases() {
        let data = tiny_split(91);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Cke::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..20 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(92);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Cke::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 100);
    }

    #[test]
    fn transr_prefers_observed_triples_after_training() {
        let data = tiny_split(93);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Cke::new(&data, TrainConfig::default(), &mut rng);
        for _ in 0..40 {
            model.train_epoch(&mut rng);
        }
        // Average TransR energy of observed vs corrupted triples.
        let kg = model.it_sampler.sample(256, &mut rng);
        let mut tape = Tape::new();
        let items = tape.gather(&model.core.store, model.core.item_emb, &kg.anchors);
        let tp = tape.gather(&model.core.store, model.tag_emb, &kg.positives);
        let tn = tape.gather(&model.core.store, model.tag_emb, &kg.negatives);
        let e_pos = model.transr_energy(&mut tape, items, tp);
        let e_neg = model.transr_energy(&mut tape, items, tn);
        let mean_pos = tape.value(e_pos).sum() / 256.0;
        let mean_neg = tape.value(e_neg).sum() / 256.0;
        assert!(
            mean_pos < mean_neg,
            "observed triples should have lower energy: {mean_pos} vs {mean_neg}"
        );
    }
}
