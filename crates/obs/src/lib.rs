//! # imcat-obs — live concurrent telemetry for the IMCAT stack
//!
//! A zero-dependency observability layer: counters, gauges, fixed-bucket
//! timing histograms with sliding-window percentiles, scoped span timers,
//! per-request traces, structured events, a JSONL sink, a Prometheus-style
//! `/metrics` endpoint, and an end-of-run summary table.
//!
//! ## Design
//!
//! * **Global sharded registry.** Each recording thread owns a shard of
//!   atomic cells ([`registry`]); `snapshot()` merges every shard, so
//!   metrics recorded on `imcat-par` workers or concurrent serve threads are
//!   never lost. Cells are single-writer, so the hot path is a relaxed
//!   load+store — no locks, no read-modify-write (see [`sketch`]).
//! * **Off by default.** Every recording call first checks one process-wide
//!   atomic flag; when disabled the instrumented fast paths stay
//!   branch-predictable and allocation-free. Enable explicitly with
//!   [`set_enabled`] or from the environment with [`init_from_env`]
//!   (`IMCAT_OBS=1`, `IMCAT_OBS_OUT`, `IMCAT_OBS_ADDR`, or
//!   `IMCAT_OBS_FLUSH_SECS` set).
//! * **Static keys.** Metric names are `&'static str` so the hot path never
//!   allocates; the hottest call sites can additionally pre-intern a name
//!   via the [`Counter`]/[`Hist`] handles. Dynamic payloads belong in
//!   [`emit`]ted events.
//! * **Live outputs.** [`init_from_env`] can start an HTTP listener
//!   ([`http`]) serving `/metrics` (Prometheus text) and `/trace/<id>`
//!   (request traces, see [`trace`]), plus an interval flusher appending
//!   JSONL snapshots while a run is in flight.
//!
//! ## Test isolation
//!
//! The registry is process-global, so tests that assert on telemetry must
//! hold the [`exclusive`] guard; it serialises such tests and resets state
//! on entry and exit.
//!
//! ## Event schema (JSONL)
//!
//! [`write_jsonl`] writes one JSON object per line:
//!
//! * events: `{"t": seconds_since_process_start, "kind": "...", ...fields}`
//! * counters: `{"kind": "counter", "name": "...", "value": n}`
//! * gauges: `{"kind": "gauge", "name": "...", "value": x}`
//! * histograms: `{"kind": "hist", "name": "...", "count": n, "sum": s,
//!   "mean": m, "min": lo, "max": hi, "p50": q, "p99": q,
//!   "window_count": n, "window_p50": q, "window_p99": q}`
//! * interval flushes (the live sink): the same histogram/counter payloads
//!   nested under `{"kind": "flush", "t": ...}` lines.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub mod expo;
pub mod http;
mod json;
pub mod knobs;
pub mod registry;
pub mod sketch;
pub mod trace;

pub use json::{Json, ToJson};
pub use knobs::{knob_f32, knob_f64, knob_flag, knob_str, knob_u64, knob_usize};
pub use registry::{enabled, register_thread, set_enabled};

/// Histogram bucket upper bounds in seconds: `1µs · 2^i`. Values above the
/// last bound land in an overflow bucket.
pub const BUCKET_BOUNDS: [f64; 26] = {
    let mut b = [0.0; 26];
    let mut i = 0;
    while i < 26 {
        b[i] = 1.0e-6 * (1u64 << i) as f64;
        i += 1;
    }
    b
};

/// Fixed-bucket histogram of seconds.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    /// Bucket counts; `buckets[i]` counts values `<= BUCKET_BOUNDS[i]`, the
    /// final slot is overflow.
    pub buckets: [u64; BUCKET_BOUNDS.len() + 1],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.buckets[sketch::bucket_index(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Folds `other` into `self` (used when merging registry shards).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate, or `None` when the histogram is
    /// empty. The estimate is the upper bound of the bucket containing the
    /// `q`-quantile observation, clamped to the observed `[min, max]` range —
    /// so a histogram holding a single value (or a single occupied bucket)
    /// reports that value exactly instead of an interpolated bucket bound.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = if i < BUCKET_BOUNDS.len() { BUCKET_BOUNDS[i] } else { self.max };
                return Some(bound.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// [`Histogram::try_quantile`] with a documented `0.0` sentinel for the
    /// empty histogram (keeps downstream reports NaN-free).
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }
}

/// One structured event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Seconds since process start.
    pub t: f64,
    /// Event kind, e.g. `"epoch"` or `"loss_terms"`.
    pub kind: String,
    /// Event payload.
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// Renders the event as one JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("t".to_string(), Json::Num(self.t)),
            ("kind".to_string(), Json::Str(self.kind.clone())),
        ];
        fields.extend(self.fields.iter().cloned());
        Json::Obj(fields)
    }

    /// Parses an event from the JSON object written by [`Event::to_json`].
    pub fn from_json(v: &Json) -> Option<Event> {
        let t = v.get("t")?.as_f64()?;
        let kind = v.get("kind")?.as_str()?.to_string();
        let fields = match v {
            Json::Obj(fields) => {
                fields.iter().filter(|(k, _)| k != "t" && k != "kind").cloned().collect()
            }
            _ => return None,
        };
        Some(Event { t, kind, fields })
    }
}

fn epoch_instant() -> Instant {
    use std::sync::OnceLock;
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Seconds since the first telemetry call of the process.
pub fn now_seconds() -> f64 {
    epoch_instant().elapsed().as_secs_f64()
}

/// Enables recording when `IMCAT_OBS` is truthy or any of `IMCAT_OBS_OUT`,
/// `IMCAT_OBS_ADDR`, `IMCAT_OBS_FLUSH_SECS` is set; returns the resulting
/// enabled state. Starts the live HTTP endpoint and the interval flusher
/// when their knobs are present (failures are reported, never fatal).
pub fn init_from_env() -> bool {
    let addr = std::env::var("IMCAT_OBS_ADDR").ok();
    let flush_secs = std::env::var("IMCAT_OBS_FLUSH_SECS").ok().and_then(|v| v.parse::<f64>().ok());
    let on =
        matches!(std::env::var("IMCAT_OBS").ok().as_deref(), Some("1") | Some("true") | Some("on"))
            || out_path().is_some()
            || addr.is_some()
            || flush_secs.is_some();
    if on {
        set_enabled(true);
        if let Some(addr) = addr {
            if let Err(e) = http::start(&addr) {
                eprintln!("imcat-obs: cannot serve /metrics on {addr}: {e}");
            }
        }
        if let Some(secs) = flush_secs {
            start_flusher(secs);
        }
    }
    on
}

/// The JSONL sink path from `IMCAT_OBS_OUT`, if set.
pub fn out_path() -> Option<PathBuf> {
    std::env::var_os("IMCAT_OBS_OUT").map(PathBuf::from)
}

/// Clears all recorded metrics, events, and stored traces across every
/// thread's shard (the enabled flag is preserved).
pub fn reset() {
    registry::reset();
    trace::reset();
}

/// Adds `v` to a named counter.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if enabled() {
        registry::counter_add(name, v);
    }
}

/// Sets a named gauge.
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    if enabled() {
        registry::gauge_set(name, v);
    }
}

/// Records a duration (seconds) into a named histogram.
#[inline]
pub fn observe(name: &'static str, seconds: f64) {
    if enabled() {
        registry::observe(name, seconds);
    }
}

/// Appends a structured event.
pub fn emit(kind: &str, fields: Vec<(&str, Json)>) {
    if enabled() {
        registry::emit(Event {
            t: now_seconds(),
            kind: kind.to_string(),
            fields: fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
    }
}

/// Pre-interned counter handle for hot call sites. Declare as a `static`;
/// the name is interned on first use, after which [`Counter::add`] skips the
/// name hash entirely (one id-indexed slot load plus the cell bump).
pub struct Counter {
    name: &'static str,
    id: std::sync::OnceLock<u32>,
}

impl Counter {
    /// A handle for counter `name` (usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Counter { name, id: std::sync::OnceLock::new() }
    }

    /// Adds `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        if enabled() {
            let id = *self.id.get_or_init(|| registry::intern(self.name));
            registry::counter_add_id(id, self.name, v);
        }
    }
}

/// Pre-interned histogram handle for hot call sites; see [`Counter`].
pub struct Hist {
    name: &'static str,
    id: std::sync::OnceLock<u32>,
}

impl Hist {
    /// A handle for histogram `name` (usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Hist { name, id: std::sync::OnceLock::new() }
    }

    /// Records a duration (seconds).
    #[inline]
    pub fn observe(&self, seconds: f64) {
        if enabled() {
            let id = *self.id.get_or_init(|| registry::intern(self.name));
            registry::observe_id(id, self.name, seconds);
        }
    }
}

/// Serialises telemetry-asserting tests against the process-global registry:
/// takes the test lock, resets all state, and sets the enabled flag to `on`;
/// dropping the guard disables recording and resets again.
pub fn exclusive(on: bool) -> ObsGuard {
    let guard = registry::lock_test();
    reset();
    set_enabled(on);
    ObsGuard { _lock: guard }
}

/// Guard returned by [`exclusive`].
pub struct ObsGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        set_enabled(false);
        reset();
    }
}

/// Scoped timer: on drop, records elapsed seconds into the histogram named
/// at construction and attaches the span to the in-flight request trace (if
/// one is installed on this thread). Inert (and allocation-free) when
/// recording is disabled. Dropping during a panic unwind still records the
/// duration — the destructor does no allocation-dependent work that could
/// double-panic — so phase breakdowns stay consistent across caught panics.
pub struct Span {
    start: Option<(&'static str, Instant, f64)>,
}

impl Span {
    /// Whether this span is live (recording was enabled at creation).
    #[inline]
    pub fn active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, t0, start_t)) = self.start.take() {
            let dur = t0.elapsed().as_secs_f64();
            observe(name, dur);
            trace::record_span(name, start_t, dur);
        }
    }
}

/// Opens a [`Span`] recording into histogram `name`.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span { start: if enabled() { Some((name, Instant::now(), now_seconds())) } else { None } }
}

/// Immutable merged copy of every shard's state, used for deltas and
/// reporting.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Cumulative histograms by name.
    pub hists: Vec<(String, Histogram)>,
    /// Sliding-window histograms by name (last `IMCAT_OBS_WINDOW_SECS`
    /// seconds; absent when nothing landed in the window).
    pub windows: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Sliding-window histogram by name.
    pub fn window(&self, name: &str) -> Option<&Histogram> {
        self.windows.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Total seconds recorded into a histogram (0 when absent).
    pub fn hist_sum(&self, name: &str) -> f64 {
        self.hist(name).map_or(0.0, |h| h.sum)
    }

    /// Number of recordings in a histogram (0 when absent).
    pub fn hist_count(&self, name: &str) -> u64 {
        self.hist(name).map_or(0, |h| h.count)
    }

    /// Sum of `hist_sum` over every histogram whose name starts with
    /// `prefix` (e.g. `"phase."`).
    pub fn prefixed_time(&self, prefix: &str) -> f64 {
        self.hists.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, h)| h.sum).sum()
    }
}

/// Snapshots the merged state of every thread's shard.
pub fn snapshot() -> Snapshot {
    registry::snapshot()
}

/// Clones the buffered events.
pub fn events() -> Vec<Event> {
    registry::events()
}

fn hist_json_fields(name: &str, h: &Histogram, window: Option<&Histogram>) -> Json {
    let w = window.cloned().unwrap_or_default();
    Json::obj(vec![
        ("kind", Json::Str("hist".into())),
        ("name", Json::Str(name.to_string())),
        ("count", Json::Num(h.count as f64)),
        ("sum", Json::Num(h.sum)),
        ("mean", Json::Num(h.mean())),
        ("min", Json::Num(if h.count == 0 { 0.0 } else { h.min })),
        ("max", Json::Num(if h.count == 0 { 0.0 } else { h.max })),
        ("p50", Json::Num(h.quantile(0.5))),
        ("p99", Json::Num(h.quantile(0.99))),
        ("window_count", Json::Num(w.count as f64)),
        ("window_p50", Json::Num(w.quantile(0.5))),
        ("window_p99", Json::Num(w.quantile(0.99))),
    ])
}

fn sink_lines(snap: &Snapshot, events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().render());
        out.push('\n');
    }
    for (name, v) in &snap.counters {
        let line = Json::obj(vec![
            ("kind", Json::Str("counter".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(*v as f64)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        let line = Json::obj(vec![
            ("kind", Json::Str("gauge".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(*v)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, h) in &snap.hists {
        out.push_str(&hist_json_fields(name, h, snap.window(name)).render());
        out.push('\n');
    }
    out
}

/// Writes buffered events plus final counter/gauge/histogram summaries as
/// JSONL to `path`, creating parent directories as needed.
///
/// The write is atomic (temp file + fsync + rename), so a crash mid-write —
/// or a reader racing the writer — never observes a half-written sink: the
/// path holds either the previous complete file or the new one.
pub fn write_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(sink_lines(&snapshot(), &events()).as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// One compact flush line for the live JSONL sink: counters and histogram
/// window stats nested under a `"flush"` record.
fn flush_line() -> String {
    let snap = snapshot();
    let counters =
        Json::Obj(snap.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect());
    let hists = Json::Obj(
        snap.hists
            .iter()
            .map(|(k, h)| {
                let w = snap.window(k).cloned().unwrap_or_default();
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::Num(h.count as f64)),
                        ("p99", Json::Num(h.quantile(0.99))),
                        ("window_count", Json::Num(w.count as f64)),
                        ("window_p50", Json::Num(w.quantile(0.5))),
                        ("window_p99", Json::Num(w.quantile(0.99))),
                    ]),
                )
            })
            .collect(),
    );
    let (stored, total, slow) = trace::stats();
    Json::obj(vec![
        ("kind", Json::Str("flush".into())),
        ("t", Json::Num(now_seconds())),
        ("counters", counters),
        ("hists", hists),
        ("traces_stored", Json::Num(stored as f64)),
        ("traces_total", Json::Num(total as f64)),
        ("traces_slow", Json::Num(slow as f64)),
    ])
    .render()
}

/// The append path for interval flushes: `IMCAT_OBS_FLUSH_PATH`, else
/// `IMCAT_OBS_OUT` + `.live`, else `target/obs.live.jsonl`.
pub fn flush_path() -> PathBuf {
    if let Some(p) = std::env::var_os("IMCAT_OBS_FLUSH_PATH") {
        return PathBuf::from(p);
    }
    match out_path() {
        Some(p) => {
            let mut s = p.into_os_string();
            s.push(".live");
            PathBuf::from(s)
        }
        None => PathBuf::from("target/obs.live.jsonl"),
    }
}

fn start_flusher(interval_secs: f64) {
    use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
    static STARTED: AtomicBool = AtomicBool::new(false);
    if interval_secs <= 0.0 || STARTED.swap(true, Relaxed) {
        return;
    }
    let path = flush_path();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::thread::Builder::new()
        .name("imcat-obs-flush".into())
        .spawn(move || {
            use std::io::Write as _;
            loop {
                std::thread::sleep(std::time::Duration::from_secs_f64(interval_secs));
                if !enabled() {
                    continue;
                }
                let line = flush_line();
                if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
                {
                    let _ = writeln!(f, "{line}");
                }
            }
        })
        .map(|_| ())
        .unwrap_or_else(|e| eprintln!("imcat-obs: cannot start flusher: {e}"));
}

/// Human-readable summary of every recorded metric.
pub fn summary() -> String {
    let snap = snapshot();
    let mut out = String::new();
    if !snap.hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "timer", "count", "total(s)", "mean(s)", "p50(s)", "p99(s)"
        );
        for (name, h) in &snap.hists {
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>12.6} {:>12.9} {:>12.9} {:>12.9}",
                name,
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
    }
    if !snap.windows.is_empty() {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>12} {:>12} {:>12}",
            format!("window({}s)", sketch::window_seconds()),
            "count",
            "p50(s)",
            "p95(s)",
            "p99(s)"
        );
        for (name, w) in &snap.windows {
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>12.9} {:>12.9} {:>12.9}",
                name,
                w.count,
                w.quantile(0.5),
                w.quantile(0.95),
                w.quantile(0.99),
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "{:<28} {:>16}", "counter", "value");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{name:<28} {v:>16}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "{:<28} {:>16}", "gauge", "value");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{name:<28} {v:>16.6}");
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

/// End-of-run hook: when `IMCAT_OBS_OUT` is set, writes the JSONL sink there
/// and returns the path written.
pub fn finalize() -> Option<PathBuf> {
    let path = out_path()?;
    match write_jsonl(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("imcat-obs: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_clean<T>(f: impl FnOnce() -> T) -> T {
        let _guard = exclusive(true);
        f()
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = exclusive(false);
        counter_add("x", 3);
        observe("h", 0.5);
        emit("e", vec![]);
        {
            let s = span("sp");
            assert!(!s.active());
        }
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(events().is_empty());
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::default();
        // Exactly on the first bound (1µs) -> bucket 0; just above -> bucket 1.
        h.record(1.0e-6);
        h.record(1.000001e-6 * 1.5);
        // Far beyond the last bound -> overflow bucket.
        h.record(1.0e9);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[BUCKET_BOUNDS.len()], 1);
        assert_eq!(h.count, 3);
        assert!((h.max - 1.0e9).abs() < 1.0);
        // Quantiles resolve to bucket upper bounds (max for overflow).
        assert_eq!(h.quantile(0.01), BUCKET_BOUNDS[0]);
        assert_eq!(h.quantile(1.0), h.max);
        // Bounds double each bucket.
        for i in 1..BUCKET_BOUNDS.len() {
            assert!((BUCKET_BOUNDS[i] / BUCKET_BOUNDS[i - 1] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: documented sentinel, no NaN.
        let h = Histogram::default();
        assert_eq!(h.try_quantile(0.5), None);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        // Single value: every quantile is that value exactly, not the bucket
        // upper bound (0.0003 lands in the (256µs, 512µs] bucket).
        let mut h = Histogram::default();
        h.record(3.0e-4);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.0e-4);
        }
        // Single occupied bucket: estimates clamp to the observed range.
        let mut h = Histogram::default();
        h.record(2.6e-4);
        h.record(3.0e-4);
        for q in [0.5, 0.99] {
            let v = h.quantile(q);
            assert!((2.6e-4..=3.0e-4).contains(&v), "q{q} = {v}");
        }
    }

    #[test]
    fn histogram_merge_combines_everything() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [1.0e-6, 5.0e-4, 0.25] {
            a.record(v);
            all.record(v);
        }
        for v in [9.0e-6, 40.0] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count, all.count);
        assert_eq!(a.buckets, all.buckets);
        assert_eq!(a.min, all.min);
        assert_eq!(a.max, all.max);
        assert!((a.sum - all.sum).abs() < 1e-12);
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a.count, before.count);
        assert_eq!(a.min, before.min);
    }

    #[test]
    fn counters_aggregate_across_spans() {
        with_clean(|| {
            for _ in 0..4 {
                let _s = span("op.test.time");
                counter_add("op.test.flops", 10);
            }
            let snap = snapshot();
            assert_eq!(snap.counter("op.test.flops"), 40);
            assert_eq!(snap.hist_count("op.test.time"), 4);
            assert!(snap.hist_sum("op.test.time") >= 0.0);
            assert_eq!(snap.prefixed_time("op."), snap.hist_sum("op.test.time"));
            // The sliding window covers "now", so fresh records appear there.
            assert_eq!(snap.window("op.test.time").map(|w| w.count), Some(4));
        });
    }

    #[test]
    fn static_handles_hit_the_same_cells_as_names() {
        static REQS: Counter = Counter::new("handle.test.requests");
        static LAT: Hist = Hist::new("handle.test.seconds");
        with_clean(|| {
            REQS.add(2);
            REQS.add(3);
            counter_add("handle.test.requests", 1);
            LAT.observe(0.001);
            observe("handle.test.seconds", 0.002);
            let snap = snapshot();
            assert_eq!(snap.counter("handle.test.requests"), 6);
            assert_eq!(snap.hist_count("handle.test.seconds"), 2);
        });
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        with_clean(|| {
            emit("epoch", vec![("epoch", Json::Num(1.0)), ("loss", Json::Num(0.25))]);
            emit("eval", vec![("recall", Json::Num(0.125))]);
            counter_add("op.matmul.count", 2);
            observe("phase.forward", 0.5);

            let original = events();
            let text = sink_lines(&snapshot(), &original);
            let mut parsed_events = Vec::new();
            let mut saw_counter = false;
            let mut saw_hist = false;
            for line in text.lines() {
                let v = Json::parse(line).expect("each line parses");
                match v.get("kind").and_then(Json::as_str) {
                    Some("counter") => {
                        saw_counter = true;
                        assert_eq!(v.get("name").unwrap().as_str(), Some("op.matmul.count"));
                        assert_eq!(v.get("value").unwrap().as_f64(), Some(2.0));
                    }
                    Some("hist") => {
                        saw_hist = true;
                        assert_eq!(v.get("sum").unwrap().as_f64(), Some(0.5));
                        assert_eq!(v.get("window_count").unwrap().as_f64(), Some(1.0));
                    }
                    _ => parsed_events.push(Event::from_json(&v).expect("event parses")),
                }
            }
            assert!(saw_counter && saw_hist);
            assert_eq!(parsed_events.len(), original.len());
            for (a, b) in original.iter().zip(&parsed_events) {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.fields, b.fields);
                assert!((a.t - b.t).abs() < 1e-9);
            }
        });
    }

    #[test]
    fn summary_lists_recorded_names() {
        with_clean(|| {
            counter_add("c1", 7);
            gauge_set("g1", 1.5);
            observe("t1", 0.001);
            let s = summary();
            for needle in ["c1", "g1", "t1"] {
                assert!(s.contains(needle), "summary missing {needle}:\n{s}");
            }
        });
    }
}
