//! Reverse-mode automatic differentiation on a Wengert list.
//!
//! A [`Tape`] is rebuilt for every training step: operations evaluate eagerly
//! (the node stores the result) and record an [`Op`] describing how to push
//! gradients to their parents. [`Tape::backward`] walks the list once in
//! reverse — construction order is already a topological order — and routes
//! leaf gradients into a [`ParamStore`], sparsely for `gather`ed embedding
//! rows and densely for whole-table leaves.
//!
//! The op set is exactly what the IMCAT paper's losses need: BPR (Eq. 1–2),
//! the Student-t clustering KL (Eq. 4–6), mean aggregation via SpMM (Eq. 7–8),
//! linear/nonlinear projections (Eq. 10, 14), and bidirectional InfoNCE over
//! in-batch logits (Eq. 11–13, 16–17).

use std::rc::Rc;

use rand::Rng;

use crate::sparse::Csr;
use crate::store::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

static OBS_GATHER_COUNT: imcat_obs::Counter = imcat_obs::Counter::new("op.gather.count");
static OBS_GATHER_ELEMENTS: imcat_obs::Counter = imcat_obs::Counter::new("op.gather.elements");
static OBS_EW_COUNT: imcat_obs::Counter = imcat_obs::Counter::new("op.elementwise.count");
static OBS_EW_ELEMENTS: imcat_obs::Counter = imcat_obs::Counter::new("op.elementwise.elements");
static OBS_BACKWARD_COUNT: imcat_obs::Counter = imcat_obs::Counter::new("op.backward.count");
static OBS_BACKWARD_NODES: imcat_obs::Counter = imcat_obs::Counter::new("op.backward.nodes");

/// Telemetry for embedding gathers: timed under `op.gather`, with invocation
/// and copied-element counters. Inert unless telemetry is enabled.
#[inline]
fn obs_gather(rows: usize, cols: usize) -> imcat_obs::Span {
    let sp = imcat_obs::span("op.gather");
    if sp.active() {
        OBS_GATHER_COUNT.add(1);
        OBS_GATHER_ELEMENTS.add((rows * cols) as u64);
    }
    sp
}

/// Telemetry for elementwise / row-wise map ops: timed under
/// `op.elementwise` with invocation and element counters.
#[inline]
fn obs_elementwise(elements: usize) -> imcat_obs::Span {
    let sp = imcat_obs::span("op.elementwise");
    if sp.active() {
        OBS_EW_COUNT.add(1);
        OBS_EW_ELEMENTS.add(elements as u64);
    }
    sp
}

enum Op {
    Constant,
    Leaf { pid: ParamId },
    Gather { pid: ParamId, rows: Rc<Vec<u32>> },
    GatherRows { a: Var, rows: Rc<Vec<u32>> },
    Matmul { a: Var, b: Var },
    MatmulNt { a: Var, b: Var },
    Spmm { csr_t: Rc<Csr>, x: Var },
    Add { a: Var, b: Var },
    Sub { a: Var, b: Var },
    Mul { a: Var, b: Var },
    AddRowVec { a: Var, bias: Var },
    MulColVec { a: Var, v: Var },
    RowwiseDot { a: Var, b: Var },
    Scale { a: Var, s: f32 },
    AddScalar { a: Var },
    Neg { a: Var },
    Sigmoid { a: Var },
    LogSigmoid { a: Var },
    LeakyRelu { a: Var, alpha: f32 },
    Tanh { a: Var },
    L2NormalizeRows { a: Var, norms: Vec<f32> },
    SoftmaxRows { a: Var },
    LogSoftmaxRows { a: Var },
    RowNormalize { a: Var, sums: Vec<f32> },
    SumAll { a: Var },
    MeanAll { a: Var },
    SumRows { a: Var },
    SumCols { a: Var },
    ConcatCols { parts: Vec<Var> },
    ConcatRows { parts: Vec<Var> },
    SliceCols { a: Var, lo: usize },
    SqDist { a: Var, b: Var },
    Powf { a: Var, p: f32 },
    Ln { a: Var, eps: f32 },
    Exp { a: Var },
    TakeDiag { a: Var },
    Transpose { a: Var },
    Dropout { a: Var, mask: Vec<f32> },
    Reshape { a: Var },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Gradients of non-leaf tape nodes, returned by [`Tape::backward`] so tests
/// and diagnostics can inspect intermediate gradients.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `v`, if `v` participated in the loss.
    pub fn wrt(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }
}

/// Autodiff tape. Create one per training step.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(64) }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    // ---- leaves -----------------------------------------------------------

    /// Records a constant (no gradient flows into it).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Constant)
    }

    /// Records a whole parameter tensor as a differentiable leaf.
    pub fn leaf(&mut self, store: &ParamStore, pid: ParamId) -> Var {
        self.push(store.value(pid).clone(), Op::Leaf { pid })
    }

    /// Embedding lookup: selects `rows` from parameter `pid` (sparse backward).
    pub fn gather(&mut self, store: &ParamStore, pid: ParamId, rows: &[u32]) -> Var {
        let table = store.value(pid);
        let d = table.cols();
        let _sp = obs_gather(rows.len(), d);
        let mut out = Tensor::zeros(rows.len(), d);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(table.row(r as usize));
        }
        self.push(out, Op::Gather { pid, rows: Rc::new(rows.to_vec()) })
    }

    /// Selects `rows` from an arbitrary tape value (scatter-add backward).
    pub fn gather_rows(&mut self, a: Var, rows: &[u32]) -> Var {
        let src = self.value(a);
        let d = src.cols();
        let _sp = obs_gather(rows.len(), d);
        let mut out = Tensor::zeros(rows.len(), d);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(src.row(r as usize));
        }
        self.push(out, Op::GatherRows { a, rows: Rc::new(rows.to_vec()) })
    }

    // ---- linear algebra ---------------------------------------------------

    /// Dense product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).matmul(self.value(b));
        self.push(out, Op::Matmul { a, b })
    }

    /// Dense product `a @ b^T` (used for all-pairs similarity logits).
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).matmul_nt(self.value(b));
        self.push(out, Op::MatmulNt { a, b })
    }

    /// Sparse-dense product `csr @ x`. `csr_t` must be `csr.transpose()`;
    /// callers cache both because the same aggregation matrix is reused for
    /// many steps.
    pub fn spmm(&mut self, csr: &Rc<Csr>, csr_t: &Rc<Csr>, x: Var) -> Var {
        debug_assert_eq!(csr.rows(), csr_t.cols());
        debug_assert_eq!(csr.cols(), csr_t.rows());
        let out = csr.spmm(self.value(x));
        self.push(out, Op::Spmm { csr_t: Rc::clone(csr_t), x })
    }

    /// Transposes a matrix.
    pub fn transpose(&mut self, a: Var) -> Var {
        let out = self.value(a).transposed();
        self.push(out, Op::Transpose { a })
    }

    // ---- elementwise ------------------------------------------------------

    /// Elementwise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        let _sp = obs_elementwise(va.len());
        let mut out = va.clone();
        out.add_assign(vb);
        self.push(out, Op::Add { a, b })
    }

    /// Elementwise difference. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        let _sp = obs_elementwise(va.len());
        let mut out = va.clone();
        out.axpy(-1.0, vb);
        self.push(out, Op::Sub { a, b })
    }

    /// Elementwise (Hadamard) product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let _sp = obs_elementwise(va.len());
        let data = va.as_slice().iter().zip(vb.as_slice()).map(|(x, y)| x * y).collect();
        let out = Tensor::from_vec(va.rows(), va.cols(), data);
        self.push(out, Op::Mul { a, b })
    }

    /// Adds a `[1, n]` bias row to every row of `a`.
    pub fn add_row_vec(&mut self, a: Var, bias: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(bias));
        assert_eq!(vb.rows(), 1, "bias must be a [1, n] row vector");
        assert_eq!(va.cols(), vb.cols(), "bias width mismatch");
        let mut out = va.clone();
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(vb.as_slice()) {
                *o += b;
            }
        }
        self.push(out, Op::AddRowVec { a, bias })
    }

    /// Scales row `i` of `a` by `v[i]` where `v` is `[m, 1]`.
    pub fn mul_col_vec(&mut self, a: Var, v: Var) -> Var {
        let (va, vv) = (self.value(a), self.value(v));
        assert_eq!(vv.cols(), 1, "v must be a [m, 1] column vector");
        assert_eq!(va.rows(), vv.rows(), "mul_col_vec height mismatch");
        let mut out = va.clone();
        for r in 0..out.rows() {
            let s = vv.get(r, 0);
            for o in out.row_mut(r) {
                *o *= s;
            }
        }
        self.push(out, Op::MulColVec { a, v })
    }

    /// Per-row inner product of two `[m, d]` matrices, giving `[m, 1]`.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "rowwise_dot shape mismatch");
        let mut out = Tensor::zeros(va.rows(), 1);
        for r in 0..va.rows() {
            let d: f32 = va.row(r).iter().zip(vb.row(r)).map(|(x, y)| x * y).sum();
            out.set(r, 0, d);
        }
        self.push(out, Op::RowwiseDot { a, b })
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let out = self.value(a).map(|x| x * s);
        self.push(out, Op::Scale { a, s })
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let out = self.value(a).map(|x| x + s);
        self.push(out, Op::AddScalar { a })
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| -x);
        self.push(out, Op::Neg { a })
    }

    // ---- nonlinearities ---------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let _sp = obs_elementwise(self.value(a).len());
        let out = self.value(a).map(stable_sigmoid);
        self.push(out, Op::Sigmoid { a })
    }

    /// Numerically stable `log(sigmoid(x))`.
    pub fn log_sigmoid(&mut self, a: Var) -> Var {
        let _sp = obs_elementwise(self.value(a).len());
        let out = self.value(a).map(|x| {
            if x >= 0.0 {
                -(1.0 + (-x).exp()).ln()
            } else {
                x - (1.0 + x.exp()).ln()
            }
        });
        self.push(out, Op::LogSigmoid { a })
    }

    /// LeakyReLU with negative slope `alpha` (`alpha = 0` is plain ReLU).
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let _sp = obs_elementwise(self.value(a).len());
        let out = self.value(a).map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(out, Op::LeakyRelu { a, alpha })
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.leaky_relu(a, 0.0)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let _sp = obs_elementwise(self.value(a).len());
        let out = self.value(a).map(f32::tanh);
        self.push(out, Op::Tanh { a })
    }

    /// Divides each row by `sqrt(||row||^2 + eps)` (L2 normalization, used
    /// before the `⊕` fusion of Eq. 10's tag projection and the item intent).
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
    pub fn l2_normalize_rows(&mut self, a: Var, eps: f32) -> Var {
        let va = self.value(a);
        let mut out = va.clone();
        let mut norms = Vec::with_capacity(va.rows());
        for r in 0..va.rows() {
            let n = (va.row(r).iter().map(|x| x * x).sum::<f32>() + eps).sqrt();
            norms.push(n);
            for o in out.row_mut(r) {
                *o /= n;
            }
        }
        self.push(out, Op::L2NormalizeRows { a, norms })
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let mut out = va.clone();
        for r in 0..out.rows() {
            softmax_in_place(out.row_mut(r));
        }
        self.push(out, Op::SoftmaxRows { a })
    }

    /// Row-wise log-softmax (stable; used for InfoNCE).
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let mut out = va.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let m = row.iter().fold(f32::NEG_INFINITY, |acc, &x| acc.max(x));
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            for x in row {
                *x -= lse;
            }
        }
        self.push(out, Op::LogSoftmaxRows { a })
    }

    /// Divides each row by its sum (entries assumed non-negative; used for the
    /// Student-t soft assignment of Eq. 4).
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
    pub fn row_normalize(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let mut out = va.clone();
        let mut sums = Vec::with_capacity(va.rows());
        for r in 0..out.rows() {
            let s: f32 = out.row(r).iter().sum();
            let s = if s == 0.0 { 1.0 } else { s };
            sums.push(s);
            for x in out.row_mut(r) {
                *x /= s;
            }
        }
        self.push(out, Op::RowNormalize { a, sums })
    }

    // ---- reductions -------------------------------------------------------

    /// Sum of every element, as a `[1, 1]` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let out = Tensor::scalar(self.value(a).sum());
        self.push(out, Op::SumAll { a })
    }

    /// Mean of every element, as a `[1, 1]` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let out = Tensor::scalar(v.sum() / v.len() as f32);
        self.push(out, Op::MeanAll { a })
    }

    /// Per-row sums, `[m, n] -> [m, 1]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let mut out = Tensor::zeros(va.rows(), 1);
        for r in 0..va.rows() {
            out.set(r, 0, va.row(r).iter().sum());
        }
        self.push(out, Op::SumRows { a })
    }

    /// Per-column sums, `[m, n] -> [1, n]`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let mut out = Tensor::zeros(1, va.cols());
        for r in 0..va.rows() {
            for (o, &x) in out.row_mut(0).iter_mut().zip(va.row(r)) {
                *o += x;
            }
        }
        self.push(out, Op::SumCols { a })
    }

    // ---- shape ops --------------------------------------------------------

    /// Horizontal concatenation of same-height matrices (intent sub-embedding
    /// assembly, Eq. 3).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let vp = self.value(p);
            assert_eq!(vp.rows(), rows, "concat_cols height mismatch");
            for r in 0..rows {
                out.row_mut(r)[off..off + vp.cols()].copy_from_slice(vp.row(r));
            }
            off += vp.cols();
        }
        self.push(out, Op::ConcatCols { parts: parts.to_vec() })
    }

    /// Vertical concatenation of same-width matrices (e.g. stacking user and
    /// item tables into one node matrix for joint-graph propagation).
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let mut out = Tensor::zeros(total, cols);
        let mut off = 0;
        for &p in parts {
            let vp = self.value(p);
            assert_eq!(vp.cols(), cols, "concat_rows width mismatch");
            for r in 0..vp.rows() {
                out.row_mut(off + r).copy_from_slice(vp.row(r));
            }
            off += vp.rows();
        }
        self.push(out, Op::ConcatRows { parts: parts.to_vec() })
    }

    /// Column slice `a[:, lo..hi]` (extracting one intent sub-embedding).
    pub fn slice_cols(&mut self, a: Var, lo: usize, hi: usize) -> Var {
        let va = self.value(a);
        assert!(lo < hi && hi <= va.cols(), "bad slice bounds {lo}..{hi}");
        let mut out = Tensor::zeros(va.rows(), hi - lo);
        for r in 0..va.rows() {
            out.row_mut(r).copy_from_slice(&va.row(r)[lo..hi]);
        }
        self.push(out, Op::SliceCols { a, lo })
    }

    /// Pairwise squared Euclidean distances between rows of `a` (`[m, d]`) and
    /// rows of `b` (`[k, d]`), giving `[m, k]` (Student-t clustering, Eq. 4).
    pub fn sq_dist(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.cols(), vb.cols(), "sq_dist dimension mismatch");
        let mut out = Tensor::zeros(va.rows(), vb.rows());
        for i in 0..va.rows() {
            for j in 0..vb.rows() {
                let d: f32 = va.row(i).iter().zip(vb.row(j)).map(|(x, y)| (x - y) * (x - y)).sum();
                out.set(i, j, d);
            }
        }
        self.push(out, Op::SqDist { a, b })
    }

    /// Elementwise power `x^p` (entries must be positive when `p` is not a
    /// non-negative integer).
    pub fn powf(&mut self, a: Var, p: f32) -> Var {
        let out = self.value(a).map(|x| x.powf(p));
        self.push(out, Op::Powf { a, p })
    }

    /// Elementwise `ln(x + eps)`.
    pub fn ln(&mut self, a: Var, eps: f32) -> Var {
        let out = self.value(a).map(|x| (x + eps).ln());
        self.push(out, Op::Ln { a, eps })
    }

    /// Elementwise `exp(x)`.
    pub fn exp(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::exp);
        self.push(out, Op::Exp { a })
    }

    /// Extracts the main diagonal of a square matrix as `[m, 1]` (the positive
    /// logits of in-batch InfoNCE).
    pub fn take_diag(&mut self, a: Var) -> Var {
        let va = self.value(a);
        assert_eq!(va.rows(), va.cols(), "take_diag requires a square matrix");
        let mut out = Tensor::zeros(va.rows(), 1);
        for r in 0..va.rows() {
            out.set(r, 0, va.get(r, r));
        }
        self.push(out, Op::TakeDiag { a })
    }

    /// Reinterprets `a` as a `rows x cols` matrix (same element count, same
    /// row-major order).
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let va = self.value(a);
        assert_eq!(va.len(), rows * cols, "reshape element count mismatch");
        let out = Tensor::from_vec(rows, cols, va.as_slice().to_vec());
        self.push(out, Op::Reshape { a })
    }

    /// Inverted dropout with keep-scaling.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut impl Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        let va = self.value(a);
        let scale = 1.0 / (1.0 - p);
        let mask: Vec<f32> =
            (0..va.len()).map(|_| if rng.gen::<f32>() < p { 0.0 } else { scale }).collect();
        let data: Vec<f32> = va.as_slice().iter().zip(&mask).map(|(&x, &m)| x * m).collect();
        let out = Tensor::from_vec(va.rows(), va.cols(), data);
        self.push(out, Op::Dropout { a, mask })
    }

    // ---- backward ---------------------------------------------------------

    /// Back-propagates from scalar `loss`, accumulating parameter gradients in
    /// `store` and returning the per-node gradients.
    pub fn backward(&self, loss: Var, store: &mut ParamStore) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be a scalar");
        let _sp = imcat_obs::span("phase.backward");
        if _sp.active() {
            OBS_BACKWARD_COUNT.add(1);
            OBS_BACKWARD_NODES.add(self.nodes.len() as u64);
        }
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            self.apply_backward(i, &g, &mut grads, store);
            grads[i] = Some(g);
        }
        Gradients { grads }
    }

    #[allow(clippy::needless_range_loop)] // backward rules index parallel buffers
    fn apply_backward(
        &self,
        i: usize,
        g: &Tensor,
        grads: &mut [Option<Tensor>],
        store: &mut ParamStore,
    ) {
        let val = |v: Var| &self.nodes[v.0].value;
        let out_val = &self.nodes[i].value;
        let mut acc = |v: Var, delta: Tensor| match &mut grads[v.0] {
            Some(t) => t.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        };
        match &self.nodes[i].op {
            Op::Constant => {}
            Op::Leaf { pid } => store.accum_grad_dense(*pid, g),
            Op::Gather { pid, rows } => {
                for (b, &r) in rows.iter().enumerate() {
                    store.accum_grad_row(*pid, r, g.row(b));
                }
            }
            Op::GatherRows { a, rows } => {
                let src = val(*a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for (b, &r) in rows.iter().enumerate() {
                    for (dst, &x) in da.row_mut(r as usize).iter_mut().zip(g.row(b)) {
                        *dst += x;
                    }
                }
                acc(*a, da);
            }
            Op::Matmul { a, b } => {
                let da = g.matmul_nt(val(*b));
                let db = val(*a).matmul_tn(g);
                acc(*a, da);
                acc(*b, db);
            }
            Op::MatmulNt { a, b } => {
                let da = g.matmul(val(*b));
                let db = g.matmul_tn(val(*a));
                acc(*a, da);
                acc(*b, db);
            }
            Op::Spmm { csr_t, x } => {
                acc(*x, csr_t.spmm(g));
            }
            Op::Add { a, b } => {
                acc(*a, g.clone());
                acc(*b, g.clone());
            }
            Op::Sub { a, b } => {
                acc(*a, g.clone());
                acc(*b, g.map(|x| -x));
            }
            Op::Mul { a, b } => {
                let da = elementwise(g, val(*b), |x, y| x * y);
                let db = elementwise(g, val(*a), |x, y| x * y);
                acc(*a, da);
                acc(*b, db);
            }
            Op::AddRowVec { a, bias } => {
                let mut db = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                acc(*a, g.clone());
                acc(*bias, db);
            }
            Op::MulColVec { a, v } => {
                let vv = val(*v);
                let va = val(*a);
                let mut da = g.clone();
                let mut dv = Tensor::zeros(vv.rows(), 1);
                for r in 0..g.rows() {
                    let s = vv.get(r, 0);
                    let mut dot = 0.0;
                    for ((o, &gg), &aa) in da.row_mut(r).iter_mut().zip(g.row(r)).zip(va.row(r)) {
                        *o = gg * s;
                        dot += gg * aa;
                    }
                    dv.set(r, 0, dot);
                }
                acc(*a, da);
                acc(*v, dv);
            }
            Op::RowwiseDot { a, b } => {
                let (va, vb) = (val(*a), val(*b));
                let mut da = Tensor::zeros(va.rows(), va.cols());
                let mut db = Tensor::zeros(vb.rows(), vb.cols());
                for r in 0..va.rows() {
                    let s = g.get(r, 0);
                    for ((dst, &x), (dst2, &y)) in da
                        .row_mut(r)
                        .iter_mut()
                        .zip(vb.row(r))
                        .zip(db.row_mut(r).iter_mut().zip(va.row(r)))
                    {
                        *dst = s * x;
                        *dst2 = s * y;
                    }
                }
                acc(*a, da);
                acc(*b, db);
            }
            Op::Scale { a, s } => acc(*a, g.map(|x| x * s)),
            Op::AddScalar { a } => acc(*a, g.clone()),
            Op::Neg { a } => acc(*a, g.map(|x| -x)),
            Op::Sigmoid { a } => {
                let da = elementwise(g, out_val, |gg, s| gg * s * (1.0 - s));
                acc(*a, da);
            }
            Op::LogSigmoid { a } => {
                let da = elementwise(g, val(*a), |gg, x| gg * (1.0 - stable_sigmoid(x)));
                acc(*a, da);
            }
            Op::LeakyRelu { a, alpha } => {
                let da = elementwise(g, val(*a), |gg, x| if x > 0.0 { gg } else { gg * alpha });
                acc(*a, da);
            }
            Op::Tanh { a } => {
                let da = elementwise(g, out_val, |gg, t| gg * (1.0 - t * t));
                acc(*a, da);
            }
            Op::L2NormalizeRows { a, norms } => {
                let va = val(*a);
                let mut da = Tensor::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    let n = norms[r];
                    let dot: f32 = g.row(r).iter().zip(va.row(r)).map(|(x, y)| x * y).sum();
                    for ((dst, &gg), &x) in da.row_mut(r).iter_mut().zip(g.row(r)).zip(va.row(r)) {
                        *dst = gg / n - x * dot / (n * n * n);
                    }
                }
                acc(*a, da);
            }
            Op::SoftmaxRows { a } => {
                let s = out_val;
                let mut da = Tensor::zeros(s.rows(), s.cols());
                for r in 0..s.rows() {
                    let dot: f32 = g.row(r).iter().zip(s.row(r)).map(|(x, y)| x * y).sum();
                    for ((dst, &gg), &ss) in da.row_mut(r).iter_mut().zip(g.row(r)).zip(s.row(r)) {
                        *dst = ss * (gg - dot);
                    }
                }
                acc(*a, da);
            }
            Op::LogSoftmaxRows { a } => {
                let ls = out_val;
                let mut da = Tensor::zeros(ls.rows(), ls.cols());
                for r in 0..ls.rows() {
                    let gsum: f32 = g.row(r).iter().sum();
                    for ((dst, &gg), &l) in da.row_mut(r).iter_mut().zip(g.row(r)).zip(ls.row(r)) {
                        *dst = gg - l.exp() * gsum;
                    }
                }
                acc(*a, da);
            }
            Op::RowNormalize { a, sums } => {
                let y = out_val;
                let mut da = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let s = sums[r];
                    let dot: f32 = g.row(r).iter().zip(y.row(r)).map(|(x, yy)| x * yy).sum();
                    for (dst, &gg) in da.row_mut(r).iter_mut().zip(g.row(r)) {
                        *dst = (gg - dot) / s;
                    }
                }
                acc(*a, da);
            }
            Op::SumAll { a } => {
                let va = val(*a);
                acc(*a, Tensor::full(va.rows(), va.cols(), g.item()));
            }
            Op::MeanAll { a } => {
                let va = val(*a);
                acc(*a, Tensor::full(va.rows(), va.cols(), g.item() / va.len() as f32));
            }
            Op::SumRows { a } => {
                let va = val(*a);
                let mut da = Tensor::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    let s = g.get(r, 0);
                    da.row_mut(r).iter_mut().for_each(|x| *x = s);
                }
                acc(*a, da);
            }
            Op::SumCols { a } => {
                let va = val(*a);
                let mut da = Tensor::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    da.row_mut(r).copy_from_slice(g.row(0));
                }
                acc(*a, da);
            }
            Op::ConcatCols { parts } => {
                let mut off = 0;
                for &p in parts {
                    let vp = val(p);
                    let mut dp = Tensor::zeros(vp.rows(), vp.cols());
                    for r in 0..vp.rows() {
                        dp.row_mut(r).copy_from_slice(&g.row(r)[off..off + vp.cols()]);
                    }
                    off += vp.cols();
                    acc(p, dp);
                }
            }
            Op::ConcatRows { parts } => {
                let mut off = 0;
                for &p in parts {
                    let vp = val(p);
                    let mut dp = Tensor::zeros(vp.rows(), vp.cols());
                    for r in 0..vp.rows() {
                        dp.row_mut(r).copy_from_slice(g.row(off + r));
                    }
                    off += vp.rows();
                    acc(p, dp);
                }
            }
            Op::SliceCols { a, lo } => {
                let va = val(*a);
                let mut da = Tensor::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    da.row_mut(r)[*lo..*lo + g.cols()].copy_from_slice(g.row(r));
                }
                acc(*a, da);
            }
            Op::SqDist { a, b } => {
                let (va, vb) = (val(*a), val(*b));
                let mut da = Tensor::zeros(va.rows(), va.cols());
                let mut db = Tensor::zeros(vb.rows(), vb.cols());
                for i2 in 0..va.rows() {
                    for j in 0..vb.rows() {
                        let gg = 2.0 * g.get(i2, j);
                        if gg == 0.0 {
                            continue;
                        }
                        for ((dai, dbj), (&x, &y)) in da
                            .row_mut(i2)
                            .iter_mut()
                            .zip(unsafe_row_mut(&mut db, j))
                            .zip(va.row(i2).iter().zip(vb.row(j)))
                        {
                            *dai += gg * (x - y);
                            *dbj += gg * (y - x);
                        }
                    }
                }
                acc(*a, da);
                acc(*b, db);
            }
            Op::Powf { a, p } => {
                let da = elementwise(g, val(*a), |gg, x| gg * p * x.powf(p - 1.0));
                acc(*a, da);
            }
            Op::Ln { a, eps } => {
                let da = elementwise(g, val(*a), |gg, x| gg / (x + eps));
                acc(*a, da);
            }
            Op::Exp { a } => {
                let da = elementwise(g, out_val, |gg, e| gg * e);
                acc(*a, da);
            }
            Op::TakeDiag { a } => {
                let va = val(*a);
                let mut da = Tensor::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    da.set(r, r, g.get(r, 0));
                }
                acc(*a, da);
            }
            Op::Transpose { a } => acc(*a, g.transposed()),
            Op::Reshape { a } => {
                let va = val(*a);
                acc(*a, Tensor::from_vec(va.rows(), va.cols(), g.as_slice().to_vec()));
            }
            Op::Dropout { a, mask } => {
                let data: Vec<f32> =
                    g.as_slice().iter().zip(mask).map(|(&gg, &m)| gg * m).collect();
                acc(*a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
        }
    }
}

/// `db.row_mut(j)` via raw pointer: needed because the closure above already
/// holds `da` mutably; rows of `db` are disjoint from `da`.
fn unsafe_row_mut(t: &mut Tensor, r: usize) -> impl Iterator<Item = &mut f32> {
    t.row_mut(r).iter_mut()
}

fn elementwise(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    debug_assert_eq!(a.shape(), b.shape());
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| f(x, y)).collect();
    Tensor::from_vec(a.rows(), a.cols(), data)
}

fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn softmax_in_place(row: &mut [f32]) {
    let m = row.iter().fold(f32::NEG_INFINITY, |acc, &x| acc.max(x));
    let mut s = 0.0;
    for x in row.iter_mut() {
        *x = (*x - m).exp();
        s += *x;
    }
    for x in row.iter_mut() {
        *x /= s;
    }
}
