//! Regression tests for the sharded registry: metrics recorded on other OS
//! threads must be visible in `snapshot()` (they were silently lost by the
//! old thread-local registry), and `Span` must stay correct across panics.

use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn counters_from_second_os_thread_appear_in_snapshot() {
    let _guard = imcat_obs::exclusive(true);
    imcat_obs::counter_add("xthread.requests", 1);
    let workers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(|| {
                imcat_obs::register_thread();
                for _ in 0..100 {
                    imcat_obs::counter_add("xthread.requests", 1);
                    imcat_obs::observe("xthread.seconds", 1.0e-4);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snap = imcat_obs::snapshot();
    // The old thread-local registry reported 1 here: the worker threads'
    // bumps lived in registries that died with their threads.
    assert_eq!(snap.counter("xthread.requests"), 201);
    assert_eq!(snap.hist_count("xthread.seconds"), 200);
    assert_eq!(snap.window("xthread.seconds").map(|w| w.count), Some(200));
}

#[test]
fn no_increment_lost_under_concurrency() {
    let _guard = imcat_obs::exclusive(true);
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..PER_THREAD {
                    imcat_obs::counter_add("hammer.total", 1);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // Each thread writes only its own shard cell, so the merged total is
    // exact — not merely approximate.
    assert_eq!(imcat_obs::snapshot().counter("hammer.total"), THREADS as u64 * PER_THREAD);
}

#[test]
fn dead_threads_metrics_persist() {
    let _guard = imcat_obs::exclusive(true);
    std::thread::spawn(|| imcat_obs::counter_add("ghost.requests", 7)).join().unwrap();
    // The thread is gone; its shard (and counts) must remain.
    assert_eq!(imcat_obs::snapshot().counter("ghost.requests"), 7);
}

#[test]
fn span_dropped_during_unwind_still_records() {
    let _guard = imcat_obs::exclusive(true);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _outer = imcat_obs::span("panic.outer");
        {
            let _inner = imcat_obs::span("panic.inner");
            panic!("boom");
        }
    }));
    assert!(result.is_err());
    let snap = imcat_obs::snapshot();
    // Both spans unwound through their destructors and recorded durations.
    assert_eq!(snap.hist_count("panic.inner"), 1);
    assert_eq!(snap.hist_count("panic.outer"), 1);

    // Recording still works after the unwind — the registry state is not
    // corrupted — and nesting accounting stays consistent: the outer span
    // covers at least the inner one.
    {
        let _s = imcat_obs::span("panic.after");
    }
    let snap = imcat_obs::snapshot();
    assert_eq!(snap.hist_count("panic.after"), 1);
    assert!(snap.hist_sum("panic.outer") >= snap.hist_sum("panic.inner"));
}

#[test]
fn span_inside_traced_request_survives_panic() {
    let _guard = imcat_obs::exclusive(true);
    let mut trace_id = None;
    let result = catch_unwind(AssertUnwindSafe(|| {
        let t = imcat_obs::trace::request("panic.request", "panic.request.seconds", true);
        trace_id = t.id();
        let _s = imcat_obs::span("panic.traced.span");
        panic!("mid-request");
    }));
    assert!(result.is_err());
    // The request trace closed during unwind and captured the span.
    let trace = imcat_obs::trace::get(trace_id.expect("id minted")).expect("trace stored");
    assert_eq!(trace.spans.len(), 1);
    assert_eq!(trace.spans[0].name, "panic.traced.span");
    // No handle leaked into the thread-local slot.
    assert!(imcat_obs::trace::current().is_none());
}
