//! Per-intent Jaccard similarity between items' tag sets (paper Eq. 15) and
//! similar-set extraction for the ISA module (§IV-C).
//!
//! `s_{j,j'}^k = |T^k(v_j) ∩ T^k(v_{j'})| / |T^k(v_j) ∪ T^k(v_{j'})|` where
//! `T^k(v_j)` is the set of tags of item `j` falling in tag cluster `k`.
//! Computation goes through an inverted tag → items index so only item pairs
//! that actually share a tag are ever scored.

use imcat_tensor::Csr;

/// Tag sets of every item restricted to one cluster: `sets[j]` holds the
/// sorted tag ids of item `j` that belong to the cluster.
#[derive(Clone, Debug, Default)]
pub struct ClusterTagSets {
    sets: Vec<Vec<u32>>,
}

impl ClusterTagSets {
    /// Restricts an item→tag incidence to the tags with `assignment[tag] == k`.
    pub fn from_assignment(item_tags: &Csr, assignment: &[usize], k: usize) -> Self {
        let sets = (0..item_tags.rows())
            .map(|j| {
                item_tags
                    .row_indices(j)
                    .iter()
                    .copied()
                    .filter(|&t| assignment[t as usize] == k)
                    .collect()
            })
            .collect();
        Self { sets }
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.sets.len()
    }

    /// The cluster-restricted tag set of item `j` (sorted ascending).
    pub fn set(&self, j: usize) -> &[u32] {
        &self.sets[j]
    }

    /// Jaccard index between items `a` and `b` (0 when either set is empty).
    pub fn jaccard(&self, a: usize, b: usize) -> f32 {
        jaccard_sorted(&self.sets[a], &self.sets[b])
    }

    /// All items `j'` with `jaccard(j, j') > delta`, excluding `j` itself.
    ///
    /// This is the similar set `S_j^k` of §IV-C.
    pub fn similar_items(&self, j: usize, delta: f32) -> Vec<u32> {
        let inverted = self.inverted_index();
        self.similar_items_with_index(j, delta, &inverted)
    }

    /// Builds the tag → items inverted index once for repeated queries.
    pub fn inverted_index(&self) -> Vec<Vec<u32>> {
        let max_tag =
            self.sets.iter().flat_map(|s| s.iter().copied()).max().map_or(0, |m| m as usize + 1);
        let mut inv = vec![Vec::new(); max_tag];
        for (j, s) in self.sets.iter().enumerate() {
            for &t in s {
                inv[t as usize].push(j as u32);
            }
        }
        inv
    }

    /// [`Self::similar_items`] against a prebuilt inverted index.
    pub fn similar_items_with_index(
        &self,
        j: usize,
        delta: f32,
        inverted: &[Vec<u32>],
    ) -> Vec<u32> {
        let mut candidates: Vec<u32> = self.sets[j]
            .iter()
            .flat_map(|&t| inverted[t as usize].iter().copied())
            .filter(|&c| c as usize != j)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.into_iter().filter(|&c| self.jaccard(j, c as usize) > delta).collect()
    }

    /// Similar sets for every item at threshold `delta` (the full `{S_j^k}`).
    pub fn all_similar_sets(&self, delta: f32) -> Vec<Vec<u32>> {
        let inverted = self.inverted_index();
        (0..self.n_items()).map(|j| self.similar_items_with_index(j, delta, &inverted)).collect()
    }
}

/// Jaccard index of two ascending-sorted slices.
pub fn jaccard_sorted(a: &[u32], b: &[u32]) -> f32 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f32 / union as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_sorted_basics() {
        assert_eq!(jaccard_sorted(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard_sorted(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard_sorted(&[], &[1]), 0.0);
        assert_eq!(jaccard_sorted(&[1], &[2]), 0.0);
    }

    fn toy_sets() -> ClusterTagSets {
        // 4 items, 5 tags; cluster 0 holds tags {0, 1, 2}, cluster 1 {3, 4}.
        let item_tags =
            Csr::from_adjacency(4, 5, &[vec![0, 1, 3], vec![0, 1, 2], vec![2, 4], vec![3, 4]]);
        let assignment = vec![0, 0, 0, 1, 1];
        ClusterTagSets::from_assignment(&item_tags, &assignment, 0)
    }

    #[test]
    fn from_assignment_restricts_to_cluster() {
        let s = toy_sets();
        assert_eq!(s.set(0), &[0, 1]);
        assert_eq!(s.set(1), &[0, 1, 2]);
        assert_eq!(s.set(2), &[2]);
        assert_eq!(s.set(3), &[] as &[u32]);
    }

    #[test]
    fn pairwise_jaccard_values() {
        let s = toy_sets();
        assert!((s.jaccard(0, 1) - 2.0 / 3.0).abs() < 1e-6);
        assert!((s.jaccard(1, 2) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(s.jaccard(0, 3), 0.0);
    }

    #[test]
    fn similar_items_thresholding() {
        let s = toy_sets();
        assert_eq!(s.similar_items(0, 0.5), vec![1]);
        assert_eq!(s.similar_items(0, 0.7), Vec::<u32>::new());
        // Item 3 has no cluster-0 tags: similar set empty at any threshold.
        assert_eq!(s.similar_items(3, 0.0), Vec::<u32>::new());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_similar_sets_consistent_with_single_queries() {
        let s = toy_sets();
        let all = s.all_similar_sets(0.3);
        for j in 0..s.n_items() {
            assert_eq!(all[j], s.similar_items(j, 0.3));
        }
    }

    #[test]
    fn similarity_is_symmetric() {
        let s = toy_sets();
        for a in 0..4 {
            for b in 0..4 {
                assert!((s.jaccard(a, b) - s.jaccard(b, a)).abs() < 1e-6);
            }
        }
    }
}
